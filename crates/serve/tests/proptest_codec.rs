//! Property tests for the service blob codecs: arbitrary result payloads
//! (not just simulator-produced ones) round-trip exactly, any single-byte
//! corruption is rejected, truncation always yields a typed error, and
//! random garbage never panics.

use proptest::prelude::*;
use riq_bpred::{BpredStats, BtbStats, DirPredictorKind};
use riq_core::{EpochSample, ReuseStats, RunResult, SimConfig, SimStats};
use riq_emu::ArchState;
use riq_isa::{FpReg, IntReg, NUM_FP_REGS, NUM_INT_REGS};
use riq_mem::{CacheStats, HierarchyStats};
use riq_metrics::{Histogram, MetricsSnapshot, SimCounter, Stage, HIST_BUCKETS};
use riq_power::{PowerReport, NUM_COMPONENTS};
use riq_serve::{decode_config, decode_result, encode_config, encode_result};

fn arb_sim_stats() -> impl Strategy<Value = SimStats> {
    prop::collection::vec(any::<u64>(), 19).prop_map(|v| SimStats {
        cycles: v[0],
        committed: v[1],
        fetched: v[2],
        dispatched: v[3],
        issued: v[4],
        squashed: v[5],
        branches: v[6],
        mispredictions: v[7],
        gated_cycles: v[8],
        iq_occupancy_sum: v[9],
        rob_occupancy_sum: v[10],
        reuse: ReuseStats {
            loops_detected: v[11],
            nblt_hits: v[12],
            nblt_inserts: v[13],
            bufferings_started: v[14],
            bufferings_revoked: v[15],
            code_reuse_entries: v[16],
            iterations_buffered: v[17],
            reused_insts: v[18],
        },
    })
}

fn arb_cache_stats() -> impl Strategy<Value = CacheStats> {
    prop::collection::vec(any::<u64>(), 5).prop_map(|v| CacheStats {
        reads: v[0],
        writes: v[1],
        hits: v[2],
        misses: v[3],
        writebacks: v[4],
    })
}

fn arb_arch_state() -> impl Strategy<Value = ArchState> {
    (
        prop::collection::vec(any::<u32>(), NUM_INT_REGS),
        prop::collection::vec(any::<u64>(), NUM_FP_REGS),
    )
        .prop_map(|(ints, fps)| {
            let mut regs = ArchState::new();
            for (i, &v) in ints.iter().enumerate().skip(1) {
                regs.set_int_reg(IntReg::new(i as u8), v);
            }
            for (i, &v) in fps.iter().enumerate() {
                regs.set_fp_reg_bits(FpReg::new(i as u8), v);
            }
            regs
        })
}

fn arb_metrics() -> impl Strategy<Value = Option<MetricsSnapshot>> {
    (
        any::<bool>(),
        prop::collection::vec(any::<u64>(), SimCounter::COUNT),
        prop::collection::vec(any::<u64>(), Stage::COUNT),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), HIST_BUCKETS),
    )
        .prop_map(|(present, sim, stages, samples, hist)| {
            present.then(|| MetricsSnapshot {
                sim: sim.try_into().expect("length matches"),
                stage_nanos: stages.try_into().expect("length matches"),
                stage_samples: samples,
                iq_occupancy: Histogram { buckets: hist.try_into().expect("length matches") },
            })
        })
}

fn arb_result() -> impl Strategy<Value = RunResult> {
    (
        (
            arb_sim_stats(),
            // Finite energies: the equality check below compares raw f64s.
            prop::collection::vec(any::<u32>().prop_map(f64::from), NUM_COMPONENTS),
            any::<u64>(),
            any::<u64>(),
        ),
        prop::collection::vec(arb_cache_stats(), 5),
        (prop::collection::vec(any::<u64>(), 10), any::<u64>()),
        prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), arb_sim_stats()), 0..4),
        arb_arch_state(),
        arb_metrics(),
    )
        .prop_map(
            |((stats, energy, pc, pg), caches, (bp, fills), epochs, arch_state, metrics)| {
                RunResult {
                    stats,
                    power: PowerReport::from_parts(
                        energy.try_into().expect("length matches"),
                        pc,
                        pg,
                    ),
                    mem: HierarchyStats {
                        il1: caches[0],
                        dl1: caches[1],
                        l2: caches[2],
                        itlb: caches[3],
                        dtlb: caches[4],
                        memory_fills: fills,
                    },
                    bpred: BpredStats {
                        dir_lookups: bp[0],
                        dir_updates: bp[1],
                        dir_correct: bp[2],
                        dir_wrong: bp[3],
                        btb: BtbStats { lookups: bp[4], hits: bp[5], updates: bp[6] },
                        ras_pushes: bp[7],
                        ras_pops: bp[8],
                    },
                    epochs: epochs
                        .into_iter()
                        .map(|(index, start_cycle, end_cycle, delta)| EpochSample {
                            index,
                            start_cycle,
                            end_cycle,
                            delta,
                        })
                        .collect(),
                    arch_state,
                    mem_digest: bp[9],
                    metrics,
                }
            },
        )
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (1u32..8, 4u32..64, 8u32..128, any::<bool>(), 0u8..4, 16u32..1024, any::<u64>()).prop_map(
        |(width, iq, rob, reuse, dir, entries, max_cycles)| {
            let mut cfg = SimConfig::baseline().with_iq_size(iq).with_reuse(reuse);
            cfg.issue_width = width;
            cfg.rob_entries = iq.max(rob);
            cfg.bpred.dir = match dir {
                0 => DirPredictorKind::Bimod { entries },
                1 => DirPredictorKind::Gshare { entries, history_bits: 8 },
                2 => DirPredictorKind::Taken,
                _ => DirPredictorKind::NotTaken,
            };
            cfg.max_cycles = max_cycles;
            cfg
        },
    )
}

fn assert_results_equal(a: &RunResult, b: &RunResult) {
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.bpred, b.bpred);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.arch_state, b.arch_state);
    assert_eq!(a.mem_digest, b.mem_digest);
    assert_eq!(a.power.cycles, b.power.cycles);
    assert_eq!(a.power.gated_cycles, b.power.gated_cycles);
    assert_eq!(a.power.raw_energy(), b.power.raw_energy());
    match (&a.metrics, &b.metrics) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.sim, y.sim);
            assert_eq!(x.stage_nanos, y.stage_nanos);
            assert_eq!(x.stage_samples, y.stage_samples);
            assert_eq!(x.iq_occupancy.buckets, y.iq_occupancy.buckets);
        }
        _ => panic!("metrics presence mismatch"),
    }
}

proptest! {
    #[test]
    fn result_roundtrips_exactly(result in arb_result()) {
        let bytes = encode_result(&result);
        let decoded = decode_result(&bytes).expect("decodes");
        assert_results_equal(&decoded, &result);
        prop_assert_eq!(encode_result(&decoded), bytes, "canonical re-encoding");
    }

    #[test]
    fn result_single_byte_corruption_rejected(
        result in arb_result(),
        pick in any::<u64>(),
        flip in 1u8..255,
    ) {
        let mut bytes = encode_result(&result);
        let idx = (pick % bytes.len() as u64) as usize;
        bytes[idx] ^= flip;
        prop_assert!(decode_result(&bytes).is_err(), "flip at byte {}", idx);
    }

    #[test]
    fn result_truncation_is_typed(result in arb_result(), frac in 0.0f64..1.0) {
        let bytes = encode_result(&result);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(decode_result(&bytes[..cut.min(bytes.len() - 1)]).is_err());
    }

    #[test]
    fn config_roundtrips_with_fingerprint(cfg in arb_config()) {
        let bytes = encode_config(&cfg);
        let decoded = decode_config(&bytes).expect("decodes");
        prop_assert_eq!(&decoded, &cfg);
        prop_assert_eq!(decoded.fingerprint(), cfg.fingerprint());
    }

    #[test]
    fn config_single_byte_corruption_rejected(
        cfg in arb_config(),
        pick in any::<u64>(),
        flip in 1u8..255,
    ) {
        let mut bytes = encode_config(&cfg);
        let idx = (pick % bytes.len() as u64) as usize;
        bytes[idx] ^= flip;
        prop_assert!(decode_config(&bytes).is_err(), "flip at byte {}", idx);
    }

    #[test]
    fn random_garbage_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_result(&data);
        let _ = decode_config(&data);
        let _ = riq_serve::decode_program(&data);
        let _ = riq_serve::decode_job(&data);
    }
}
