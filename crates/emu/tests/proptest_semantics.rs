//! Property tests on the shared instruction semantics: algebraic
//! identities, determinism, and state-isolation guarantees that the cycle
//! simulator's speculative execution relies on.

use proptest::prelude::*;
use riq_emu::{execute, ArchState, ControlFlow, ExecContext, MemFault, SparseMemory};
use riq_isa::{AluOp, FpReg, Inst, IntReg};

struct Ctx {
    state: ArchState,
    mem: SparseMemory,
}

impl Ctx {
    fn new() -> Ctx {
        Ctx { state: ArchState::new(), mem: SparseMemory::new() }
    }
}

impl ExecContext for Ctx {
    fn int(&self, r: IntReg) -> u32 {
        self.state.int_reg(r)
    }
    fn set_int(&mut self, r: IntReg, v: u32) {
        self.state.set_int_reg(r, v);
    }
    fn fp_bits(&self, r: FpReg) -> u64 {
        self.state.fp_reg_bits(r)
    }
    fn set_fp_bits(&mut self, r: FpReg, v: u64) {
        self.state.set_fp_reg_bits(r, v);
    }
    fn load_u32(&mut self, addr: u32) -> Result<u32, MemFault> {
        self.mem.load_u32(addr)
    }
    fn load_u64(&mut self, addr: u32) -> Result<u64, MemFault> {
        self.mem.load_u64(addr)
    }
    fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        self.mem.store_u32(addr, v)
    }
    fn store_u64(&mut self, addr: u32, v: u64) -> Result<(), MemFault> {
        self.mem.store_u64(addr, v)
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    let mut ctx = Ctx::new();
    let (r1, r2, r3) = (IntReg::new(1), IntReg::new(2), IntReg::new(3));
    ctx.set_int(r1, a);
    ctx.set_int(r2, b);
    let inst = Inst::Alu { op, rd: r3, rs: r1, rt: r2 };
    execute(&inst, 0x40_0000, &mut ctx).expect("alu never faults");
    ctx.int(r3)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2000, ..ProptestConfig::default() })]

    #[test]
    fn add_sub_inverse(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(alu(AluOp::Sub, alu(AluOp::Add, a, b), b), a);
    }

    #[test]
    fn commutativity(a in any::<u32>(), b in any::<u32>()) {
        for op in [AluOp::Add, AluOp::Mul, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Nor] {
            prop_assert_eq!(alu(op, a, b), alu(op, b, a), "{:?}", op);
        }
    }

    #[test]
    fn division_identity(a in any::<u32>(), b in 1u32..0x8000_0000) {
        // a = (a / b) * b + (a % b) in signed arithmetic (b positive keeps
        // us away from the i32::MIN / -1 corner, which wraps by spec).
        let q = alu(AluOp::Div, a, b);
        let r = alu(AluOp::Rem, a, b);
        let back = alu(AluOp::Add, alu(AluOp::Mul, q, b), r);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn slt_is_a_total_order(a in any::<u32>(), b in any::<u32>()) {
        let lt = alu(AluOp::Slt, a, b);
        let gt = alu(AluOp::Slt, b, a);
        prop_assert!(lt <= 1 && gt <= 1);
        if a == b {
            prop_assert_eq!((lt, gt), (0, 0));
        } else {
            prop_assert_eq!(lt + gt, 1, "exactly one direction holds");
        }
    }

    #[test]
    fn branch_pairs_are_complementary(v in any::<u32>()) {
        // beq/bne and the four compare-to-zero conditions partition.
        let mut ctx = Ctx::new();
        let r1 = IntReg::new(1);
        ctx.set_int(r1, v);
        let taken = |inst: &Inst, ctx: &mut Ctx| {
            matches!(
                execute(inst, 0x40_0000, ctx).expect("no fault").flow,
                ControlFlow::Taken(_)
            )
        };
        use riq_isa::BranchCond::*;
        let lez = taken(&Inst::Bcond { cond: Lez, rs: r1, off: 4 }, &mut ctx);
        let gtz = taken(&Inst::Bcond { cond: Gtz, rs: r1, off: 4 }, &mut ctx);
        prop_assert_ne!(lez, gtz, "lez and gtz partition");
        let ltz = taken(&Inst::Bcond { cond: Ltz, rs: r1, off: 4 }, &mut ctx);
        let gez = taken(&Inst::Bcond { cond: Gez, rs: r1, off: 4 }, &mut ctx);
        prop_assert_ne!(ltz, gez, "ltz and gez partition");
    }

    #[test]
    fn execution_is_deterministic(a in any::<u32>(), b in any::<u32>(), word in any::<u32>()) {
        // Any decodable instruction run twice from identical state produces
        // identical state.
        let Ok(inst) = Inst::decode(word) else { return Ok(()); };
        let run = || {
            let mut ctx = Ctx::new();
            ctx.set_int(IntReg::new(1), a);
            ctx.set_int(IntReg::new(2), b & 0xffff_fff8); // aligned-ish base
            ctx.state.set_fp_reg(FpReg::new(1), f64::from(a));
            let _ = execute(&inst, 0x40_0000, &mut ctx);
            (ctx.state.clone(), ctx.mem.content_digest())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn stores_then_loads_roundtrip(addr_w in 0u32..1024, v in any::<u32>()) {
        let mut ctx = Ctx::new();
        let (r1, r2, r3) = (IntReg::new(1), IntReg::new(2), IntReg::new(3));
        ctx.set_int(r1, addr_w * 4);
        ctx.set_int(r2, v);
        execute(&Inst::Sw { rt: r2, base: r1, off: 0 }, 0, &mut ctx).expect("aligned");
        execute(&Inst::Lw { rt: r3, base: r1, off: 0 }, 4, &mut ctx).expect("aligned");
        prop_assert_eq!(ctx.int(r3), v);
    }
}
