//! The functional reference machine.
//!
//! [`Machine`] interprets a [`Program`] instruction by instruction with no
//! timing model — it is the `sim-safe` of this workspace. Differential
//! tests run every workload here and on the cycle simulator and require the
//! final architectural states to match.

use crate::exec::{execute, ArchState, ControlFlow, ExecContext, Executed};
use crate::memory::{MemFault, SparseMemory};
use riq_asm::{Program, STACK_TOP};
use riq_isa::{DecodeInstError, FpReg, Inst, IntReg};
use std::error::Error;
use std::fmt;

/// Error terminating a functional run abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum EmuError {
    /// The word fetched at `pc` did not decode.
    Decode {
        /// Faulting PC.
        pc: u32,
        /// Underlying decode error.
        source: DecodeInstError,
    },
    /// A data access faulted.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// Underlying memory fault.
        source: MemFault,
    },
    /// The instruction budget was exhausted before `halt` committed.
    StepLimit(u64),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Decode { pc, source } => write!(f, "at {pc:#010x}: {source}"),
            EmuError::Mem { pc, source } => write!(f, "at {pc:#010x}: {source}"),
            EmuError::StepLimit(n) => write!(f, "step limit of {n} instructions exceeded"),
        }
    }
}

impl Error for EmuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmuError::Decode { source, .. } => Some(source),
            EmuError::Mem { source, .. } => Some(source),
            EmuError::StepLimit(_) => None,
        }
    }
}

/// Outcome of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An instruction executed; the machine is still running.
    Executed(Inst),
    /// The machine is halted (a `halt` executed now or earlier).
    Halted,
}

/// Full record of one executed instruction, returned by
/// [`Machine::step_recorded`] for observers that need the post-execution
/// outcome (resolved control flow, memory access) and not just the opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRecord {
    /// PC the instruction executed at.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Execution outcome: control flow taken and memory access performed.
    pub exec: Executed,
}

/// Summary returned by [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of instructions executed.
    pub retired: u64,
}

/// The functional instruction-set interpreter.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_asm::assemble;
/// use riq_emu::Machine;
/// use riq_isa::IntReg;
///
/// let program = assemble("  li $r2, 6\n  li $r3, 7\n  mul $r4, $r2, $r3\n  halt\n")?;
/// let mut machine = Machine::new(&program);
/// machine.run(1_000)?;
/// assert_eq!(machine.state().int_reg(IntReg::new(4)), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    state: ArchState,
    mem: SparseMemory,
    pc: u32,
    halted: bool,
    retired: u64,
}

struct Ctx<'a> {
    state: &'a mut ArchState,
    mem: &'a mut SparseMemory,
}

impl ExecContext for Ctx<'_> {
    fn int(&self, r: IntReg) -> u32 {
        self.state.int_reg(r)
    }
    fn set_int(&mut self, r: IntReg, v: u32) {
        self.state.set_int_reg(r, v);
    }
    fn fp_bits(&self, r: FpReg) -> u64 {
        self.state.fp_reg_bits(r)
    }
    fn set_fp_bits(&mut self, r: FpReg, v: u64) {
        self.state.set_fp_reg_bits(r, v);
    }
    fn load_u32(&mut self, addr: u32) -> Result<u32, MemFault> {
        self.mem.load_u32(addr)
    }
    fn load_u64(&mut self, addr: u32) -> Result<u64, MemFault> {
        self.mem.load_u64(addr)
    }
    fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        self.mem.store_u32(addr, v)
    }
    fn store_u64(&mut self, addr: u32, v: u64) -> Result<(), MemFault> {
        self.mem.store_u64(addr, v)
    }
}

impl Machine {
    /// Creates a machine with `program` loaded: text and data copied into
    /// memory, `pc` at the entry point, and `$sp` at the stack top.
    #[must_use]
    pub fn new(program: &Program) -> Machine {
        let mut mem = SparseMemory::new();
        for (i, &word) in program.text().iter().enumerate() {
            let addr = program.text_base() + 4 * i as u32;
            mem.store_u32(addr, word).expect("text base is aligned");
        }
        mem.store_bytes(program.data_base(), program.data());
        let mut state = ArchState::new();
        state.set_int_reg(IntReg::SP, STACK_TOP);
        Machine { state, mem, pc: program.entry(), halted: false, retired: 0 }
    }

    /// Reconstructs a machine from exported architectural state, e.g. a
    /// checkpoint produced by an earlier fast-forward run. The counterpart
    /// of the [`Machine::state`]/[`Machine::memory`]/[`Machine::pc`]/
    /// [`Machine::is_halted`]/[`Machine::retired`] accessors.
    #[must_use]
    pub fn from_state(
        state: ArchState,
        mem: SparseMemory,
        pc: u32,
        halted: bool,
        retired: u64,
    ) -> Machine {
        Machine { state, mem, pc, halted, retired }
    }

    /// The architectural register file.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The architectural memory.
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to memory, e.g. to poke inputs before running.
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether a `halt` has executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an error if the fetched word does not decode or a data access
    /// faults; the machine is left halted in that case.
    pub fn step(&mut self) -> Result<Step, EmuError> {
        match self.step_recorded()? {
            None => Ok(Step::Halted),
            Some(record) if record.exec.flow == ControlFlow::Halt => Ok(Step::Halted),
            Some(record) => Ok(Step::Executed(record.inst)),
        }
    }

    /// Executes one instruction and reports its full outcome: the PC it
    /// executed at, the decoded instruction, and the [`Executed`] record
    /// (resolved control flow plus any memory access). Returns `None` if
    /// the machine was already halted before the call.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::step`].
    pub fn step_recorded(&mut self) -> Result<Option<StepRecord>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let word = self.mem.load_u32(pc).map_err(|source| {
            self.halted = true;
            EmuError::Mem { pc, source }
        })?;
        let inst = Inst::decode(word).map_err(|source| {
            self.halted = true;
            EmuError::Decode { pc, source }
        })?;
        let mut ctx = Ctx { state: &mut self.state, mem: &mut self.mem };
        let done = execute(&inst, pc, &mut ctx).map_err(|source| {
            self.halted = true;
            EmuError::Mem { pc, source }
        })?;
        self.retired += 1;
        match done.flow {
            ControlFlow::Halt => self.halted = true,
            flow => self.pc = flow.next_pc(pc),
        }
        Ok(Some(StepRecord { pc, inst, exec: done }))
    }

    /// Runs until `halt` or until `limit` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::StepLimit`] if the program does not halt within
    /// the budget, or the first decode/memory fault encountered.
    pub fn run(&mut self, limit: u64) -> Result<RunSummary, EmuError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= limit {
                return Err(EmuError::StepLimit(limit));
            }
            self.step()?;
        }
        Ok(RunSummary { retired: self.retired })
    }

    /// Runs like [`Machine::run`], invoking `observer` with `(pc, inst)`
    /// before each instruction executes. Useful for tracing and for tests
    /// that need the dynamic instruction stream.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_traced(
        &mut self,
        limit: u64,
        mut observer: impl FnMut(u32, &Inst),
    ) -> Result<RunSummary, EmuError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= limit {
                return Err(EmuError::StepLimit(limit));
            }
            let pc = self.pc;
            if let Ok(word) = self.mem.load_u32(pc) {
                if let Ok(inst) = Inst::decode(word) {
                    observer(pc, &inst);
                }
            }
            self.step()?;
        }
        Ok(RunSummary { retired: self.retired })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn run(src: &str) -> Machine {
        let p = assemble(src).expect("assembles");
        let mut m = Machine::new(&p);
        m.run(1_000_000).expect("halts");
        m
    }

    #[test]
    fn arithmetic_program() {
        let m = run("  li $r2, 21\n  add $r3, $r2, $r2\n  halt\n");
        assert_eq!(m.state().int_reg(IntReg::new(3)), 42);
        assert_eq!(m.retired(), 3);
    }

    #[test]
    fn loop_sums_array() {
        let m = run(r#"
            .data
            vec: .double 1.0, 2.0, 3.0, 4.0
            .text
                la   $r6, vec
                li   $r2, 4
            loop:
                l.d  $f0, 0($r6)
                add.d $f2, $f2, $f0
                addi $r6, $r6, 8
                addi $r2, $r2, -1
                bne  $r2, $r0, loop
                halt
        "#);
        assert_eq!(m.state().fp_reg(FpReg::new(2)), 10.0);
    }

    #[test]
    fn procedure_call_and_return() {
        let m = run(r#"
            .entry main
            double:
                add $r4, $r4, $r4
                jr $ra
            main:
                li  $r4, 5
                jal double
                jal double
                halt
        "#);
        assert_eq!(m.state().int_reg(IntReg::new(4)), 20);
    }

    #[test]
    fn stack_spill_restore() {
        let m = run(r#"
                li   $r8, 123
                addi $sp, $sp, -8
                sw   $r8, 0($sp)
                li   $r8, 0
                lw   $r9, 0($sp)
                addi $sp, $sp, 8
                halt
        "#);
        assert_eq!(m.state().int_reg(IntReg::new(9)), 123);
    }

    #[test]
    fn step_limit_detected() {
        let p = assemble("loop: b loop\n  halt\n").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(100), Err(EmuError::StepLimit(100)));
    }

    #[test]
    fn halted_machine_stays_halted() {
        let p = assemble("  halt\n").unwrap();
        let mut m = Machine::new(&p);
        m.run(10).unwrap();
        assert!(m.is_halted());
        assert_eq!(m.step(), Ok(Step::Halted));
        assert_eq!(m.retired(), 1);
    }

    #[test]
    fn trace_observes_dynamic_stream() {
        let p = assemble("  li $r2, 2\nloop: addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n")
            .unwrap();
        let mut m = Machine::new(&p);
        let mut pcs = Vec::new();
        m.run_traced(100, |pc, _| pcs.push(pc)).unwrap();
        // li(1) + 2 iterations of (addi, bne) + halt = 6 dynamic instructions.
        assert_eq!(pcs.len(), 6);
        assert_eq!(pcs[1], pcs[3], "loop body re-executed");
    }

    #[test]
    fn step_recorded_reports_outcome_and_state_roundtrips() {
        let p = assemble(
            "  li $r2, 1\n  sw $r2, 0x100($r0)\nloop: addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        let li = m.step_recorded().unwrap().expect("running");
        assert_eq!(li.pc, p.entry());
        assert!(li.exec.mem.is_none());
        let sw = m.step_recorded().unwrap().expect("running");
        let access = sw.exec.mem.expect("store accesses memory");
        assert!(access.is_store);
        assert_eq!(access.addr, 0x100);

        // Export mid-run state, rebuild a machine from it, and check the
        // replica finishes identically to the original.
        let copy = Machine::from_state(
            m.state().clone(),
            m.memory().clone(),
            m.pc(),
            m.is_halted(),
            m.retired(),
        );
        let mut original = m.clone();
        let mut replica = copy;
        original.run(1_000).unwrap();
        replica.run(1_000).unwrap();
        assert_eq!(original.state(), replica.state());
        assert_eq!(original.retired(), replica.retired());
        assert_eq!(original.memory().content_digest(), replica.memory().content_digest());

        assert!(replica.is_halted());
        assert_eq!(replica.step_recorded().unwrap(), None, "halted machine records nothing");
    }

    #[test]
    fn jump_to_data_is_a_decode_error() {
        // `jr` into the data segment lands on a non-instruction word.
        let p =
            assemble(".data\nx: .word 0xfc000000\n.text\n  la $r2, x\n  jr $r2\n  halt\n").unwrap();
        let mut m = Machine::new(&p);
        let err = m.run(100).unwrap_err();
        assert!(matches!(err, EmuError::Decode { .. }), "{err}");
    }
}
