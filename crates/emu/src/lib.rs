//! # riq-emu — functional reference emulator
//!
//! The `sim-safe` of the riq workspace: a timing-free interpreter for
//! [`riq_isa`] programs. It serves two purposes:
//!
//! 1. **Differential-testing oracle.** Every benchmark and thousands of
//!    random programs run both here and on the `riq-core` cycle simulator;
//!    final architectural register files and memory digests must match.
//!    The reuse issue queue is a microarchitectural mechanism and must be
//!    architecturally invisible.
//! 2. **Shared semantics.** The [`execute`] function is the single
//!    definition of instruction behaviour; the cycle simulator calls the
//!    same function against its speculative state at dispatch time, exactly
//!    like SimpleScalar's `sim-outorder` does with its `ss.def` semantics.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_asm::assemble;
//! use riq_emu::Machine;
//! use riq_isa::IntReg;
//!
//! let program = assemble(
//!     "  li $r2, 10\nloop: add $r3, $r3, $r2\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
//! )?;
//! let mut machine = Machine::new(&program);
//! machine.run(10_000)?;
//! assert_eq!(machine.state().int_reg(IntReg::new(3)), 55);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod exec;
mod machine;
mod memory;

pub use exec::{execute, ArchState, ControlFlow, ExecContext, Executed, MemAccess};
pub use machine::{EmuError, Machine, RunSummary, Step, StepRecord};
pub use memory::{MemFault, SparseMemory, PAGE_SIZE};
