//! Shared instruction semantics.
//!
//! [`execute`] evaluates one instruction against an [`ExecContext`]. The
//! functional emulator runs it against architectural state; the cycle
//! simulator (`riq-core`) runs the *same* function against its speculative
//! state at dispatch time, which is what guarantees the two can be
//! differentially tested against each other: there is exactly one
//! definition of what every instruction does.

use crate::memory::MemFault;
use riq_isa::{
    branch_target, AluImmOp, AluOp, BranchCond, FpAluOp, FpCond, FpReg, FpUnaryOp, Inst, IntReg,
    ShiftOp, NUM_FP_REGS, NUM_INT_REGS,
};

/// State an instruction executes against.
///
/// Implementations must make `$r0` read as zero and ignore writes to it;
/// embedding an [`ArchState`] provides that for free.
pub trait ExecContext {
    /// Reads an integer register.
    fn int(&self, r: IntReg) -> u32;
    /// Writes an integer register.
    fn set_int(&mut self, r: IntReg, v: u32);
    /// Reads an FP register's raw bits.
    fn fp_bits(&self, r: FpReg) -> u64;
    /// Writes an FP register's raw bits.
    fn set_fp_bits(&mut self, r: FpReg, v: u64);
    /// Loads an aligned 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] for misaligned addresses.
    fn load_u32(&mut self, addr: u32) -> Result<u32, MemFault>;
    /// Loads an aligned 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] for misaligned addresses.
    fn load_u64(&mut self, addr: u32) -> Result<u64, MemFault>;
    /// Stores an aligned 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] for misaligned addresses.
    fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault>;
    /// Stores an aligned 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] for misaligned addresses.
    fn store_u64(&mut self, addr: u32, v: u64) -> Result<(), MemFault>;
}

/// Architectural register file with correct `$r0` semantics.
///
/// # Examples
///
/// ```
/// use riq_emu::ArchState;
/// use riq_isa::IntReg;
/// let mut s = ArchState::new();
/// s.set_int_reg(IntReg::ZERO, 42);
/// assert_eq!(s.int_reg(IntReg::ZERO), 0, "$r0 ignores writes");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    int: [u32; NUM_INT_REGS],
    fp: [u64; NUM_FP_REGS],
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState { int: [0; NUM_INT_REGS], fp: [0; NUM_FP_REGS] }
    }
}

impl ArchState {
    /// Creates a zeroed register file.
    #[must_use]
    pub fn new() -> ArchState {
        ArchState::default()
    }

    /// Reads an integer register.
    #[must_use]
    pub fn int_reg(&self, r: IntReg) -> u32 {
        self.int[r.number() as usize]
    }

    /// Writes an integer register (writes to `$r0` are discarded).
    pub fn set_int_reg(&mut self, r: IntReg, v: u32) {
        if !r.is_zero() {
            self.int[r.number() as usize] = v;
        }
    }

    /// Reads an FP register's raw bits.
    #[must_use]
    pub fn fp_reg_bits(&self, r: FpReg) -> u64 {
        self.fp[r.number() as usize]
    }

    /// Reads an FP register as a double.
    #[must_use]
    pub fn fp_reg(&self, r: FpReg) -> f64 {
        f64::from_bits(self.fp[r.number() as usize])
    }

    /// Writes an FP register's raw bits.
    pub fn set_fp_reg_bits(&mut self, r: FpReg, v: u64) {
        self.fp[r.number() as usize] = v;
    }

    /// Writes an FP register from a double.
    pub fn set_fp_reg(&mut self, r: FpReg, v: f64) {
        self.fp[r.number() as usize] = v.to_bits();
    }
}

/// Control-flow outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Fall through to `pc + 4` (includes not-taken branches).
    Next,
    /// Transfer to an absolute target (taken branch, jump, call, return).
    Taken(u32),
    /// The program halted.
    Halt,
}

impl ControlFlow {
    /// The next PC implied by this outcome.
    #[must_use]
    pub fn next_pc(self, pc: u32) -> u32 {
        match self {
            ControlFlow::Next => pc.wrapping_add(4),
            ControlFlow::Taken(t) => t,
            ControlFlow::Halt => pc,
        }
    }
}

/// Description of the memory access an instruction performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u32,
    /// Access width in bytes (4 or 8).
    pub width: u32,
    /// Whether the access was a store.
    pub is_store: bool,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executed {
    /// Where control goes next.
    pub flow: ControlFlow,
    /// The memory access performed, if any.
    pub mem: Option<MemAccess>,
}

impl Executed {
    fn next() -> Executed {
        Executed { flow: ControlFlow::Next, mem: None }
    }
}

/// Executes `inst` (located at `pc`) against `ctx`.
///
/// This is the single source of truth for instruction semantics, shared by
/// the functional emulator and the cycle simulator's dispatch-time
/// execution.
///
/// # Errors
///
/// Returns a [`MemFault`] if a load or store address is misaligned.
pub fn execute<C: ExecContext>(inst: &Inst, pc: u32, ctx: &mut C) -> Result<Executed, MemFault> {
    Ok(match *inst {
        Inst::Nop => Executed::next(),
        Inst::Halt => Executed { flow: ControlFlow::Halt, mem: None },
        Inst::Alu { op, rd, rs, rt } => {
            let a = ctx.int(rs);
            let b = ctx.int(rt);
            let v = eval_alu(op, a, b);
            ctx.set_int(rd, v);
            Executed::next()
        }
        Inst::AluImm { op, rt, rs, imm } => {
            let a = ctx.int(rs);
            let v = eval_alu_imm(op, a, imm);
            ctx.set_int(rt, v);
            Executed::next()
        }
        Inst::Shift { op, rd, rt, shamt } => {
            let a = ctx.int(rt);
            let v = match op {
                ShiftOp::Sll => a << (shamt & 31),
                ShiftOp::Srl => a >> (shamt & 31),
                ShiftOp::Sra => ((a as i32) >> (shamt & 31)) as u32,
            };
            ctx.set_int(rd, v);
            Executed::next()
        }
        Inst::Lui { rt, imm } => {
            ctx.set_int(rt, u32::from(imm) << 16);
            Executed::next()
        }
        Inst::Lw { rt, base, off } => {
            let addr = ctx.int(base).wrapping_add(off as i32 as u32);
            let v = ctx.load_u32(addr)?;
            ctx.set_int(rt, v);
            Executed {
                flow: ControlFlow::Next,
                mem: Some(MemAccess { addr, width: 4, is_store: false }),
            }
        }
        Inst::Sw { rt, base, off } => {
            let addr = ctx.int(base).wrapping_add(off as i32 as u32);
            let v = ctx.int(rt);
            ctx.store_u32(addr, v)?;
            Executed {
                flow: ControlFlow::Next,
                mem: Some(MemAccess { addr, width: 4, is_store: true }),
            }
        }
        Inst::Ld { ft, base, off } => {
            let addr = ctx.int(base).wrapping_add(off as i32 as u32);
            let v = ctx.load_u64(addr)?;
            ctx.set_fp_bits(ft, v);
            Executed {
                flow: ControlFlow::Next,
                mem: Some(MemAccess { addr, width: 8, is_store: false }),
            }
        }
        Inst::Sd { ft, base, off } => {
            let addr = ctx.int(base).wrapping_add(off as i32 as u32);
            let v = ctx.fp_bits(ft);
            ctx.store_u64(addr, v)?;
            Executed {
                flow: ControlFlow::Next,
                mem: Some(MemAccess { addr, width: 8, is_store: true }),
            }
        }
        Inst::FpOp { op, fd, fs, ft } => {
            let a = f64::from_bits(ctx.fp_bits(fs));
            let b = f64::from_bits(ctx.fp_bits(ft));
            let v = match op {
                FpAluOp::AddD => a + b,
                FpAluOp::SubD => a - b,
                FpAluOp::MulD => a * b,
                FpAluOp::DivD => a / b,
            };
            ctx.set_fp_bits(fd, v.to_bits());
            Executed::next()
        }
        Inst::FpUnary { op, fd, fs } => {
            let bits = ctx.fp_bits(fs);
            let v = match op {
                FpUnaryOp::MovD => bits,
                FpUnaryOp::NegD => (-f64::from_bits(bits)).to_bits(),
                FpUnaryOp::SqrtD => f64::from_bits(bits).sqrt().to_bits(),
                FpUnaryOp::CvtDW => f64::from(bits as u32 as i32).to_bits(),
                // Saturating truncation, as in Rust's `as` cast; NaN -> 0.
                FpUnaryOp::CvtWD => u64::from((f64::from_bits(bits) as i32) as u32),
            };
            ctx.set_fp_bits(fd, v);
            Executed::next()
        }
        Inst::CmpD { cond, rd, fs, ft } => {
            let a = f64::from_bits(ctx.fp_bits(fs));
            let b = f64::from_bits(ctx.fp_bits(ft));
            let t = match cond {
                FpCond::Eq => a == b,
                FpCond::Lt => a < b,
                FpCond::Le => a <= b,
            };
            ctx.set_int(rd, u32::from(t));
            Executed::next()
        }
        Inst::Mtc1 { rs, fd } => {
            let v = u64::from(ctx.int(rs));
            ctx.set_fp_bits(fd, v);
            Executed::next()
        }
        Inst::Mfc1 { rd, fs } => {
            let v = ctx.fp_bits(fs) as u32;
            ctx.set_int(rd, v);
            Executed::next()
        }
        Inst::Beq { rs, rt, off } => branch(ctx.int(rs) == ctx.int(rt), pc, off),
        Inst::Bne { rs, rt, off } => branch(ctx.int(rs) != ctx.int(rt), pc, off),
        Inst::Bcond { cond, rs, off } => {
            let v = ctx.int(rs) as i32;
            let t = match cond {
                BranchCond::Lez => v <= 0,
                BranchCond::Gtz => v > 0,
                BranchCond::Ltz => v < 0,
                BranchCond::Gez => v >= 0,
            };
            branch(t, pc, off)
        }
        Inst::J { target } => Executed { flow: ControlFlow::Taken(target), mem: None },
        Inst::Jal { target } => {
            ctx.set_int(IntReg::RA, pc.wrapping_add(4));
            Executed { flow: ControlFlow::Taken(target), mem: None }
        }
        Inst::Jr { rs } => Executed { flow: ControlFlow::Taken(ctx.int(rs)), mem: None },
        Inst::Jalr { rd, rs } => {
            let target = ctx.int(rs);
            ctx.set_int(rd, pc.wrapping_add(4));
            Executed { flow: ControlFlow::Taken(target), mem: None }
        }
    })
}

fn branch(taken: bool, pc: u32, off: i16) -> Executed {
    let flow = if taken { ControlFlow::Taken(branch_target(pc, off)) } else { ControlFlow::Next };
    Executed { flow, mem: None }
}

fn eval_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Nor => !(a | b),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Sllv => a << (b & 31),
        AluOp::Srlv => a >> (b & 31),
        AluOp::Srav => ((a as i32) >> (b & 31)) as u32,
    }
}

fn eval_alu_imm(op: AluImmOp, a: u32, imm: i16) -> u32 {
    let sext = imm as i32 as u32;
    let zext = u32::from(imm as u16);
    match op {
        AluImmOp::Addi => a.wrapping_add(sext),
        AluImmOp::Slti => u32::from((a as i32) < i32::from(imm)),
        AluImmOp::Sltiu => u32::from(a < sext),
        AluImmOp::Andi => a & zext,
        AluImmOp::Ori => a | zext,
        AluImmOp::Xori => a ^ zext,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::SparseMemory;

    struct Ctx {
        state: ArchState,
        mem: SparseMemory,
    }

    impl Ctx {
        fn new() -> Ctx {
            Ctx { state: ArchState::new(), mem: SparseMemory::new() }
        }
    }

    impl ExecContext for Ctx {
        fn int(&self, r: IntReg) -> u32 {
            self.state.int_reg(r)
        }
        fn set_int(&mut self, r: IntReg, v: u32) {
            self.state.set_int_reg(r, v);
        }
        fn fp_bits(&self, r: FpReg) -> u64 {
            self.state.fp_reg_bits(r)
        }
        fn set_fp_bits(&mut self, r: FpReg, v: u64) {
            self.state.set_fp_reg_bits(r, v);
        }
        fn load_u32(&mut self, addr: u32) -> Result<u32, MemFault> {
            self.mem.load_u32(addr)
        }
        fn load_u64(&mut self, addr: u32) -> Result<u64, MemFault> {
            self.mem.load_u64(addr)
        }
        fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
            self.mem.store_u32(addr, v)
        }
        fn store_u64(&mut self, addr: u32, v: u64) -> Result<(), MemFault> {
            self.mem.store_u64(addr, v)
        }
    }

    fn r(n: u8) -> IntReg {
        IntReg::new(n)
    }
    fn f(n: u8) -> FpReg {
        FpReg::new(n)
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(eval_alu(AluOp::Add, u32::MAX, 1), 0, "wrapping add");
        assert_eq!(eval_alu(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(eval_alu(AluOp::Div, 7u32, (-2i32) as u32), (-3i32) as u32);
        assert_eq!(eval_alu(AluOp::Div, 5, 0), 0, "div by zero defined as 0");
        assert_eq!(eval_alu(AluOp::Rem, 7, 0), 0);
        assert_eq!(eval_alu(AluOp::Slt, (-1i32) as u32, 0), 1);
        assert_eq!(eval_alu(AluOp::Sltu, (-1i32) as u32, 0), 0);
        assert_eq!(eval_alu(AluOp::Srav, (-8i32) as u32, 1), (-4i32) as u32);
        assert_eq!(eval_alu(AluOp::Nor, 0, 0), u32::MAX);
    }

    #[test]
    fn imm_semantics() {
        assert_eq!(eval_alu_imm(AluImmOp::Addi, 10, -3), 7);
        assert_eq!(eval_alu_imm(AluImmOp::Andi, 0xffff_ffff, -1), 0xffff);
        assert_eq!(eval_alu_imm(AluImmOp::Slti, (-5i32) as u32, -4), 1);
        assert_eq!(
            eval_alu_imm(AluImmOp::Sltiu, 1, -1),
            1,
            "sltiu sign-extends then compares unsigned"
        );
    }

    #[test]
    fn load_store_roundtrip() {
        let mut ctx = Ctx::new();
        ctx.set_int(r(2), 0x1000);
        ctx.set_int(r(3), 99);
        let sw = Inst::Sw { rt: r(3), base: r(2), off: 4 };
        let done = execute(&sw, 0x400000, &mut ctx).unwrap();
        assert_eq!(done.mem, Some(MemAccess { addr: 0x1004, width: 4, is_store: true }));
        let lw = Inst::Lw { rt: r(4), base: r(2), off: 4 };
        execute(&lw, 0x400004, &mut ctx).unwrap();
        assert_eq!(ctx.int(r(4)), 99);
    }

    #[test]
    fn fp_pipeline() {
        let mut ctx = Ctx::new();
        ctx.set_int(r(5), 3);
        execute(&Inst::Mtc1 { rs: r(5), fd: f(0) }, 0, &mut ctx).unwrap();
        execute(&Inst::FpUnary { op: FpUnaryOp::CvtDW, fd: f(1), fs: f(0) }, 4, &mut ctx).unwrap();
        assert_eq!(f64::from_bits(ctx.fp_bits(f(1))), 3.0);
        ctx.set_fp_bits(f(2), 1.5f64.to_bits());
        execute(&Inst::FpOp { op: FpAluOp::MulD, fd: f(3), fs: f(1), ft: f(2) }, 8, &mut ctx)
            .unwrap();
        assert_eq!(f64::from_bits(ctx.fp_bits(f(3))), 4.5);
        execute(&Inst::CmpD { cond: FpCond::Lt, rd: r(6), fs: f(2), ft: f(3) }, 12, &mut ctx)
            .unwrap();
        assert_eq!(ctx.int(r(6)), 1);
    }

    #[test]
    fn nan_compares_false() {
        let mut ctx = Ctx::new();
        ctx.set_fp_bits(f(0), f64::NAN.to_bits());
        ctx.set_fp_bits(f(1), 1.0f64.to_bits());
        for cond in [FpCond::Eq, FpCond::Lt, FpCond::Le] {
            execute(&Inst::CmpD { cond, rd: r(2), fs: f(0), ft: f(1) }, 0, &mut ctx).unwrap();
            assert_eq!(ctx.int(r(2)), 0);
        }
    }

    #[test]
    fn branches_and_calls() {
        let mut ctx = Ctx::new();
        ctx.set_int(r(1), 5);
        let beq = Inst::Beq { rs: r(1), rt: r(0), off: 8 };
        assert_eq!(execute(&beq, 0x100, &mut ctx).unwrap().flow, ControlFlow::Next, "not taken");
        let bne = Inst::Bne { rs: r(1), rt: r(0), off: -4 };
        assert_eq!(
            execute(&bne, 0x100, &mut ctx).unwrap().flow,
            ControlFlow::Taken(0x100 + 4 - 16)
        );
        let jal = Inst::Jal { target: 0x500 };
        assert_eq!(execute(&jal, 0x100, &mut ctx).unwrap().flow, ControlFlow::Taken(0x500));
        assert_eq!(ctx.int(IntReg::RA), 0x104);
        let jr = Inst::Jr { rs: IntReg::RA };
        assert_eq!(execute(&jr, 0x500, &mut ctx).unwrap().flow, ControlFlow::Taken(0x104));
    }

    #[test]
    fn bcond_signed_compares() {
        let mut ctx = Ctx::new();
        ctx.set_int(r(1), (-1i32) as u32);
        let taken = |cond, ctx: &mut Ctx| {
            let inst = Inst::Bcond { cond, rs: r(1), off: 1 };
            matches!(execute(&inst, 0, ctx).unwrap().flow, ControlFlow::Taken(_))
        };
        assert!(taken(BranchCond::Ltz, &mut ctx));
        assert!(taken(BranchCond::Lez, &mut ctx));
        assert!(!taken(BranchCond::Gtz, &mut ctx));
        assert!(!taken(BranchCond::Gez, &mut ctx));
    }

    #[test]
    fn halt_flow() {
        let mut ctx = Ctx::new();
        assert_eq!(execute(&Inst::Halt, 0, &mut ctx).unwrap().flow, ControlFlow::Halt);
        assert_eq!(ControlFlow::Halt.next_pc(0x40), 0x40);
        assert_eq!(ControlFlow::Next.next_pc(0x40), 0x44);
    }
}
