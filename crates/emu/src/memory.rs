//! Sparse byte-addressable functional memory.
//!
//! Both the emulator and the cycle simulator back their architectural
//! memory with [`SparseMemory`]: a page map over the 32-bit address space.
//! Reads of untouched memory return zero, like a freshly-zeroed process
//! image. Accesses must be naturally aligned (the ISA has no unaligned
//! loads/stores).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

const PAGE_SHIFT: u32 = 12;
/// Size in bytes of one [`SparseMemory`] page.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Fault raised by a functional memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// The access was not naturally aligned.
    Unaligned {
        /// Faulting address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unaligned { addr, width } => {
                write!(f, "unaligned {width}-byte access at {addr:#010x}")
            }
        }
    }
}

impl Error for MemFault {}

/// A sparse, zero-initialized, byte-addressable 32-bit memory.
///
/// Equality compares the resident-page representation: a page that was
/// touched but contains only zeroes differs from an absent page. Compare
/// [`SparseMemory::content_digest`] for observable-content equality.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_emu::SparseMemory;
/// let mut mem = SparseMemory::new();
/// mem.store_u32(0x1000_0000, 0xdead_beef)?;
/// assert_eq!(mem.load_u32(0x1000_0000)?, 0xdead_beef);
/// assert_eq!(mem.load_u32(0x2000_0000)?, 0, "untouched memory reads zero");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMemory {
    pages: BTreeMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Number of resident pages (for tests and capacity introspection).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[must_use]
    pub fn load_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn store_u8(&mut self, addr: u32, value: u8) {
        let page =
            self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    fn check_align(addr: u32, width: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(width) {
            Err(MemFault::Unaligned { addr, width })
        } else {
            Ok(())
        }
    }

    /// Reads an aligned 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] if `addr` is not 4-byte aligned.
    pub fn load_u32(&self, addr: u32) -> Result<u32, MemFault> {
        Self::check_align(addr, 4)?;
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.load_u8(addr.wrapping_add(i as u32));
        }
        Ok(u32::from_le_bytes(bytes))
    }

    /// Writes an aligned 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] if `addr` is not 4-byte aligned.
    pub fn store_u32(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        Self::check_align(addr, 4)?;
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u32), *b);
        }
        Ok(())
    }

    /// Reads an aligned 64-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] if `addr` is not 8-byte aligned.
    pub fn load_u64(&self, addr: u32) -> Result<u64, MemFault> {
        Self::check_align(addr, 8)?;
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.load_u8(addr.wrapping_add(i as u32));
        }
        Ok(u64::from_le_bytes(bytes))
    }

    /// Writes an aligned 64-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] if `addr` is not 8-byte aligned.
    pub fn store_u64(&mut self, addr: u32, value: u64) -> Result<(), MemFault> {
        Self::check_align(addr, 8)?;
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u32), *b);
        }
        Ok(())
    }

    /// Iterates resident pages as `(page number, contents)` in ascending
    /// page-number order. A page's base address is `page_number << 12`.
    pub fn pages(&self) -> impl Iterator<Item = (u32, &[u8; PAGE_SIZE])> {
        self.pages.iter().map(|(&pno, page)| (pno, &**page))
    }

    /// Installs a full page at page number `pno`, replacing any resident
    /// content. Used to restore a memory image from a snapshot.
    pub fn insert_page(&mut self, pno: u32, data: [u8; PAGE_SIZE]) {
        self.pages.insert(pno, Box::new(data));
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn store_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// A deterministic FNV-1a digest of all resident content, used by
    /// differential tests to compare final memory states cheaply.
    ///
    /// Pages that contain only zeroes hash identically to absent pages, so
    /// two memories with the same observable content always digest equal.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for (&pno, page) in &self.pages {
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            for b in pno.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            for &b in page.iter() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mem = SparseMemory::new();
        assert_eq!(mem.load_u8(0), 0);
        assert_eq!(mem.load_u32(0x8000_0000).unwrap(), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn word_roundtrip_little_endian() {
        let mut mem = SparseMemory::new();
        mem.store_u32(0x100, 0x0102_0304).unwrap();
        assert_eq!(mem.load_u8(0x100), 0x04);
        assert_eq!(mem.load_u8(0x103), 0x01);
        assert_eq!(mem.load_u32(0x100).unwrap(), 0x0102_0304);
    }

    #[test]
    fn double_roundtrip() {
        let mut mem = SparseMemory::new();
        mem.store_u64(0x2000, f64::to_bits(-1.5)).unwrap();
        assert_eq!(f64::from_bits(mem.load_u64(0x2000).unwrap()), -1.5);
    }

    #[test]
    fn alignment_enforced() {
        let mut mem = SparseMemory::new();
        assert_eq!(mem.load_u32(2), Err(MemFault::Unaligned { addr: 2, width: 4 }));
        assert_eq!(mem.store_u64(4, 0), Err(MemFault::Unaligned { addr: 4, width: 8 }));
    }

    #[test]
    fn cross_page_write() {
        let mut mem = SparseMemory::new();
        let addr = 0x1000 - 4; // last word of the first page
        mem.store_u64(0xff8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.load_u32(addr).unwrap(), 0x1122_3344);
        assert!(mem.resident_pages() >= 1);
    }

    #[test]
    fn digest_ignores_zero_pages() {
        let mut a = SparseMemory::new();
        let b = SparseMemory::new();
        assert_eq!(a.content_digest(), b.content_digest());
        a.store_u32(0x5000, 0).unwrap(); // touched but still zero
        assert_eq!(a.content_digest(), b.content_digest());
        a.store_u32(0x5000, 1).unwrap();
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn page_export_import_roundtrip() {
        let mut mem = SparseMemory::new();
        mem.store_u32(0x100, 0xdead_beef).unwrap();
        mem.store_u8(0x5001, 7);
        let mut copy = SparseMemory::new();
        for (pno, page) in mem.pages() {
            copy.insert_page(pno, *page);
        }
        assert_eq!(copy, mem);
        assert_eq!(copy.load_u32(0x100).unwrap(), 0xdead_beef);
        assert_eq!(copy.load_u8(0x5001), 7);
    }

    #[test]
    fn store_bytes_bulk() {
        let mut mem = SparseMemory::new();
        mem.store_bytes(0x10, &[1, 2, 3, 4, 5]);
        assert_eq!(mem.load_u8(0x14), 5);
    }
}
