//! Automatic test-case shrinking.
//!
//! A failing [`TestProgram`] is reduced by greedy tree surgery: remove a
//! statement, collapse a loop to one trip, halve a trip count, splice a
//! loop or skip body inline, drop a data-dependent exit, flatten a
//! recursion. Each candidate is accepted only if the caller's predicate
//! says it *still fails*; the process repeats to a fixpoint, so the result
//! is 1-minimal with respect to these operations. The number of accepted
//! reductions is the "shrink steps" figure reported by the harness.

use crate::gen::{Stmt, TestProgram};

/// One reduction applied at a tree position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Delete the statement entirely.
    Remove,
    /// Replace a `Loop`/`Skip` with its body, spliced inline.
    Splice,
    /// Set a `Loop`'s trip count to 1.
    TripsOne,
    /// Halve a `Loop`'s trip count.
    TripsHalf,
    /// Remove a `Loop`'s data-dependent exit.
    DropDataDep,
    /// Set a `Recurse` depth to 1.
    DepthOne,
}

/// Result of shrinking: the smallest still-failing program found and how
/// many accepted reductions it took to get there.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized program (still failing under the caller's predicate).
    pub program: TestProgram,
    /// Number of reductions that were accepted.
    pub steps: u64,
    /// Number of predicate evaluations spent.
    pub evals: u64,
}

/// Hard cap on predicate evaluations — shrinking a pathological case must
/// not stall the whole fuzz run.
const MAX_EVALS: u64 = 600;

fn collect_ops(stmts: &[Stmt], path: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, Op)>) {
    for (i, s) in stmts.iter().enumerate() {
        path.push(i);
        out.push((path.clone(), Op::Remove));
        match s {
            Stmt::Loop { trips, data_dep, body } => {
                out.push((path.clone(), Op::Splice));
                if *trips > 1 {
                    out.push((path.clone(), Op::TripsOne));
                }
                if *trips > 2 {
                    out.push((path.clone(), Op::TripsHalf));
                }
                if data_dep.is_some() {
                    out.push((path.clone(), Op::DropDataDep));
                }
                collect_ops(body, path, out);
            }
            Stmt::Skip { body, .. } => {
                out.push((path.clone(), Op::Splice));
                collect_ops(body, path, out);
            }
            Stmt::Recurse { depth } if *depth > 1 => {
                out.push((path.clone(), Op::DepthOne));
            }
            _ => {}
        }
        path.pop();
    }
}

/// Applies `op` at `path`; returns `false` when the path no longer resolves
/// (an earlier accepted reduction restructured the tree).
fn apply(stmts: &mut Vec<Stmt>, path: &[usize], op: Op) -> bool {
    let (&last, prefix) = match path.split_last() {
        Some(x) => x,
        None => return false,
    };
    let mut cur = stmts;
    for &i in prefix {
        match cur.get_mut(i) {
            Some(Stmt::Loop { body, .. }) | Some(Stmt::Skip { body, .. }) => cur = body,
            _ => return false,
        }
    }
    if last >= cur.len() {
        return false;
    }
    match op {
        Op::Remove => {
            cur.remove(last);
            true
        }
        Op::Splice => match cur[last].clone() {
            Stmt::Loop { body, .. } | Stmt::Skip { body, .. } => {
                cur.splice(last..=last, body);
                true
            }
            _ => false,
        },
        Op::TripsOne => match &mut cur[last] {
            Stmt::Loop { trips, .. } if *trips > 1 => {
                *trips = 1;
                true
            }
            _ => false,
        },
        Op::TripsHalf => match &mut cur[last] {
            Stmt::Loop { trips, .. } if *trips > 2 => {
                *trips /= 2;
                true
            }
            _ => false,
        },
        Op::DropDataDep => match &mut cur[last] {
            Stmt::Loop { data_dep: dd @ Some(_), .. } => {
                *dd = None;
                true
            }
            _ => false,
        },
        Op::DepthOne => match &mut cur[last] {
            Stmt::Recurse { depth } if *depth > 1 => {
                *depth = 1;
                true
            }
            _ => false,
        },
    }
}

/// Greedily minimizes `program` while `still_fails` holds.
///
/// The input is assumed to fail already; the returned program is the last
/// accepted candidate (or the input itself if nothing could be removed).
pub fn shrink(
    program: &TestProgram,
    mut still_fails: impl FnMut(&TestProgram) -> bool,
) -> ShrinkOutcome {
    let mut best = program.clone();
    let mut steps = 0u64;
    let mut evals = 0u64;
    loop {
        let mut ops = Vec::new();
        collect_ops(&best.stmts, &mut Vec::new(), &mut ops);
        let mut progressed = false;
        for (path, op) in ops {
            if evals >= MAX_EVALS {
                return ShrinkOutcome { program: best, steps, evals };
            }
            let mut candidate = best.clone();
            if !apply(&mut candidate.stmts, &path, op) {
                continue; // stale path after an earlier accepted reduction
            }
            evals += 1;
            if still_fails(&candidate) {
                best = candidate;
                steps += 1;
                progressed = true;
                // Paths collected before this reduction may now point at
                // different nodes; restart the pass on the new tree.
                break;
            }
        }
        if !progressed {
            return ShrinkOutcome { program: best, steps, evals };
        }
    }
}

/// Number of statements in the tree (a size measure for tests and logs).
#[must_use]
pub fn tree_size(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Loop { body, .. } | Stmt::Skip { body, .. } => 1 + tree_size(body),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// Predicate: "fails" iff the rendered source still contains a `mul`.
    fn has_mul(p: &TestProgram) -> bool {
        p.render().contains("mul ")
    }

    #[test]
    fn shrinks_to_single_statement_for_simple_predicate() {
        // Find a seed whose program contains an integer multiply.
        let seed = (0..200u64).find(|&s| has_mul(&generate(s))).expect("some seed uses mul");
        let out = shrink(&generate(seed), has_mul);
        assert!(has_mul(&out.program), "minimized case still fails");
        assert!(out.steps > 0, "some reduction must be possible");
        // 1-minimal: removing any remaining statement breaks the predicate,
        // so at most one top-level statement can remain per `mul` — for this
        // predicate the tree collapses to exactly one line.
        assert_eq!(tree_size(&out.program.stmts), 1, "tree: {:?}", out.program.stmts);
    }

    #[test]
    fn shrink_is_identity_when_nothing_can_go() {
        let p = TestProgram {
            seed: 1,
            stmts: vec![Stmt::Line("mul $r3, $r4, $r5".into())],
            data_order: [0, 1, 2],
            data_pad: 0,
        };
        let out = shrink(&p, has_mul);
        assert_eq!(out.steps, 0);
        assert_eq!(tree_size(&out.program.stmts), 1);
    }

    #[test]
    fn loop_reductions_prefer_fewer_trips() {
        let p = TestProgram {
            seed: 2,
            stmts: vec![Stmt::Loop {
                trips: 48,
                data_dep: None,
                body: vec![
                    Stmt::Line("mul $r3, $r4, $r5".into()),
                    Stmt::Line("add $r6, $r6, $r3".into()),
                ],
            }],
            data_order: [0, 1, 2],
            data_pad: 0,
        };
        // Predicate requires the loop structure to survive (label present)
        // and the mul inside it.
        let out = shrink(&p, |c| {
            let s = c.render();
            s.contains("mul ") && s.contains("L1:")
        });
        match &out.program.stmts[..] {
            [Stmt::Loop { trips, body, .. }] => {
                assert_eq!(*trips, 1, "trip count minimized");
                assert_eq!(body.len(), 1, "loop body minimized");
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }
}
