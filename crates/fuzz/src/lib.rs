//! # riq-fuzz — differential fuzzing for the reuse-capable issue queue
//!
//! The paper's design promise is that instruction reuse is *purely
//! microarchitectural*: enabling the reuse issue queue, changing its size,
//! or resuming from a mid-program checkpoint must never change what the
//! program computes. This crate turns that promise into a fuzzing oracle:
//!
//! 1. [`gen`] generates structured random programs (nested loops,
//!    data-dependent exits, aliasing memory windows, FP edge values,
//!    bounded recursion) from a seed, deterministically;
//! 2. [`oracle`] runs each program on the functional emulator and a matrix
//!    of simulator configurations — baseline, reuse at several IQ sizes,
//!    checkpoint-resume at several skip fractions — and checks
//!    architectural equality plus structural trace/power invariants;
//! 3. [`shrink`] minimizes any failing program by greedy tree surgery;
//! 4. [`corpus`] writes the minimized repro (`.s` + `.json`) to disk.
//!
//! Every generated program is additionally run through the riq-analyze
//! linter; a lint *error* (undecodable word, control flow or store
//! escaping its segment) fails the iteration like an oracle violation.
//! The generator only emits well-formed programs, so any lint error is a
//! bug in either the generator or the linter — both worth knowing about.
//!
//! The CLI entry point is `riq-repro fuzz --seed S --iters N`; the same
//! driver is exposed here as [`run_fuzz`] for tests.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use gen::{generate, TestProgram, FAMILIES};
pub use oracle::{check_program, check_source, default_matrix, CheckReport, Failure, MatrixPoint};
pub use shrink::{shrink, ShrinkOutcome};

use std::path::PathBuf;

/// Options for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed; per-iteration seeds are derived from it.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub iters: u64,
    /// Minimize failing programs before reporting/writing them.
    pub minimize: bool,
    /// When set, write failing cases (minimized if requested) here.
    pub corpus_dir: Option<PathBuf>,
}

/// Aggregate result of a fuzzing run. [`FuzzSummary::line`] is the stable
/// one-line summary printed by the CLI — byte-identical for identical
/// options, which CI relies on.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// Programs generated and checked.
    pub programs: u64,
    /// Simulator legs executed across all programs.
    pub configs_checked: u64,
    /// Programs with at least one oracle violation.
    pub failures: u64,
    /// Accepted shrink reductions across all failing programs.
    pub shrink_steps: u64,
    /// Oracle evaluations the shrinker spent (accepted or not).
    pub shrink_evals: u64,
    /// Cycles simulated across every leg of every program, including the
    /// shrinker's candidate evaluations. Simulation-domain: identical for
    /// identical options. Excluded from [`FuzzSummary::line`], which CI
    /// pins — speed accounting goes to stderr instead.
    pub sim_cycles: u64,
    /// Instructions committed across every leg of every program.
    pub sim_insts: u64,
    /// Per-failure description lines (seed + first violation).
    pub failure_notes: Vec<String>,
    /// Repro files written to the corpus directory.
    pub repro_paths: Vec<PathBuf>,
}

impl FuzzSummary {
    /// The deterministic one-line summary.
    #[must_use]
    pub fn line(&self) -> String {
        format!(
            "riq-fuzz: programs={} configs_checked={} failures={} shrink_steps={}",
            self.programs, self.configs_checked, self.failures, self.shrink_steps
        )
    }
}

/// Lint-checks one program source with riq-analyze, returning the lint
/// *error* messages (warnings are expected on random programs and pass).
/// An unassemblable source returns no errors — that is the oracle's
/// failure to report.
#[must_use]
pub fn lint_errors(source: &str) -> Vec<String> {
    match riq_asm::assemble(source) {
        Ok(program) => riq_analyze::analyze(&program)
            .lint
            .errors()
            .map(|d| match d.pc {
                Some(pc) => format!("{} at {pc:#x}: {}", d.code, d.message),
                None => format!("{}: {}", d.code, d.message),
            })
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Runs the full fuzz loop: generate → lint → check → (shrink) →
/// (persist).
///
/// Every failure is recorded and the loop continues — one bad seed must
/// not mask others. Progress callbacks receive `(iteration, seed,
/// failed)` after each program.
pub fn run_fuzz_with<F: FnMut(u64, u64, bool)>(opts: &FuzzOptions, mut progress: F) -> FuzzSummary {
    let matrix = oracle::default_matrix();
    let mut seeds = rng::Rng::new(opts.seed);
    let mut summary = FuzzSummary::default();
    for i in 0..opts.iters {
        let seed = seeds.next_u64();
        let program = gen::generate(seed);
        let source = program.render();
        let lint = lint_errors(&source);
        for e in &lint {
            summary.failure_notes.push(format!("seed {seed:#x}: lint: {e}"));
        }
        let report = oracle::check_source(&source, &matrix);
        summary.programs += 1;
        summary.configs_checked += report.configs_checked;
        summary.sim_cycles += report.sim_cycles;
        summary.sim_insts += report.sim_insts;
        let failed = !report.passed() || !lint.is_empty();
        if failed {
            summary.failures += 1;
            let (final_program, final_report) = if opts.minimize {
                let mut cand_cycles = 0u64;
                let mut cand_insts = 0u64;
                let outcome = shrink::shrink(&program, |candidate| {
                    let src = candidate.render();
                    let r = oracle::check_source(&src, &matrix);
                    cand_cycles += r.sim_cycles;
                    cand_insts += r.sim_insts;
                    !r.passed() || !lint_errors(&src).is_empty()
                });
                summary.shrink_steps += outcome.steps;
                summary.shrink_evals += outcome.evals;
                summary.sim_cycles += cand_cycles;
                summary.sim_insts += cand_insts;
                let r = oracle::check_source(&outcome.program.render(), &matrix);
                summary.sim_cycles += r.sim_cycles;
                summary.sim_insts += r.sim_insts;
                (outcome.program, r)
            } else {
                (program, report)
            };
            let first = final_report
                .failures
                .first()
                .map_or_else(|| "(no detail)".to_string(), ToString::to_string);
            summary.failure_notes.push(format!("seed {seed:#x}: {first}"));
            if let Some(dir) = &opts.corpus_dir {
                match corpus::write_repro(
                    dir,
                    seed,
                    &final_program.render(),
                    &final_report.failures,
                    &matrix,
                ) {
                    Ok((s, j)) => {
                        summary.repro_paths.push(s);
                        summary.repro_paths.push(j);
                    }
                    Err(e) => {
                        summary
                            .failure_notes
                            .push(format!("seed {seed:#x}: corpus write failed: {e}"));
                    }
                }
            }
        }
        progress(i, seed, failed);
    }
    summary
}

/// [`run_fuzz_with`] without a progress callback.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzSummary {
    run_fuzz_with(opts, |_, _, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_shape_is_stable() {
        let s = FuzzSummary {
            programs: 3,
            configs_checked: 27,
            failures: 0,
            shrink_steps: 0,
            ..FuzzSummary::default()
        };
        assert_eq!(s.line(), "riq-fuzz: programs=3 configs_checked=27 failures=0 shrink_steps=0");
    }

    #[test]
    fn small_fuzz_run_is_clean_and_deterministic() {
        let opts = FuzzOptions { seed: 4, iters: 3, minimize: false, corpus_dir: None };
        let a = run_fuzz(&opts);
        let b = run_fuzz(&opts);
        assert_eq!(a.failures, 0, "notes: {:?}", a.failure_notes);
        assert_eq!(a.line(), b.line(), "same options ⇒ identical summary");
        assert_eq!(a.programs, 3);
        assert!(a.configs_checked >= 3 * 6);
        assert!(a.sim_cycles > 0 && a.sim_insts > 0, "legs really simulated");
        assert_eq!(
            (a.sim_cycles, a.sim_insts, a.shrink_evals),
            (b.sim_cycles, b.sim_insts, b.shrink_evals),
            "sim-domain totals are a pure function of the options"
        );
    }
}
