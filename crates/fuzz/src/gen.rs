//! Seeded structured program generation.
//!
//! Programs are represented as a tree of [`Stmt`] nodes and rendered to
//! assembly *source text* — the source string is the canonical artifact, so
//! a failing case can be written to disk as a standalone `.s` repro, and
//! "same seed ⇒ byte-identical program stream" holds by construction.
//!
//! The generator deliberately aims at the control-flow shapes where
//! trace-reuse schemes break (see ISSUE 4 and the loop-structure taxonomy
//! of the trace-reuse literature):
//!
//! * nested counted loops with trip counts biased toward the interesting
//!   small values and bodies sized to straddle IQ capacities (16/32/64);
//! * backward branches with **data-dependent** exits (an xorshift32 value
//!   decides when to leave, a hard counter bounds the worst case);
//! * forward skip branches inside loop bodies whose direction flips
//!   between iterations — the pattern that invalidates buffered traces;
//! * strided and **aliasing** load/store windows over one buffer;
//! * FP arithmetic over a table of edge values (NaN, ±inf, denormal, −0.0,
//!   huge, tiny) so value-dependent FP paths are exercised;
//! * bounded recursion through `jal`/`jr` with stack traffic.
//!
//! # Register convention of generated code
//!
//! | regs        | role                                             |
//! |-------------|--------------------------------------------------|
//! | `$r2`       | recursion argument                               |
//! | `$r3..$r9`  | working temps (seeded in the prologue)           |
//! | `$r10..$r13`| loop counters, one per nesting depth             |
//! | `$r14`      | buffer base A                                    |
//! | `$r15`      | buffer base B = A + 16 (aliasing window)         |
//! | `$r16`      | accumulator (also seeded)                        |
//! | `$r17/$r18` | data-dependent-exit state / scratch              |
//! | `$r19`      | FP edge-value table base                         |
//! | `$r20`      | word table base                                  |
//! | `$f0..$f7`  | FP working set                                   |
//!
//! `$r1` (`$at`) is never used: the assembler's compare-branch pseudos
//! clobber it.

use crate::rng::Rng;

/// One node of a generated program.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A single rendered instruction using the working registers.
    Line(String),
    /// A backward-branch loop over `body`, at most `trips` iterations.
    Loop {
        /// Maximum iteration count (the counter bound).
        trips: i64,
        /// When set, an xorshift32 stream provides an early data-dependent
        /// exit; `trips` still bounds the worst case.
        data_dep: Option<DataDep>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A forward branch over `body` whose direction depends on live state.
    Skip {
        /// Test the innermost loop counter instead of the accumulator.
        on_counter: bool,
        /// Bit mask applied to the tested register.
        mask: u32,
        /// Conditionally executed block.
        body: Vec<Stmt>,
    },
    /// `jal` to the shared leaf function.
    Call,
    /// Bounded recursion: seeds `$r2` and `jal`s the recursive function.
    Recurse {
        /// Recursion depth (decremented to zero).
        depth: i64,
    },
}

/// Parameters of a data-dependent loop exit.
#[derive(Debug, Clone, Copy)]
pub struct DataDep {
    /// Non-zero xorshift32 seed.
    pub seed: u32,
    /// Exit when `state & mask == 0` after the update.
    pub mask: u32,
}

/// A generated program: the statement tree plus the seed it came from.
#[derive(Debug, Clone)]
pub struct TestProgram {
    /// Generator seed (recorded in the rendered header comment).
    pub seed: u64,
    /// Top-level statements, executed in order before `halt`.
    pub stmts: Vec<Stmt>,
    /// Permutation of the `.data` blocks (mixed layouts).
    pub data_order: [u8; 3],
    /// Extra `.space` padding (multiple of 8) between data blocks.
    pub data_pad: u32,
}

/// Hard ceiling on the *estimated* retired-instruction count of one
/// generated program, so every oracle/simulator leg stays fast.
pub const DYN_BUDGET_MAX: i64 = 50_000;

/// Step limit handed to the functional oracle — far above [`DYN_BUDGET_MAX`]
/// so hitting it means the generator's termination reasoning is wrong.
pub const EMU_STEP_LIMIT: u64 = 2_000_000;

const DST: [&str; 8] = ["$r3", "$r4", "$r5", "$r6", "$r7", "$r8", "$r9", "$r16"];
const SRC: [&str; 11] =
    ["$r0", "$r2", "$r3", "$r4", "$r5", "$r6", "$r7", "$r8", "$r9", "$r16", "$r17"];
const FP: [&str; 8] = ["$f0", "$f1", "$f2", "$f3", "$f4", "$f5", "$f6", "$f7"];

/// Raw bit patterns of the FP edge-value table (`fpt` in `.data`).
pub const FP_EDGE_BITS: [u64; 8] = [
    0x7ff8_0000_0000_0000, // quiet NaN
    0x7ff0_0000_0000_0000, // +inf
    0xfff0_0000_0000_0000, // -inf
    0x0000_0000_0000_0001, // smallest denormal
    0x8000_0000_0000_0000, // -0.0
    0x3ff8_0000_0000_0000, // 1.5
    0x7e37_e43c_8800_759c, // ~1e300
    0x01a5_6e1f_c2f8_f359, // ~1e-300
];

fn gen_line(rng: &mut Rng) -> String {
    let roll = rng.below(100);
    if roll < 28 {
        let op = *rng.pick(&[
            "add", "sub", "mul", "and", "or", "xor", "nor", "slt", "sltu", "div", "rem", "sllv",
            "srlv", "srav",
        ]);
        format!("{op} {}, {}, {}", rng.pick(&DST), rng.pick(&SRC), rng.pick(&SRC))
    } else if roll < 43 {
        let op = *rng.pick(&["addi", "andi", "ori", "xori", "slti", "sltiu"]);
        let imm = match op {
            "addi" | "slti" | "sltiu" => rng.range(-2048, 2047),
            _ => rng.range(0, 0x7fff),
        };
        format!("{op} {}, {}, {imm}", rng.pick(&DST), rng.pick(&SRC))
    } else if roll < 48 {
        let op = *rng.pick(&["sll", "srl", "sra"]);
        format!("{op} {}, {}, {}", rng.pick(&DST), rng.pick(&SRC), rng.range(0, 31))
    } else if roll < 60 {
        // Integer memory: strided/aliasing windows over `buf` plus the
        // word table. Bases A and B overlap, so a store through one is
        // visible to loads through the other.
        let (base, off) = match rng.below(3) {
            0 => ("$r14", 4 * rng.range(0, 56)),
            1 => ("$r15", 4 * rng.range(0, 56)),
            _ => ("$r20", 4 * rng.range(0, 15)),
        };
        if rng.chance(1, 2) && base != "$r20" {
            format!("sw {}, {off}({base})", rng.pick(&SRC))
        } else {
            format!("lw {}, {off}({base})", rng.pick(&DST))
        }
    } else if roll < 70 {
        // FP memory. `$r15` = `$r14 + 16` keeps doubles 8-aligned.
        match rng.below(3) {
            0 => format!("l.d {}, {}($r19)", rng.pick(&FP), 8 * rng.range(0, 7)),
            1 => format!(
                "l.d {}, {}({})",
                rng.pick(&FP),
                8 * rng.range(0, 24),
                rng.pick(&["$r14", "$r15"])
            ),
            _ => format!(
                "s.d {}, {}({})",
                rng.pick(&FP),
                8 * rng.range(0, 24),
                rng.pick(&["$r14", "$r15"])
            ),
        }
    } else if roll < 80 {
        let op = *rng.pick(&["add.d", "sub.d", "mul.d", "div.d"]);
        format!("{op} {}, {}, {}", rng.pick(&FP), rng.pick(&FP), rng.pick(&FP))
    } else if roll < 86 {
        let op = *rng.pick(&["mov.d", "neg.d", "sqrt.d", "cvt.d.w", "cvt.w.d"]);
        format!("{op} {}, {}", rng.pick(&FP), rng.pick(&FP))
    } else if roll < 91 {
        let op = *rng.pick(&["c.eq.d", "c.lt.d", "c.le.d"]);
        format!("{op} {}, {}, {}", rng.pick(&DST), rng.pick(&FP), rng.pick(&FP))
    } else if roll < 94 {
        if rng.chance(1, 2) {
            format!("mtc1 {}, {}", rng.pick(&SRC), rng.pick(&FP))
        } else {
            format!("mfc1 {}, {}", rng.pick(&DST), rng.pick(&FP))
        }
    } else if roll < 97 {
        format!("lui {}, {:#x}", rng.pick(&DST), rng.below(0x10000))
    } else if rng.chance(1, 2) {
        format!("move {}, {}", rng.pick(&DST), rng.pick(&SRC))
    } else {
        format!("neg {}, {}", rng.pick(&DST), rng.pick(&SRC))
    }
}

/// Estimated dynamic cost (retired instructions) of a block, used both to
/// bound generation and to pick feasible trip counts.
pub fn block_cost(stmts: &[Stmt]) -> i64 {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Line(_) => 1,
            Stmt::Loop { trips, data_dep, body } => {
                let per_iter = block_cost(body) + if data_dep.is_some() { 10 } else { 3 };
                3 + trips * per_iter
            }
            Stmt::Skip { body, .. } => 2 + block_cost(body),
            Stmt::Call => 5,
            Stmt::Recurse { depth } => 3 + depth * 11,
        })
        .sum()
}

fn gen_block(rng: &mut Rng, loop_depth: u8, budget: &mut i64) -> Vec<Stmt> {
    // Target block length biased to straddle the IQ capacities the reuse
    // detector cares about (a 16-entry queue cannot buffer a 17-inst body).
    let sizes: [i64; 14] = [3, 5, 8, 12, 14, 15, 16, 17, 24, 30, 33, 48, 63, 66];
    let target = *rng.pick(&sizes);
    let mut out = Vec::new();
    let mut emitted: i64 = 0;
    while emitted < target && *budget > 8 && out.len() < 96 {
        let roll = rng.below(100);
        if roll < 60 || loop_depth >= 4 {
            out.push(Stmt::Line(gen_line(rng)));
            *budget -= 1;
            emitted += 1;
        } else if roll < 80 {
            let body = gen_block(rng, loop_depth + 1, budget);
            if body.is_empty() {
                continue;
            }
            let data_dep = rng.chance(1, 4).then(|| DataDep {
                seed: (rng.next_u64() as u32) | 1,
                mask: (1 << rng.range(1, 4)) - 1,
            });
            let per_iter = block_cost(&body) + if data_dep.is_some() { 10 } else { 3 };
            let max_trips = (*budget / per_iter.max(1)).clamp(1, 64);
            let wish = *rng.pick(&[1i64, 2, 3, 4, 5, 6, 8, 10, 13, 16, 21, 32, 48]);
            let trips = wish.min(max_trips);
            *budget -= 3 + trips * per_iter;
            emitted += 4;
            out.push(Stmt::Loop { trips, data_dep, body });
        } else if roll < 90 {
            let body = gen_block(rng, loop_depth + 1, budget);
            if body.is_empty() {
                continue;
            }
            *budget -= 2 + block_cost(&body);
            emitted += 2;
            out.push(Stmt::Skip {
                on_counter: loop_depth > 0 && rng.chance(1, 2),
                mask: 1 << rng.below(3),
                body,
            });
        } else if roll < 96 {
            out.push(Stmt::Call);
            *budget -= 5;
            emitted += 1;
        } else {
            let depth = rng.range(1, 12);
            out.push(Stmt::Recurse { depth });
            *budget -= 3 + depth * 11;
            emitted += 2;
        }
    }
    out
}

/// Generates the program for `seed`. Pure: the same seed always yields a
/// structurally identical tree and hence byte-identical rendered source.
#[must_use]
pub fn generate(seed: u64) -> TestProgram {
    let mut rng = Rng::new(seed);
    let mut stmts = Vec::new();
    // Seed every working register with a derived constant. These are
    // ordinary shrinkable statements; the checkpoint-divergence oracle
    // relies on registers carrying live values across the skip point.
    for r in [3u8, 4, 5, 6, 7, 8, 9, 16] {
        stmts.push(Stmt::Line(format!("li $r{r}, {:#x}", rng.next_u64() as u32)));
    }
    let mut budget: i64 = DYN_BUDGET_MAX - rng.below(30_000) as i64;
    let blocks = rng.range(2, 5);
    for _ in 0..blocks {
        if budget < 16 {
            break;
        }
        let mut b = gen_block(&mut rng, 0, &mut budget);
        stmts.append(&mut b);
    }
    let data_order = match rng.below(6) {
        0 => [0u8, 1, 2],
        1 => [0, 2, 1],
        2 => [1, 0, 2],
        3 => [1, 2, 0],
        4 => [2, 0, 1],
        _ => [2, 1, 0],
    };
    TestProgram { seed, stmts, data_order, data_pad: 8 * rng.below(4) as u32 }
}

struct Render {
    out: String,
    next_label: u32,
}

impl Render {
    fn fresh(&mut self) -> u32 {
        self.next_label += 1;
        self.next_label
    }

    fn line(&mut self, s: &str) {
        self.out.push_str("    ");
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn label(&mut self, l: &str) {
        self.out.push_str(l);
        self.out.push_str(":\n");
    }

    fn block(&mut self, stmts: &[Stmt], loop_depth: u8) {
        for s in stmts {
            self.stmt(s, loop_depth);
        }
    }

    fn stmt(&mut self, s: &Stmt, loop_depth: u8) {
        match s {
            Stmt::Line(l) => self.line(l),
            Stmt::Loop { trips, data_dep, body } => {
                let n = self.fresh();
                let counter = format!("$r{}", 10 + loop_depth.min(3));
                if let Some(dd) = data_dep {
                    self.line(&format!("li $r17, {:#x}", dd.seed));
                }
                self.line(&format!("li {counter}, {trips}"));
                self.label(&format!("L{n}"));
                self.block(body, loop_depth + 1);
                if let Some(dd) = data_dep {
                    // xorshift32 step, then a data-dependent exit: the loop
                    // leaves early when the masked state hits zero.
                    self.line("sll $r18, $r17, 13");
                    self.line("xor $r17, $r17, $r18");
                    self.line("srl $r18, $r17, 17");
                    self.line("xor $r17, $r17, $r18");
                    self.line("sll $r18, $r17, 5");
                    self.line("xor $r17, $r17, $r18");
                    self.line(&format!("andi $r18, $r17, {}", dd.mask));
                    self.line(&format!("beq $r18, $r0, E{n}"));
                }
                self.line(&format!("addi {counter}, {counter}, -1"));
                self.line(&format!("bgtz {counter}, L{n}"));
                if data_dep.is_some() {
                    self.label(&format!("E{n}"));
                }
            }
            Stmt::Skip { on_counter, mask, body } => {
                let n = self.fresh();
                let src = if *on_counter && loop_depth > 0 {
                    format!("$r{}", 10 + (loop_depth - 1).min(3))
                } else {
                    "$r16".to_string()
                };
                self.line(&format!("andi $r18, {src}, {mask}"));
                self.line(&format!("beq $r18, $r0, S{n}"));
                self.block(body, loop_depth);
                self.label(&format!("S{n}"));
            }
            Stmt::Call => self.line("jal leaf"),
            Stmt::Recurse { depth } => {
                self.line(&format!("li $r2, {depth}"));
                self.line("jal rec");
            }
        }
    }
}

fn tree_uses(stmts: &[Stmt], call: &mut bool, rec: &mut bool) {
    for s in stmts {
        match s {
            Stmt::Call => *call = true,
            Stmt::Recurse { .. } => *rec = true,
            Stmt::Loop { body, .. } | Stmt::Skip { body, .. } => tree_uses(body, call, rec),
            Stmt::Line(_) => {}
        }
    }
}

/// Stable family labels, in classification priority order (the first
/// feature a program exhibits wins). [`TestProgram::family`] returns one
/// of these; corpus reports aggregate by them.
pub const FAMILIES: [&str; 6] =
    ["recursion", "nested_loop", "call_in_loop", "data_dep_loop", "flat_loop", "straight_line"];

impl TestProgram {
    /// Structural family of the program, for corpus bucketing: the most
    /// reuse-hostile feature present wins — recursion (unpaired returns)
    /// over nested loops (inner-loop revokes) over calls inside loops
    /// over data-dependent exits over plain counted loops over loop-free
    /// code.
    #[must_use]
    pub fn family(&self) -> &'static str {
        #[derive(Default)]
        struct Feat {
            rec: bool,
            nested: bool,
            call_in_loop: bool,
            data_dep: bool,
            flat_loop: bool,
        }
        fn scan(stmts: &[Stmt], depth: u8, f: &mut Feat) {
            for s in stmts {
                match s {
                    Stmt::Loop { data_dep, body, .. } => {
                        f.flat_loop = true;
                        if depth > 0 {
                            f.nested = true;
                        }
                        if data_dep.is_some() {
                            f.data_dep = true;
                        }
                        scan(body, depth + 1, f);
                    }
                    Stmt::Skip { body, .. } => scan(body, depth, f),
                    Stmt::Call => {
                        if depth > 0 {
                            f.call_in_loop = true;
                        }
                    }
                    Stmt::Recurse { .. } => f.rec = true,
                    Stmt::Line(_) => {}
                }
            }
        }
        let mut f = Feat::default();
        scan(&self.stmts, 0, &mut f);
        if f.rec {
            FAMILIES[0]
        } else if f.nested {
            FAMILIES[1]
        } else if f.call_in_loop {
            FAMILIES[2]
        } else if f.data_dep {
            FAMILIES[3]
        } else if f.flat_loop {
            FAMILIES[4]
        } else {
            FAMILIES[5]
        }
    }

    /// Renders the tree to standalone assembly source. The output contains
    /// everything needed to replay the case: data tables, prologue, the
    /// generated statements, `halt`, and any helper functions referenced.
    #[must_use]
    pub fn render(&self) -> String {
        let mut r = Render { out: String::new(), next_label: 0 };
        r.out.push_str(&format!("# riq-fuzz generated program, seed={:#x}\n", self.seed));
        r.out.push_str(".data\n");
        for (i, block) in self.data_order.iter().enumerate() {
            if i == 1 && self.data_pad > 0 {
                r.out.push_str(&format!("    .space {}\n", self.data_pad));
            }
            match block {
                0 => r.out.push_str("buf:\n    .space 256\n"),
                1 => {
                    r.out.push_str("fpt:\n");
                    for bits in FP_EDGE_BITS {
                        // Raw little-endian word pairs: the assembler's
                        // `.double` cannot spell NaN or infinities.
                        r.out.push_str(&format!(
                            "    .word {:#x}, {:#x}\n",
                            bits & 0xffff_ffff,
                            bits >> 32
                        ));
                    }
                }
                _ => {
                    r.out.push_str("vals:\n");
                    let mut vrng = Rng::new(self.seed ^ 0xda7a);
                    for _ in 0..4 {
                        r.out.push_str(&format!(
                            "    .word {:#x}, {:#x}, {:#x}, {:#x}\n",
                            vrng.next_u64() as u32,
                            vrng.next_u64() as u32,
                            vrng.next_u64() as u32,
                            vrng.next_u64() as u32
                        ));
                    }
                }
            }
        }
        r.out.push_str(".text\n");
        // Fixed base-pointer prologue (not part of the shrinkable tree:
        // rendered lines may reference these labels at any time).
        r.line("la $r14, buf");
        r.line("la $r15, buf");
        r.line("addi $r15, $r15, 16");
        r.line("la $r19, fpt");
        r.line("la $r20, vals");
        r.block(&self.stmts, 0);
        r.line("halt");
        let (mut call, mut rec) = (false, false);
        tree_uses(&self.stmts, &mut call, &mut rec);
        if call {
            r.label("leaf");
            r.line("xor $r5, $r5, $r7");
            r.line("addi $r16, $r16, 3");
            r.line("sw $r16, 96($r14)");
            r.line("jr $ra");
        }
        if rec {
            r.label("rec");
            r.line("addi $sp, $sp, -8");
            r.line("sw $ra, 0($sp)");
            r.line("sw $r2, 4($sp)");
            r.line("addi $r2, $r2, -1");
            r.line("blez $r2, Rdone");
            r.line("jal rec");
            r.label("Rdone");
            r.line("lw $r2, 4($sp)");
            r.line("lw $ra, 0($sp)");
            r.line("add $r16, $r16, $r2");
            r.line("addi $sp, $sp, 8");
            r.line("jr $ra");
        }
        r.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_assembles() {
        for seed in 0..24u64 {
            let a = generate(seed).render();
            let b = generate(seed).render();
            assert_eq!(a, b, "seed {seed}: byte-identical source");
            riq_asm::assemble(&a)
                .unwrap_or_else(|e| panic!("seed {seed}: generated source rejected: {e}\n{a}"));
        }
    }

    #[test]
    fn generated_programs_halt_within_budget() {
        for seed in 0..24u64 {
            let prog = generate(seed);
            let image = riq_asm::assemble(&prog.render()).unwrap();
            let mut m = riq_emu::Machine::new(&image);
            m.run(EMU_STEP_LIMIT).unwrap_or_else(|e| panic!("seed {seed}: oracle error {e}"));
            assert!(m.is_halted(), "seed {seed}: program must halt");
            assert!(m.retired() > 8, "seed {seed}: program does real work");
        }
    }

    #[test]
    fn family_priority_and_coverage() {
        // Hand-built trees exercise the priority order deterministically.
        let base = generate(0);
        let mk = |stmts: Vec<Stmt>| TestProgram { stmts, ..base.clone() };
        let flat = Stmt::Loop { trips: 4, data_dep: None, body: vec![Stmt::Call] };
        assert_eq!(mk(vec![]).family(), "straight_line");
        assert_eq!(mk(vec![Stmt::Call]).family(), "straight_line");
        assert_eq!(
            mk(vec![Stmt::Loop { trips: 4, data_dep: None, body: vec![] }]).family(),
            "flat_loop"
        );
        assert_eq!(
            mk(vec![Stmt::Loop {
                trips: 4,
                data_dep: Some(DataDep { seed: 1, mask: 3 }),
                body: vec![]
            }])
            .family(),
            "data_dep_loop"
        );
        assert_eq!(mk(vec![flat.clone()]).family(), "call_in_loop");
        assert_eq!(
            mk(vec![Stmt::Loop { trips: 4, data_dep: None, body: vec![flat] }]).family(),
            "nested_loop"
        );
        assert_eq!(mk(vec![Stmt::Recurse { depth: 2 }]).family(), "recursion");
        // Generated corpus hits several distinct families.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            let fam = generate(seed).family();
            assert!(FAMILIES.contains(&fam));
            seen.insert(fam);
        }
        // Full-size generated programs are rich, so only the high-priority
        // families show up; the hand-built trees above cover the rest.
        assert!(seen.len() >= 2, "families across 200 seeds: {seen:?}");
    }

    #[test]
    fn structural_families_all_appear_across_seeds() {
        #[derive(Default)]
        struct Counts {
            loops: u32,
            nested: u32,
            datadep: u32,
            skips: u32,
            calls: u32,
            recs: u32,
        }
        fn scan(stmts: &[Stmt], depth: u8, c: &mut Counts) {
            for s in stmts {
                match s {
                    Stmt::Loop { data_dep, body, .. } => {
                        c.loops += 1;
                        if depth > 0 {
                            c.nested += 1;
                        }
                        if data_dep.is_some() {
                            c.datadep += 1;
                        }
                        scan(body, depth + 1, c);
                    }
                    Stmt::Skip { body, .. } => {
                        c.skips += 1;
                        scan(body, depth, c);
                    }
                    Stmt::Call => c.calls += 1,
                    Stmt::Recurse { .. } => c.recs += 1,
                    Stmt::Line(_) => {}
                }
            }
        }
        let mut c = Counts::default();
        for seed in 0..200u64 {
            let p = generate(seed);
            scan(&p.stmts, 0, &mut c);
        }
        assert!(c.loops > 50, "counted loops generated ({})", c.loops);
        assert!(c.nested > 10, "nested loops generated ({})", c.nested);
        assert!(c.datadep > 5, "data-dependent exits generated ({})", c.datadep);
        assert!(c.skips > 10, "flip branches generated ({})", c.skips);
        assert!(c.calls > 5, "calls generated ({})", c.calls);
        assert!(c.recs > 5, "recursion generated ({})", c.recs);
    }
}
