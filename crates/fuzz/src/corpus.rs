//! Corpus persistence: standalone repros for failing cases.
//!
//! A failure is written as a pair of files in the corpus directory:
//!
//! * `fuzz-<seed>.s` — the (minimized) program as standalone assembly,
//!   replayable by `riq-repro run` or the corpus-replay test;
//! * `fuzz-<seed>.json` — machine-readable context: the generator seed,
//!   every failing matrix point with its `SimConfig`-relevant knobs, and
//!   the failure details.
//!
//! The JSON is produced with [`riq_trace::JsonValue`] (the repo is
//! offline: no serde), so it round-trips through the same parser used by
//! the trace tooling.

use crate::oracle::{Failure, MatrixPoint};
use riq_trace::JsonValue;
use std::io;
use std::path::{Path, PathBuf};

/// Writes `source` and its failure report into `dir`.
///
/// Returns the paths of the `.s` and `.json` files.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation included).
pub fn write_repro(
    dir: &Path,
    seed: u64,
    source: &str,
    failures: &[Failure],
    matrix: &[MatrixPoint],
) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("fuzz-{seed:#x}");
    let asm_path = dir.join(format!("{stem}.s"));
    let json_path = dir.join(format!("{stem}.json"));
    std::fs::write(&asm_path, source)?;
    std::fs::write(&json_path, report_json(seed, failures, matrix).to_pretty())?;
    Ok((asm_path, json_path))
}

fn point_json(p: &MatrixPoint) -> JsonValue {
    let mut pairs = vec![
        ("name", JsonValue::Str(p.name.clone())),
        ("iq_entries", JsonValue::UInt(u64::from(p.iq))),
        ("reuse", JsonValue::Bool(p.reuse)),
        ("policy", JsonValue::Str(p.policy.as_str().to_string())),
        ("warmup", JsonValue::UInt(p.warmup)),
    ];
    if let Some(permille) = p.skip_permille {
        pairs.push(("skip_permille", JsonValue::UInt(u64::from(permille))));
    }
    JsonValue::obj(pairs)
}

/// The failure report as a JSON value (exposed for tests).
#[must_use]
pub fn report_json(seed: u64, failures: &[Failure], matrix: &[MatrixPoint]) -> JsonValue {
    let failing_points: Vec<&str> = failures.iter().map(|f| f.point.as_str()).collect();
    let configs: Vec<JsonValue> = matrix
        .iter()
        .filter(|p| failing_points.contains(&p.name.as_str()))
        .map(point_json)
        .collect();
    JsonValue::obj([
        ("tool", JsonValue::Str("riq-fuzz".to_string())),
        ("seed", JsonValue::UInt(seed)),
        (
            "failures",
            JsonValue::Arr(
                failures
                    .iter()
                    .map(|f| {
                        JsonValue::obj([
                            ("point", JsonValue::Str(f.point.clone())),
                            ("detail", JsonValue::Str(f.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("failing_configs", JsonValue::Arr(configs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::default_matrix;

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let failures = vec![Failure {
            point: "reuse-iq16".to_string(),
            detail: "memory digest 0x1 != oracle 0x2".to_string(),
        }];
        let v = report_json(0x2a, &failures, &default_matrix());
        let parsed = riq_trace::json::parse(&v.to_pretty()).expect("valid JSON");
        assert_eq!(parsed.get("seed").and_then(JsonValue::as_u64), Some(0x2a));
        let cfgs = parsed.get("failing_configs").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(cfgs.len(), 1);
        assert_eq!(cfgs[0].get("iq_entries").and_then(JsonValue::as_u64), Some(16));
        assert_eq!(cfgs[0].get("reuse").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn write_repro_creates_both_files() {
        // CARGO_TARGET_TMPDIR only exists for integration tests; this is a
        // unit test, so use the system temp dir.
        let dir = std::env::temp_dir().join("riq-fuzz-corpus-unit");
        let (s, j) = write_repro(&dir, 7, "    halt\n", &[], &default_matrix()).unwrap();
        assert!(s.ends_with("fuzz-0x7.s"));
        assert_eq!(std::fs::read_to_string(&s).unwrap(), "    halt\n");
        let parsed = riq_trace::json::parse(&std::fs::read_to_string(&j).unwrap()).unwrap();
        assert_eq!(parsed.get("seed").and_then(JsonValue::as_u64), Some(7));
    }
}
