//! A tiny deterministic PRNG (SplitMix64).
//!
//! The harness promises *byte-identical* program streams for a given seed,
//! so the generator cannot depend on an external RNG crate (none is
//! available offline anyway) or on platform entropy. SplitMix64 is the
//! standard seeding primitive: one u64 of state, full-period, and good
//! enough diffusion for test-case generation.

/// Deterministic 64-bit generator. `Clone` is deliberate: the shrinker
/// forks the stream to re-derive per-program decisions.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Distinct seeds — including 0 and
    /// small integers — produce unrelated streams.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(4);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(4);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(5);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(99);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }
}
