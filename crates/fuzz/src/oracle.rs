//! The differential + metamorphic oracle.
//!
//! Each program is run once on the functional emulator (the architectural
//! ground truth) and then on a **matrix** of cycle-simulator
//! configurations: the conventional baseline, the reuse pipeline at
//! several IQ sizes, and checkpoint-resume legs that fast-forward a prefix
//! on the emulator and resume detailed simulation mid-program. Every leg
//! must land on the identical architectural state — the paper's central
//! claim is that the reuse issue queue is purely microarchitectural.
//!
//! On top of architectural equality the oracle checks structural
//! invariants reconstructed from the trace-event stream:
//!
//! * `GateOn`/`GateOff` strictly alternate and every window is closed;
//! * the sum of `GateOff` spans equals `stats.gated_cycles` (and the
//!   power model agrees);
//! * the front end fetches **nothing** while the gate is closed — reuse
//!   supply and fetch are mutually exclusive by construction;
//! * energies are finite, non-negative, and only accumulate with activity;
//! * a repeated run of the same leg is bit-identical (determinism).

use crate::gen::EMU_STEP_LIMIT;
use riq_asm::Program;
use riq_core::{IssuePolicyKind, Processor, SimConfig};
use riq_emu::Machine;
use riq_power::Component;
use riq_trace::{EventKind, VecSink};

/// One cell of the simulator config matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixPoint {
    /// Human-readable leg name (stable across runs; used in reports).
    pub name: String,
    /// Issue-queue size (ROB/LSQ scale with it).
    pub iq: u32,
    /// Whether the reuse-capable issue queue is enabled.
    pub reuse: bool,
    /// Issue-stage scheduling policy for this leg.
    pub policy: IssuePolicyKind,
    /// `Some(p)`: checkpoint-resume leg skipping `retired * p / 1000`
    /// instructions (at least 1, at most `retired - 1`) before resuming.
    /// Expressed as a fraction so the same matrix point stays meaningful
    /// while the shrinker makes the program smaller.
    pub skip_permille: Option<u32>,
    /// Warm-window length replayed into caches/predictor on resume.
    pub warmup: u64,
}

impl MatrixPoint {
    /// The simulator configuration for this leg. `retired` is the oracle's
    /// dynamic instruction count: the cycle budget is derived from it so a
    /// divergence that sends the simulator into a runaway loop (committing
    /// the wrong path forever) fails within seconds as a `CycleLimit`
    /// instead of grinding toward the 200M-cycle default. 64 cycles per
    /// retired instruction is far above any legitimate CPI of this core.
    #[must_use]
    pub fn config_for(&self, retired: u64) -> SimConfig {
        let mut cfg = SimConfig::baseline()
            .with_iq_size(self.iq)
            .with_reuse(self.reuse)
            .with_policy(self.policy);
        cfg.max_cycles = retired.saturating_mul(64) + 100_000;
        cfg
    }

    /// Concrete skip count for a program that retires `retired`
    /// instructions, clamped to a resumable range.
    #[must_use]
    pub fn skip_for(&self, retired: u64) -> Option<u64> {
        let p = self.skip_permille?;
        if retired < 2 {
            return None; // nothing left to resume into
        }
        Some((retired * u64::from(p) / 1000).clamp(1, retired - 1))
    }
}

/// The default config matrix: baseline + reuse at IQ sizes straddling the
/// generator's body-size distribution + checkpoint-resume legs at three
/// skip fractions (baseline and reuse).
#[must_use]
pub fn default_matrix() -> Vec<MatrixPoint> {
    let full = |name: &str, iq: u32, reuse: bool| MatrixPoint {
        name: name.to_string(),
        iq,
        reuse,
        policy: IssuePolicyKind::Oldest,
        skip_permille: None,
        warmup: 0,
    };
    let ckpt = |name: &str, iq: u32, reuse: bool, permille: u32| MatrixPoint {
        name: name.to_string(),
        iq,
        reuse,
        policy: IssuePolicyKind::Oldest,
        skip_permille: Some(permille),
        warmup: 64,
    };
    let load_delay = |name: &str, iq: u32, reuse: bool| MatrixPoint {
        policy: IssuePolicyKind::LoadDelay,
        ..full(name, iq, reuse)
    };
    vec![
        full("baseline", 64, false),
        full("reuse-iq16", 16, true),
        full("reuse-iq32", 32, true),
        full("reuse-iq64", 64, true),
        full("reuse-iq256", 256, true),
        load_delay("load-delay-iq64", 64, false),
        load_delay("reuse-load-delay-iq64", 64, true),
        ckpt("baseline-ckpt@500", 64, false, 500),
        ckpt("reuse-iq32-ckpt@250", 32, true, 250),
        ckpt("reuse-iq64-ckpt@750", 64, true, 750),
    ]
}

/// One oracle violation: which leg failed and how.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Matrix-point name (or a pseudo-leg like `assemble` / `oracle`).
    pub point: String,
    /// What diverged, with enough numbers to act on.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.point, self.detail)
    }
}

/// Result of checking one program against the matrix.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All violations found (empty means the program passed).
    pub failures: Vec<Failure>,
    /// Number of simulator legs actually executed.
    pub configs_checked: u64,
    /// Cycles simulated across all executed legs (sim-domain: a pure
    /// function of the program and the matrix).
    pub sim_cycles: u64,
    /// Instructions committed across all executed legs.
    pub sim_insts: u64,
}

impl CheckReport {
    /// True when no leg diverged.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

struct Expected {
    state: riq_emu::ArchState,
    digest: u64,
    retired: u64,
}

fn run_oracle(program: &Program) -> Result<Expected, Failure> {
    let mut m = Machine::new(program);
    match m.run(EMU_STEP_LIMIT) {
        Ok(_) => {}
        Err(e) => {
            return Err(Failure {
                point: "oracle".to_string(),
                detail: format!("functional emulator failed: {e}"),
            })
        }
    }
    if !m.is_halted() {
        return Err(Failure {
            point: "oracle".to_string(),
            detail: format!("program did not halt within {EMU_STEP_LIMIT} steps"),
        });
    }
    Ok(Expected {
        state: m.state().clone(),
        digest: m.memory().content_digest(),
        retired: m.retired(),
    })
}

/// Checks the trace/stat/power structural invariants of one run.
fn check_invariants(
    point: &MatrixPoint,
    r: &riq_core::RunResult,
    sink: &VecSink,
    out: &mut Vec<Failure>,
) {
    let fail = |out: &mut Vec<Failure>, detail: String| {
        out.push(Failure { point: point.name.clone(), detail });
    };

    // ---- gating windows ----
    let mut open: Option<u64> = None;
    let mut span_sum: u64 = 0;
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for ev in &sink.events {
        match ev.kind {
            EventKind::GateOn => {
                if let Some(since) = open {
                    fail(out, format!("GateOn at {} while gate open since {since}", ev.cycle));
                }
                open = Some(ev.cycle);
            }
            EventKind::GateOff { span, .. } => match open.take() {
                Some(since) => {
                    if span != ev.cycle - since {
                        fail(
                            out,
                            format!("GateOff span {span} != window [{since}, {}) length", ev.cycle),
                        );
                    }
                    span_sum += span;
                    windows.push((since, ev.cycle));
                }
                None => fail(out, format!("GateOff at {} without matching GateOn", ev.cycle)),
            },
            _ => {}
        }
    }
    if let Some(since) = open {
        fail(out, format!("gate window opened at {since} never closed"));
    }
    if span_sum != r.stats.gated_cycles {
        fail(
            out,
            format!("GateOff spans sum {span_sum} != stats.gated_cycles {}", r.stats.gated_cycles),
        );
    }
    if !point.reuse && r.stats.gated_cycles != 0 {
        fail(out, format!("reuse disabled but gated_cycles = {}", r.stats.gated_cycles));
    }

    // ---- reuse never active while the front end fetches ----
    let mut w = 0usize;
    for ev in &sink.events {
        if let EventKind::PipelineSample { fetched, .. } = ev.kind {
            while w < windows.len() && ev.cycle >= windows[w].1 {
                w += 1;
            }
            if w < windows.len() && ev.cycle >= windows[w].0 && fetched != 0 {
                fail(out, format!("fetched {fetched} inside gate window at cycle {}", ev.cycle));
                break;
            }
        }
    }

    // ---- stats / power coherence ----
    if r.stats.gated_cycles > r.stats.cycles {
        fail(out, format!("gated {} > cycles {}", r.stats.gated_cycles, r.stats.cycles));
    }
    if r.power.cycles != r.stats.cycles {
        fail(out, format!("power.cycles {} != stats.cycles {}", r.power.cycles, r.stats.cycles));
    }
    if r.power.gated_cycles != r.stats.gated_cycles {
        fail(
            out,
            format!(
                "power.gated_cycles {} != stats.gated_cycles {}",
                r.power.gated_cycles, r.stats.gated_cycles
            ),
        );
    }
    let total = r.power.total_energy();
    if !total.is_finite() || total <= 0.0 {
        fail(out, format!("total energy {total} not finite-positive"));
    }
    for c in Component::ALL {
        let e = r.power.energy(c);
        if !e.is_finite() || e < 0.0 {
            fail(out, format!("component {c:?} energy {e} not finite-non-negative"));
            break;
        }
    }
}

/// Runs every matrix leg of `program` against the emulator ground truth.
#[must_use]
pub fn check_program(program: &Program, matrix: &[MatrixPoint]) -> CheckReport {
    let mut failures = Vec::new();
    let mut configs_checked = 0u64;
    let mut sim_cycles = 0u64;
    let mut sim_insts = 0u64;
    let expected = match run_oracle(program) {
        Ok(e) => e,
        Err(f) => return CheckReport { failures: vec![f], configs_checked, sim_cycles, sim_insts },
    };

    for point in matrix {
        let proc = Processor::new(point.config_for(expected.retired));
        let mut sink = VecSink::new();
        let (run, resumed_skip) = match point.skip_for(expected.retired) {
            None if point.skip_permille.is_some() => continue, // too short to resume
            None => (proc.run_observed(program, &mut sink, None), None),
            Some(skip) => match riq_ckpt::Checkpoint::fast_forward(program, skip, point.warmup) {
                Ok(ckpt) => {
                    if ckpt.retired != skip {
                        failures.push(Failure {
                            point: point.name.clone(),
                            detail: format!(
                                "fast-forward stopped at {} instead of {skip}",
                                ckpt.retired
                            ),
                        });
                        continue;
                    }
                    (
                        proc.resume_observed(program, &ckpt, point.warmup, None, &mut sink, None),
                        Some(skip),
                    )
                }
                Err(e) => {
                    failures.push(Failure {
                        point: point.name.clone(),
                        detail: format!("fast-forward failed: {e}"),
                    });
                    continue;
                }
            },
        };
        configs_checked += 1;
        let r = match run {
            Ok(r) => {
                sim_cycles += r.stats.cycles;
                sim_insts += r.stats.committed;
                r
            }
            Err(e) => {
                failures.push(Failure {
                    point: point.name.clone(),
                    detail: format!("simulation failed: {e}"),
                });
                continue;
            }
        };
        if r.arch_state != expected.state {
            let regs: Vec<String> = (0..32)
                .filter_map(|n| {
                    let reg = riq_isa::IntReg::new(n);
                    let (a, b) = (r.arch_state.int_reg(reg), expected.state.int_reg(reg));
                    (a != b).then(|| format!("$r{n}={a:#x}!={b:#x}"))
                })
                .collect();
            failures.push(Failure {
                point: point.name.clone(),
                detail: format!("architectural state mismatch: {}", regs.join(" ")),
            });
        }
        if r.mem_digest != expected.digest {
            failures.push(Failure {
                point: point.name.clone(),
                detail: format!(
                    "memory digest {:#x} != oracle {:#x}",
                    r.mem_digest, expected.digest
                ),
            });
        }
        let want_committed = expected.retired - resumed_skip.unwrap_or(0);
        if r.stats.committed != want_committed {
            failures.push(Failure {
                point: point.name.clone(),
                detail: format!("committed {} != expected {want_committed}", r.stats.committed),
            });
        }
        check_invariants(point, &r, &sink, &mut failures);
    }

    // ---- determinism: the reuse leg re-run must be bit-identical ----
    let det = MatrixPoint {
        name: "determinism(reuse-iq64)".to_string(),
        iq: 64,
        reuse: true,
        policy: IssuePolicyKind::Oldest,
        skip_permille: None,
        warmup: 0,
    };
    let proc = Processor::new(det.config_for(expected.retired));
    let runs: Vec<_> =
        (0..2).map(|_| proc.run_observed(program, &mut riq_trace::NullSink, None)).collect();
    configs_checked += 1;
    if let [Ok(a), Ok(b)] = &runs[..] {
        sim_cycles += a.stats.cycles + b.stats.cycles;
        sim_insts += a.stats.committed + b.stats.committed;
        if (a.stats.cycles, a.stats.committed, a.stats.gated_cycles, a.mem_digest)
            != (b.stats.cycles, b.stats.committed, b.stats.gated_cycles, b.mem_digest)
            || a.arch_state != b.arch_state
        {
            failures.push(Failure {
                point: det.name,
                detail: format!(
                    "non-deterministic: cycles {}/{} committed {}/{} digest {:#x}/{:#x}",
                    a.stats.cycles,
                    b.stats.cycles,
                    a.stats.committed,
                    b.stats.committed,
                    a.mem_digest,
                    b.mem_digest
                ),
            });
        }
    }

    CheckReport { failures, configs_checked, sim_cycles, sim_insts }
}

/// Assembles `source` and checks it against `matrix`. Assembly failure is
/// reported as a failure of the pseudo-leg `assemble`.
#[must_use]
pub fn check_source(source: &str, matrix: &[MatrixPoint]) -> CheckReport {
    match riq_asm::assemble(source) {
        Ok(program) => check_program(&program, matrix),
        Err(e) => CheckReport {
            failures: vec![Failure {
                point: "assemble".to_string(),
                detail: format!("generated source rejected: {e}"),
            }],
            configs_checked: 0,
            sim_cycles: 0,
            sim_insts: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_good_kernel_passes_the_matrix() {
        let src = "
    li $r2, 300
loop:
    add $r3, $r3, $r2
    sw  $r3, 0($r14)
    addi $r2, $r2, -1
    bne $r2, $r0, loop
    halt
";
        // $r14 is zero here: address 0 is valid in the sparse memory.
        let report = check_source(src, &default_matrix());
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.configs_checked >= 8);
    }

    #[test]
    fn assembly_rejection_is_reported_not_panicked() {
        let report = check_source("bogus $r1\n", &default_matrix());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].point, "assemble");
    }

    #[test]
    fn skip_fraction_clamps_sanely() {
        let p = MatrixPoint {
            name: "x".into(),
            iq: 64,
            reuse: true,
            policy: IssuePolicyKind::Oldest,
            skip_permille: Some(500),
            warmup: 0,
        };
        assert_eq!(p.skip_for(1000), Some(500));
        assert_eq!(p.skip_for(2), Some(1));
        assert_eq!(p.skip_for(1), None);
        assert_eq!(p.skip_for(0), None);
    }
}
