//! Harness self-test: prove the differential oracle catches a real core
//! bug and that the shrinker reduces it to a small standalone repro.
//!
//! The planted bug lives in `riq_core::fault`: with the switch armed,
//! `Core::restore_from` "forgets" to restore `$r9` when installing a
//! checkpoint, so every checkpoint-resume leg of the matrix diverges from
//! the emulator oracle. The switch is process-global, which is why this
//! test has its own test binary — it must never run in the same process
//! as tests that expect a correct core.

use riq_fuzz::{run_fuzz, FuzzOptions};
use std::path::PathBuf;

/// Disarms the fault even if an assertion unwinds mid-test.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        riq_core::fault::set_skip_restore_r9(false);
    }
}

#[test]
fn oracle_catches_and_shrinks_injected_restore_bug() {
    let corpus: PathBuf = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("injected-bug-corpus");
    let _ = std::fs::remove_dir_all(&corpus);

    riq_core::fault::set_skip_restore_r9(true);
    let _disarm = Disarm;
    let opts = FuzzOptions { seed: 4, iters: 2, minimize: true, corpus_dir: Some(corpus.clone()) };
    let summary = run_fuzz(&opts);

    assert!(summary.failures >= 1, "the armed restore bug must be caught: {}", summary.line());
    assert!(
        summary.failure_notes.iter().any(|n| n.contains("ckpt")),
        "divergence must be attributed to a checkpoint-resume leg: {:?}",
        summary.failure_notes
    );

    // Every written repro must be standalone: it assembles, it is small
    // (the ISSUE bound: at most 30 instructions), and it still fails.
    let repro_sources: Vec<PathBuf> = summary
        .repro_paths
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "s"))
        .cloned()
        .collect();
    assert!(!repro_sources.is_empty(), "minimized .s repros must be written to the corpus");
    for path in &repro_sources {
        let source = std::fs::read_to_string(path).expect("repro file readable");
        let program = riq_asm::assemble(&source).expect("minimized repro assembles");
        let insts = program.text().len();
        assert!(
            insts <= 30,
            "{} has {insts} instructions; the shrinker should get under 30",
            path.display()
        );
        let report = riq_fuzz::check_source(&source, &riq_fuzz::default_matrix());
        assert!(!report.passed(), "minimized repro still fails while the bug is armed");
    }

    // Disarming the fault makes the same repros pass: the failure is the
    // planted bug, not a latent real one.
    riq_core::fault::set_skip_restore_r9(false);
    for path in &repro_sources {
        let source = std::fs::read_to_string(path).expect("repro file readable");
        let report = riq_fuzz::check_source(&source, &riq_fuzz::default_matrix());
        assert!(
            report.passed(),
            "{} should pass with the fault disarmed, got {:?}",
            path.display(),
            report.failures
        );
    }
}
