//! Static analysis over the fuzz generator's output.
//!
//! Two properties tie riq-analyze into the fuzz harness:
//!
//! 1. the linter must not false-positive on generated programs — the
//!    generator only emits well-formed code, so any lint *error* is a bug
//!    in one of the two (this mirrors the in-loop check `run_fuzz_with`
//!    performs on every iteration);
//! 2. the static eligibility verdicts must track the structural families
//!    the generator plants: a `Stmt::Loop` is found as a natural loop at
//!    its `L{n}` label, loops containing nested loops or recursion are
//!    never eligible, and data-dependent exits surface as side exits.

use riq_analyze::{analyze, Eligibility};
use riq_fuzz::gen::Stmt;
use riq_fuzz::{generate, lint_errors};

#[test]
fn generated_programs_lint_clean_over_200_seeds() {
    for seed in 0..200u64 {
        let src = generate(seed).render();
        let errs = lint_errors(&src);
        assert!(errs.is_empty(), "seed {seed}: false-positive lint errors {errs:?}\n{src}");
    }
}

/// What the statement tree promises about one rendered loop.
struct PlantedLoop {
    /// Rendered head label (`L{n}`).
    label: String,
    /// The loop carries a data-dependent early exit.
    data_dep: bool,
    /// The body contains another loop (at any depth).
    nested_loop: bool,
    /// The body contains bounded recursion (at any depth).
    recursion: bool,
}

fn has_family(stmts: &[Stmt], loops: &mut bool, recs: &mut bool) {
    for s in stmts {
        match s {
            Stmt::Loop { body, .. } => {
                *loops = true;
                has_family(body, loops, recs);
            }
            Stmt::Skip { body, .. } => has_family(body, loops, recs),
            Stmt::Recurse { .. } => *recs = true,
            Stmt::Line(_) | Stmt::Call => {}
        }
    }
}

/// Walks the tree in render order, mirroring the renderer's fresh-label
/// counter (every `Loop` and `Skip` consumes one number, pre-order).
fn collect(stmts: &[Stmt], next_label: &mut u32, out: &mut Vec<PlantedLoop>) {
    for s in stmts {
        match s {
            Stmt::Loop { data_dep, body, .. } => {
                *next_label += 1;
                let n = *next_label;
                let (mut nested_loop, mut recursion) = (false, false);
                has_family(body, &mut nested_loop, &mut recursion);
                out.push(PlantedLoop {
                    label: format!("L{n}"),
                    data_dep: data_dep.is_some(),
                    nested_loop,
                    recursion,
                });
                collect(body, next_label, out);
            }
            Stmt::Skip { body, .. } => {
                *next_label += 1;
                collect(body, next_label, out);
            }
            Stmt::Line(_) | Stmt::Call | Stmt::Recurse { .. } => {}
        }
    }
}

#[test]
fn planted_loops_match_static_eligibility_families() {
    let mut checked = 0u32;
    for seed in 0..100u64 {
        let prog = generate(seed);
        let mut planted = Vec::new();
        collect(&prog.stmts, &mut 0, &mut planted);
        if planted.is_empty() {
            continue;
        }
        let image = riq_asm::assemble(&prog.render()).unwrap();
        let analysis = analyze(&image);
        for p in &planted {
            let head = image
                .symbol(&p.label)
                .unwrap_or_else(|| panic!("seed {seed}: label {} missing", p.label));
            let found = analysis
                .loops
                .iter()
                .find(|l| l.natural.head == head)
                .unwrap_or_else(|| panic!("seed {seed}: no natural loop at {}", p.label));
            // The largest analyzed capacity: size limits out of the way,
            // only structural disqualifiers remain.
            let (_, verdict) = found.per_capacity.last().unwrap();
            checked += 1;
            if p.nested_loop || p.recursion {
                assert!(
                    matches!(
                        verdict,
                        Eligibility::InnerLoop { .. }
                            | Eligibility::Recursion { .. }
                            | Eligibility::TooLarge
                    ),
                    "seed {seed}: {} holds a nested loop or recursion but got {verdict:?}",
                    p.label
                );
            } else {
                assert!(
                    matches!(
                        verdict,
                        Eligibility::Eligible { .. }
                            | Eligibility::DoesNotFit { .. }
                            | Eligibility::TooLarge
                    ),
                    "seed {seed}: simple loop {} got {verdict:?}",
                    p.label
                );
                if let Eligibility::Eligible { side_exits, .. } = verdict {
                    if p.data_dep {
                        assert!(
                            *side_exits >= 1,
                            "seed {seed}: {} has a data-dependent exit but no side exits",
                            p.label
                        );
                    }
                }
            }
        }
    }
    assert!(checked > 100, "loops checked across seeds ({checked})");
}
