//! Binary encoding and decoding of riq instructions.
//!
//! Instructions are fixed 32-bit words laid out MIPS-style:
//!
//! ```text
//! R-type  (op 0x00): | op 6 | rs 5 | rt 5 | rd 5 | shamt 5 | funct 6 |
//! FP-type (op 0x01): | op 6 | rs 5 | ft 5 | fs 5 | fd 5    | funct 6 |
//! I-type           : | op 6 | rs 5 | rt 5 | imm 16               |
//! J-type           : | op 6 | target 26 (word address)           |
//! ```
//!
//! The all-zero word is the canonical [`Inst::Nop`].

use crate::inst::{AluImmOp, AluOp, BranchCond, FpAluOp, FpCond, FpUnaryOp, Inst, ShiftOp};
use crate::reg::{FpReg, IntReg};
use std::error::Error;
use std::fmt;

/// Opcode field values.
mod op {
    pub const RTYPE: u32 = 0x00;
    pub const FPTYPE: u32 = 0x01;
    pub const J: u32 = 0x02;
    pub const JAL: u32 = 0x03;
    pub const BEQ: u32 = 0x04;
    pub const BNE: u32 = 0x05;
    pub const BLEZ: u32 = 0x06;
    pub const BGTZ: u32 = 0x07;
    pub const BLTZ: u32 = 0x08;
    pub const BGEZ: u32 = 0x09;
    pub const ADDI: u32 = 0x0a;
    pub const SLTI: u32 = 0x0b;
    pub const SLTIU: u32 = 0x0c;
    pub const ANDI: u32 = 0x0d;
    pub const ORI: u32 = 0x0e;
    pub const XORI: u32 = 0x0f;
    pub const LUI: u32 = 0x10;
    pub const LW: u32 = 0x20;
    pub const SW: u32 = 0x28;
    pub const LD: u32 = 0x30;
    pub const SD: u32 = 0x38;
}

/// R-type function field values.
mod rfunct {
    pub const SLL: u32 = 0x00;
    pub const SRL: u32 = 0x02;
    pub const SRA: u32 = 0x03;
    pub const SLLV: u32 = 0x04;
    pub const SRLV: u32 = 0x06;
    pub const SRAV: u32 = 0x07;
    pub const JR: u32 = 0x08;
    pub const JALR: u32 = 0x09;
    pub const MUL: u32 = 0x18;
    pub const DIV: u32 = 0x1a;
    pub const REM: u32 = 0x1b;
    pub const ADD: u32 = 0x20;
    pub const SUB: u32 = 0x22;
    pub const AND: u32 = 0x24;
    pub const OR: u32 = 0x25;
    pub const XOR: u32 = 0x26;
    pub const NOR: u32 = 0x27;
    pub const SLT: u32 = 0x2a;
    pub const SLTU: u32 = 0x2b;
    pub const HALT: u32 = 0x3f;
}

/// FP-type function field values.
mod ffunct {
    pub const ADD_D: u32 = 0x00;
    pub const SUB_D: u32 = 0x01;
    pub const MUL_D: u32 = 0x02;
    pub const DIV_D: u32 = 0x03;
    pub const SQRT_D: u32 = 0x04;
    pub const MOV_D: u32 = 0x06;
    pub const NEG_D: u32 = 0x07;
    pub const CVT_D_W: u32 = 0x20;
    pub const CVT_W_D: u32 = 0x24;
    pub const C_EQ_D: u32 = 0x30;
    pub const C_LT_D: u32 = 0x31;
    pub const C_LE_D: u32 = 0x32;
    pub const MTC1: u32 = 0x38;
    pub const MFC1: u32 = 0x39;
}

/// Error produced when an instruction cannot be encoded into 32 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeInstError {
    /// A direct jump target is not 4-byte aligned.
    UnalignedJumpTarget(u32),
    /// A direct jump target does not fit in the 26-bit word-address field.
    JumpTargetOutOfRange(u32),
}

impl fmt::Display for EncodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeInstError::UnalignedJumpTarget(t) => {
                write!(f, "jump target {t:#x} is not 4-byte aligned")
            }
            EncodeInstError::JumpTargetOutOfRange(t) => {
                write!(f, "jump target {t:#x} does not fit in 26 bits of word address")
            }
        }
    }
}

impl Error for EncodeInstError {}

/// Error produced when a 32-bit word does not decode to a valid instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeInstError {
    /// The opcode field is not assigned.
    InvalidOpcode {
        /// The offending instruction word.
        word: u32,
        /// Its opcode field.
        opcode: u32,
    },
    /// The R-type or FP-type function field is not assigned.
    InvalidFunct {
        /// The offending instruction word.
        word: u32,
        /// Its function field.
        funct: u32,
    },
    /// A field the instruction ignores is non-zero (the encoding is
    /// canonical: every instruction has exactly one bit pattern).
    NonCanonical {
        /// The offending instruction word.
        word: u32,
    },
}

impl fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeInstError::InvalidOpcode { word, opcode } => {
                write!(f, "invalid opcode {opcode:#x} in word {word:#010x}")
            }
            DecodeInstError::InvalidFunct { word, funct } => {
                write!(f, "invalid function code {funct:#x} in word {word:#010x}")
            }
            DecodeInstError::NonCanonical { word } => {
                write!(f, "non-canonical encoding in word {word:#010x}")
            }
        }
    }
}

impl Error for DecodeInstError {}

fn rtype(rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    (op::RTYPE << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

fn fptype(rs: u32, ft: u32, fs: u32, fd: u32, funct: u32) -> u32 {
    (op::FPTYPE << 26) | (rs << 21) | (ft << 16) | (fs << 11) | (fd << 6) | funct
}

fn itype(opcode: u32, rs: u32, rt: u32, imm: u16) -> u32 {
    (opcode << 26) | (rs << 21) | (rt << 16) | u32::from(imm)
}

fn jtype(opcode: u32, target: u32) -> Result<u32, EncodeInstError> {
    if !target.is_multiple_of(4) {
        return Err(EncodeInstError::UnalignedJumpTarget(target));
    }
    let words = target / 4;
    if words >= (1 << 26) {
        return Err(EncodeInstError::JumpTargetOutOfRange(target));
    }
    Ok((opcode << 26) | words)
}

impl Inst {
    /// Encodes this instruction into its 32-bit binary form.
    ///
    /// # Errors
    ///
    /// Returns an error if a direct jump target is unaligned or does not fit
    /// in the 26-bit word-address field.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use riq_isa::Inst;
    /// assert_eq!(Inst::Nop.encode()?, 0);
    /// let word = Inst::J { target: 0x100 }.encode()?;
    /// assert_eq!(Inst::decode(word)?, Inst::J { target: 0x100 });
    /// # Ok(())
    /// # }
    /// ```
    pub fn encode(&self) -> Result<u32, EncodeInstError> {
        let int = |r: IntReg| u32::from(r.number());
        let fp = |r: FpReg| u32::from(r.number());
        Ok(match *self {
            Inst::Nop => 0,
            Inst::Halt => rtype(0, 0, 0, 0, rfunct::HALT),
            Inst::Alu { op, rd, rs, rt } => {
                let funct = match op {
                    AluOp::Add => rfunct::ADD,
                    AluOp::Sub => rfunct::SUB,
                    AluOp::Mul => rfunct::MUL,
                    AluOp::Div => rfunct::DIV,
                    AluOp::Rem => rfunct::REM,
                    AluOp::And => rfunct::AND,
                    AluOp::Or => rfunct::OR,
                    AluOp::Xor => rfunct::XOR,
                    AluOp::Nor => rfunct::NOR,
                    AluOp::Slt => rfunct::SLT,
                    AluOp::Sltu => rfunct::SLTU,
                    AluOp::Sllv => rfunct::SLLV,
                    AluOp::Srlv => rfunct::SRLV,
                    AluOp::Srav => rfunct::SRAV,
                };
                rtype(int(rs), int(rt), int(rd), 0, funct)
            }
            Inst::Shift { op, rd, rt, shamt } => {
                let funct = match op {
                    ShiftOp::Sll => rfunct::SLL,
                    ShiftOp::Srl => rfunct::SRL,
                    ShiftOp::Sra => rfunct::SRA,
                };
                rtype(0, int(rt), int(rd), u32::from(shamt & 31), funct)
            }
            Inst::AluImm { op, rt, rs, imm } => {
                let opcode = match op {
                    AluImmOp::Addi => op::ADDI,
                    AluImmOp::Slti => op::SLTI,
                    AluImmOp::Sltiu => op::SLTIU,
                    AluImmOp::Andi => op::ANDI,
                    AluImmOp::Ori => op::ORI,
                    AluImmOp::Xori => op::XORI,
                };
                itype(opcode, int(rs), int(rt), imm as u16)
            }
            Inst::Lui { rt, imm } => itype(op::LUI, 0, int(rt), imm),
            Inst::Lw { rt, base, off } => itype(op::LW, int(base), int(rt), off as u16),
            Inst::Sw { rt, base, off } => itype(op::SW, int(base), int(rt), off as u16),
            Inst::Ld { ft, base, off } => itype(op::LD, int(base), fp(ft), off as u16),
            Inst::Sd { ft, base, off } => itype(op::SD, int(base), fp(ft), off as u16),
            Inst::FpOp { op, fd, fs, ft } => {
                let funct = match op {
                    FpAluOp::AddD => ffunct::ADD_D,
                    FpAluOp::SubD => ffunct::SUB_D,
                    FpAluOp::MulD => ffunct::MUL_D,
                    FpAluOp::DivD => ffunct::DIV_D,
                };
                fptype(0, fp(ft), fp(fs), fp(fd), funct)
            }
            Inst::FpUnary { op, fd, fs } => {
                let funct = match op {
                    FpUnaryOp::MovD => ffunct::MOV_D,
                    FpUnaryOp::NegD => ffunct::NEG_D,
                    FpUnaryOp::SqrtD => ffunct::SQRT_D,
                    FpUnaryOp::CvtDW => ffunct::CVT_D_W,
                    FpUnaryOp::CvtWD => ffunct::CVT_W_D,
                };
                fptype(0, 0, fp(fs), fp(fd), funct)
            }
            Inst::CmpD { cond, rd, fs, ft } => {
                let funct = match cond {
                    FpCond::Eq => ffunct::C_EQ_D,
                    FpCond::Lt => ffunct::C_LT_D,
                    FpCond::Le => ffunct::C_LE_D,
                };
                fptype(0, fp(ft), fp(fs), int(rd), funct)
            }
            Inst::Mtc1 { rs, fd } => fptype(int(rs), 0, 0, fp(fd), ffunct::MTC1),
            Inst::Mfc1 { rd, fs } => fptype(0, 0, fp(fs), int(rd), ffunct::MFC1),
            Inst::Beq { rs, rt, off } => itype(op::BEQ, int(rs), int(rt), off as u16),
            Inst::Bne { rs, rt, off } => itype(op::BNE, int(rs), int(rt), off as u16),
            Inst::Bcond { cond, rs, off } => {
                let opcode = match cond {
                    BranchCond::Lez => op::BLEZ,
                    BranchCond::Gtz => op::BGTZ,
                    BranchCond::Ltz => op::BLTZ,
                    BranchCond::Gez => op::BGEZ,
                };
                itype(opcode, int(rs), 0, off as u16)
            }
            Inst::J { target } => jtype(op::J, target)?,
            Inst::Jal { target } => jtype(op::JAL, target)?,
            Inst::Jr { rs } => rtype(int(rs), 0, 0, 0, rfunct::JR),
            Inst::Jalr { rd, rs } => rtype(int(rs), 0, int(rd), 0, rfunct::JALR),
        })
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns an error for unassigned opcode or function-field values.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use riq_isa::{Inst, AluImmOp, IntReg};
    /// let inst = Inst::AluImm {
    ///     op: AluImmOp::Addi,
    ///     rt: IntReg::new(4),
    ///     rs: IntReg::new(4),
    ///     imm: -1,
    /// };
    /// assert_eq!(Inst::decode(inst.encode()?)?, inst);
    /// # Ok(())
    /// # }
    /// ```
    pub fn decode(word: u32) -> Result<Inst, DecodeInstError> {
        if word == 0 {
            return Ok(Inst::Nop);
        }
        let opcode = word >> 26;
        let rs = IntReg::new(((word >> 21) & 31) as u8);
        let rt = IntReg::new(((word >> 16) & 31) as u8);
        let rd = IntReg::new(((word >> 11) & 31) as u8);
        let shamt = ((word >> 6) & 31) as u8;
        let ftr = FpReg::new(((word >> 16) & 31) as u8);
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;
        let funct = word & 0x3f;
        // Field accessors for canonicality checks (unused fields must be 0
        // so every instruction has exactly one bit pattern).
        let rs_bits = (word >> 21) & 31;
        let rt_bits = (word >> 16) & 31;
        let rd_bits = (word >> 11) & 31;
        let shamt_bits = (word >> 6) & 31;
        let canon = |ok: bool, inst: Inst| {
            if ok {
                Ok(inst)
            } else {
                Err(DecodeInstError::NonCanonical { word })
            }
        };
        match opcode {
            op::RTYPE => {
                let alu = |aop| canon(shamt_bits == 0, Inst::Alu { op: aop, rd, rs, rt });
                match funct {
                    rfunct::SLL => {
                        canon(rs_bits == 0, Inst::Shift { op: ShiftOp::Sll, rd, rt, shamt })
                    }
                    rfunct::SRL => {
                        canon(rs_bits == 0, Inst::Shift { op: ShiftOp::Srl, rd, rt, shamt })
                    }
                    rfunct::SRA => {
                        canon(rs_bits == 0, Inst::Shift { op: ShiftOp::Sra, rd, rt, shamt })
                    }
                    rfunct::SLLV => alu(AluOp::Sllv),
                    rfunct::SRLV => alu(AluOp::Srlv),
                    rfunct::SRAV => alu(AluOp::Srav),
                    rfunct::JR => {
                        canon(rt_bits == 0 && rd_bits == 0 && shamt_bits == 0, Inst::Jr { rs })
                    }
                    rfunct::JALR => canon(rt_bits == 0 && shamt_bits == 0, Inst::Jalr { rd, rs }),
                    rfunct::MUL => alu(AluOp::Mul),
                    rfunct::DIV => alu(AluOp::Div),
                    rfunct::REM => alu(AluOp::Rem),
                    rfunct::ADD => alu(AluOp::Add),
                    rfunct::SUB => alu(AluOp::Sub),
                    rfunct::AND => alu(AluOp::And),
                    rfunct::OR => alu(AluOp::Or),
                    rfunct::XOR => alu(AluOp::Xor),
                    rfunct::NOR => alu(AluOp::Nor),
                    rfunct::SLT => alu(AluOp::Slt),
                    rfunct::SLTU => alu(AluOp::Sltu),
                    rfunct::HALT => canon(
                        rs_bits == 0 && rt_bits == 0 && rd_bits == 0 && shamt_bits == 0,
                        Inst::Halt,
                    ),
                    _ => Err(DecodeInstError::InvalidFunct { word, funct }),
                }
            }
            op::FPTYPE => {
                let ft = FpReg::new(rt_bits as u8);
                let fs = FpReg::new(rd_bits as u8);
                let fd = FpReg::new(shamt_bits as u8);
                let rd_in_fd = IntReg::new(shamt_bits as u8);
                let fpop = |fop| canon(rs_bits == 0, Inst::FpOp { op: fop, fd, fs, ft });
                let unary =
                    |uop| canon(rs_bits == 0 && rt_bits == 0, Inst::FpUnary { op: uop, fd, fs });
                let cmp = |cond| canon(rs_bits == 0, Inst::CmpD { cond, rd: rd_in_fd, fs, ft });
                match funct {
                    ffunct::ADD_D => fpop(FpAluOp::AddD),
                    ffunct::SUB_D => fpop(FpAluOp::SubD),
                    ffunct::MUL_D => fpop(FpAluOp::MulD),
                    ffunct::DIV_D => fpop(FpAluOp::DivD),
                    ffunct::SQRT_D => unary(FpUnaryOp::SqrtD),
                    ffunct::MOV_D => unary(FpUnaryOp::MovD),
                    ffunct::NEG_D => unary(FpUnaryOp::NegD),
                    ffunct::CVT_D_W => unary(FpUnaryOp::CvtDW),
                    ffunct::CVT_W_D => unary(FpUnaryOp::CvtWD),
                    ffunct::C_EQ_D => cmp(FpCond::Eq),
                    ffunct::C_LT_D => cmp(FpCond::Lt),
                    ffunct::C_LE_D => cmp(FpCond::Le),
                    ffunct::MTC1 => canon(rt_bits == 0 && rd_bits == 0, Inst::Mtc1 { rs, fd }),
                    ffunct::MFC1 => {
                        canon(rs_bits == 0 && rt_bits == 0, Inst::Mfc1 { rd: rd_in_fd, fs })
                    }
                    _ => Err(DecodeInstError::InvalidFunct { word, funct }),
                }
            }
            op::J => Ok(Inst::J { target: (word & 0x03ff_ffff) * 4 }),
            op::JAL => Ok(Inst::Jal { target: (word & 0x03ff_ffff) * 4 }),
            op::BEQ => Ok(Inst::Beq { rs, rt, off: simm }),
            op::BNE => Ok(Inst::Bne { rs, rt, off: simm }),
            op::BLEZ => canon(rt_bits == 0, Inst::Bcond { cond: BranchCond::Lez, rs, off: simm }),
            op::BGTZ => canon(rt_bits == 0, Inst::Bcond { cond: BranchCond::Gtz, rs, off: simm }),
            op::BLTZ => canon(rt_bits == 0, Inst::Bcond { cond: BranchCond::Ltz, rs, off: simm }),
            op::BGEZ => canon(rt_bits == 0, Inst::Bcond { cond: BranchCond::Gez, rs, off: simm }),
            op::ADDI => Ok(Inst::AluImm { op: AluImmOp::Addi, rt, rs, imm: simm }),
            op::SLTI => Ok(Inst::AluImm { op: AluImmOp::Slti, rt, rs, imm: simm }),
            op::SLTIU => Ok(Inst::AluImm { op: AluImmOp::Sltiu, rt, rs, imm: simm }),
            op::ANDI => Ok(Inst::AluImm { op: AluImmOp::Andi, rt, rs, imm: simm }),
            op::ORI => Ok(Inst::AluImm { op: AluImmOp::Ori, rt, rs, imm: simm }),
            op::XORI => Ok(Inst::AluImm { op: AluImmOp::Xori, rt, rs, imm: simm }),
            op::LUI => canon(rs_bits == 0, Inst::Lui { rt, imm }),
            op::LW => Ok(Inst::Lw { rt, base: rs, off: simm }),
            op::SW => Ok(Inst::Sw { rt, base: rs, off: simm }),
            op::LD => Ok(Inst::Ld { ft: ftr, base: rs, off: simm }),
            op::SD => Ok(Inst::Sd { ft: ftr, base: rs, off: simm }),
            _ => Err(DecodeInstError::InvalidOpcode { word, opcode }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::{FpReg, IntReg};

    fn roundtrip(inst: Inst) {
        let word = inst.encode().expect("encode");
        let back = Inst::decode(word).expect("decode");
        assert_eq!(back, inst, "word {word:#010x}");
    }

    #[test]
    fn nop_is_zero_word() {
        assert_eq!(Inst::Nop.encode().unwrap(), 0);
        assert_eq!(Inst::decode(0).unwrap(), Inst::Nop);
    }

    #[test]
    fn representative_roundtrips() {
        let r = IntReg::new;
        let f = FpReg::new;
        let insts = [
            Inst::Halt,
            Inst::Alu { op: AluOp::Add, rd: r(1), rs: r(2), rt: r(3) },
            Inst::Alu { op: AluOp::Sltu, rd: r(31), rs: r(30), rt: r(29) },
            Inst::Shift { op: ShiftOp::Sra, rd: r(9), rt: r(10), shamt: 31 },
            Inst::AluImm { op: AluImmOp::Addi, rt: r(4), rs: r(4), imm: -32768 },
            Inst::AluImm { op: AluImmOp::Ori, rt: r(4), rs: r(0), imm: 0x7fff },
            Inst::Lui { rt: r(8), imm: 0xffff },
            Inst::Lw { rt: r(5), base: r(29), off: -4 },
            Inst::Sw { rt: r(5), base: r(29), off: 32767 },
            Inst::Ld { ft: f(2), base: r(6), off: 8 },
            Inst::Sd { ft: f(30), base: r(6), off: -8 },
            Inst::FpOp { op: FpAluOp::MulD, fd: f(1), fs: f(2), ft: f(3) },
            Inst::FpUnary { op: FpUnaryOp::CvtDW, fd: f(4), fs: f(5) },
            Inst::FpUnary { op: FpUnaryOp::SqrtD, fd: f(0), fs: f(31) },
            Inst::CmpD { cond: FpCond::Lt, rd: r(2), fs: f(0), ft: f(1) },
            Inst::Mtc1 { rs: r(7), fd: f(7) },
            Inst::Mfc1 { rd: r(7), fs: f(7) },
            Inst::Beq { rs: r(1), rt: r(2), off: -100 },
            Inst::Bne { rs: r(1), rt: r(0), off: 100 },
            Inst::Bcond { cond: BranchCond::Gez, rs: r(3), off: -1 },
            Inst::J { target: 0x0040_0000 },
            Inst::Jal { target: 4 },
            Inst::Jr { rs: IntReg::RA },
            Inst::Jalr { rd: r(31), rs: r(9) },
        ];
        for inst in insts {
            roundtrip(inst);
        }
    }

    #[test]
    fn jump_encoding_validates_target() {
        assert_eq!(Inst::J { target: 3 }.encode(), Err(EncodeInstError::UnalignedJumpTarget(3)));
        assert_eq!(
            Inst::Jal { target: 1 << 29 }.encode(),
            Err(EncodeInstError::JumpTargetOutOfRange(1 << 29))
        );
        // Maximum encodable target.
        let max = ((1u32 << 26) - 1) * 4;
        roundtrip(Inst::J { target: max });
    }

    #[test]
    fn invalid_words_are_rejected() {
        // Unassigned opcode 0x3f.
        let bad_op = 0x3fu32 << 26 | 1;
        assert!(matches!(
            Inst::decode(bad_op),
            Err(DecodeInstError::InvalidOpcode { opcode: 0x3f, .. })
        ));
        // R-type with unassigned funct 0x3e.
        let bad_funct = 0x3eu32;
        assert!(matches!(
            Inst::decode(bad_funct),
            Err(DecodeInstError::InvalidFunct { funct: 0x3e, .. })
        ));
        // FP-type with unassigned funct.
        let bad_fp = (1u32 << 26) | 0x3e;
        assert!(matches!(Inst::decode(bad_fp), Err(DecodeInstError::InvalidFunct { .. })));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = Inst::decode(0x3fu32 << 26).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid opcode"), "{msg}");
    }
}
