//! Stable 64-bit fingerprints for configuration and program identity.
//!
//! The experiment engine deduplicates simulation jobs by `(program,
//! config)` identity, and those keys must be *stable*: the same value must
//! fingerprint to the same bits in every process, on every platform, with
//! every compiler — unlike [`std::collections::hash_map::RandomState`],
//! which is seeded per process. [`StableHasher`] is FNV-1a over a
//! canonical little-endian byte stream, so any `#[derive(Hash)]` type can
//! be fingerprinted deterministically via [`fingerprint_of`].
//!
//! # Examples
//!
//! ```
//! use riq_isa::fingerprint_of;
//! #[derive(Hash)]
//! struct Cfg {
//!     iq: u32,
//!     reuse: bool,
//! }
//! let a = fingerprint_of(&Cfg { iq: 64, reuse: true });
//! let b = fingerprint_of(&Cfg { iq: 64, reuse: true });
//! let c = fingerprint_of(&Cfg { iq: 128, reuse: true });
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! ```

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic [`Hasher`]: FNV-1a over little-endian integer
/// encodings. Not keyed and not collision-resistant against adversaries —
/// use it for cache keys and content identity, not for untrusted input.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    // Fix the integer encodings to little-endian so the stream (and thus
    // the fingerprint) does not depend on the host byte order.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// The stable fingerprint of any hashable value.
#[must_use]
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // FNV-1a reference values for raw byte streams.
        let mut h = StableHasher::new();
        h.write(b"");
        assert_eq!(h.finish(), FNV_OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn deterministic_across_hashers() {
        let v = (42u32, "kernel", vec![1u64, 2, 3], true);
        assert_eq!(fingerprint_of(&v), fingerprint_of(&v));
    }

    #[test]
    fn distinguishes_field_order_sensitive_values() {
        assert_ne!(fingerprint_of(&(1u32, 2u32)), fingerprint_of(&(2u32, 1u32)));
        assert_ne!(fingerprint_of(&0u64), fingerprint_of(&0u32));
    }
}
