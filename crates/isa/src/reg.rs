//! Architectural register names for the riq ISA.
//!
//! The ISA models a MIPS-R10000-style register file: 32 general-purpose
//! integer registers (`$r0` is hard-wired to zero, `$r31` is the link
//! register written by [`crate::Inst::Jal`]) and 32 double-precision
//! floating-point registers.
//!
//! [`ArchReg`] is the *unified* logical register namespace used by the
//! rename stage and by the issue queue's Logical Register List: integer
//! registers occupy indices `0..32` and floating-point registers indices
//! `32..64`.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Size of the unified logical register namespace ([`ArchReg::index`]).
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// An integer architectural register, `$r0`–`$r31`.
///
/// `$r0` always reads as zero and ignores writes. `$r31` (`$ra`) is the
/// link register used by call instructions.
///
/// # Examples
///
/// ```
/// use riq_isa::IntReg;
/// let ra = IntReg::RA;
/// assert_eq!(ra.number(), 31);
/// assert_eq!(ra.to_string(), "$r31");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

impl IntReg {
    /// The hard-wired zero register `$r0`.
    pub const ZERO: IntReg = IntReg(0);
    /// The link register `$r31`, written by `jal`/`jalr`.
    pub const RA: IntReg = IntReg(31);
    /// The conventional stack-pointer register `$r29`.
    pub const SP: IntReg = IntReg(29);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn new(n: u8) -> IntReg {
        assert!(n < NUM_INT_REGS as u8, "integer register out of range");
        IntReg(n)
    }

    /// Creates a register from its number, returning `None` when out of range.
    #[must_use]
    pub fn try_new(n: u8) -> Option<IntReg> {
        (n < NUM_INT_REGS as u8).then_some(IntReg(n))
    }

    /// The register number, `0..32`.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}", self.0)
    }
}

impl Default for IntReg {
    fn default() -> Self {
        IntReg::ZERO
    }
}

/// A double-precision floating-point architectural register, `$f0`–`$f31`.
///
/// # Examples
///
/// ```
/// use riq_isa::FpReg;
/// let f2 = FpReg::new(2);
/// assert_eq!(f2.to_string(), "$f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FpReg(u8);

impl FpReg {
    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn new(n: u8) -> FpReg {
        assert!(n < NUM_FP_REGS as u8, "fp register out of range");
        FpReg(n)
    }

    /// Creates a register from its number, returning `None` when out of range.
    #[must_use]
    pub fn try_new(n: u8) -> Option<FpReg> {
        (n < NUM_FP_REGS as u8).then_some(FpReg(n))
    }

    /// The register number, `0..32`.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

/// A logical register in the unified namespace used by register renaming.
///
/// The issue queue's Logical Register List stores three of these (5 bits of
/// register number plus the int/fp bank bit) per buffered instruction.
///
/// # Examples
///
/// ```
/// use riq_isa::{ArchReg, IntReg, FpReg};
/// assert_eq!(ArchReg::Int(IntReg::new(5)).index(), 5);
/// assert_eq!(ArchReg::Fp(FpReg::new(5)).index(), 37);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArchReg {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
}

impl ArchReg {
    /// Flat index in `0..NUM_ARCH_REGS`: integer registers first, then fp.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ArchReg::Int(r) => r.number() as usize,
            ArchReg::Fp(r) => NUM_INT_REGS + r.number() as usize,
        }
    }

    /// Inverse of [`ArchReg::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_ARCH_REGS`.
    #[must_use]
    pub fn from_index(idx: usize) -> ArchReg {
        assert!(idx < NUM_ARCH_REGS, "arch register index out of range: {idx}");
        if idx < NUM_INT_REGS {
            ArchReg::Int(IntReg::new(idx as u8))
        } else {
            ArchReg::Fp(FpReg::new((idx - NUM_INT_REGS) as u8))
        }
    }

    /// Whether this register always reads as zero (`$r0`).
    #[must_use]
    pub fn is_hardwired_zero(self) -> bool {
        matches!(self, ArchReg::Int(r) if r.is_zero())
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchReg::Int(r) => r.fmt(f),
            ArchReg::Fp(r) => r.fmt(f),
        }
    }
}

impl From<IntReg> for ArchReg {
    fn from(r: IntReg) -> Self {
        ArchReg::Int(r)
    }
}

impl From<FpReg> for ArchReg {
    fn from(r: FpReg) -> Self {
        ArchReg::Fp(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_roundtrip() {
        for n in 0..32 {
            let r = IntReg::new(n);
            assert_eq!(r.number(), n);
            assert_eq!(IntReg::try_new(n), Some(r));
        }
        assert_eq!(IntReg::try_new(32), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        let _ = IntReg::new(32);
    }

    #[test]
    fn zero_register_identity() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::RA.is_zero());
        assert!(ArchReg::Int(IntReg::ZERO).is_hardwired_zero());
        assert!(!ArchReg::Fp(FpReg::new(0)).is_hardwired_zero());
    }

    #[test]
    fn arch_reg_index_roundtrip() {
        for idx in 0..NUM_ARCH_REGS {
            assert_eq!(ArchReg::from_index(idx).index(), idx);
        }
    }

    #[test]
    fn arch_reg_banks_are_disjoint() {
        let int5 = ArchReg::Int(IntReg::new(5));
        let fp5 = ArchReg::Fp(FpReg::new(5));
        assert_ne!(int5.index(), fp5.index());
        assert_ne!(int5, fp5);
    }

    #[test]
    fn display_names() {
        assert_eq!(IntReg::SP.to_string(), "$r29");
        assert_eq!(FpReg::new(31).to_string(), "$f31");
        assert_eq!(ArchReg::Fp(FpReg::new(3)).to_string(), "$f3");
    }
}
