//! # riq-isa — the riq instruction-set architecture
//!
//! A 32-bit MIPS-like RISC ISA used by the riq reproduction of *Scheduling
//! Reusable Instructions for Power Reduction* (DATE 2004). It plays the role
//! SimpleScalar's PISA target plays in the paper: the machine language that
//! array-intensive loop kernels compile to and that the cycle-level
//! out-of-order simulator executes.
//!
//! The ISA has:
//!
//! * 32 integer registers (`$r0` hard-wired to zero, `$r31` the link
//!   register) and 32 double-precision FP registers — see [`IntReg`],
//!   [`FpReg`], and the unified [`ArchReg`] namespace used by renaming;
//! * fixed 32-bit instruction words with full binary
//!   [`encode`](Inst::encode)/[`decode`](Inst::decode) and a
//!   [`disassemble`]r;
//! * integer ALU/multiply/divide, double-precision FP arithmetic,
//!   word/double loads and stores, compare-and-branch, and direct/indirect
//!   jumps and calls — everything a compiled loop nest needs, and nothing
//!   the paper's evaluation does not exercise.
//!
//! # Examples
//!
//! Round-trip an instruction through its binary encoding:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_isa::{Inst, AluOp, IntReg};
//!
//! let inst = Inst::Alu {
//!     op: AluOp::Add,
//!     rd: IntReg::new(3),
//!     rs: IntReg::new(1),
//!     rt: IntReg::new(2),
//! };
//! let word = inst.encode()?;
//! assert_eq!(Inst::decode(word)?, inst);
//! assert_eq!(inst.to_string(), "add $r3, $r1, $r2");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod disasm;
mod encode;
mod fingerprint;
mod inst;
mod reg;

pub use disasm::{disassemble, disassemble_with};
pub use encode::{DecodeInstError, EncodeInstError};
pub use fingerprint::{fingerprint_of, StableHasher};
pub use inst::{
    branch_target, AluImmOp, AluOp, BranchCond, CtrlKind, FpAluOp, FpCond, FpUnaryOp, Inst,
    InstClass, ShiftOp,
};
pub use reg::{ArchReg, FpReg, IntReg, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};

/// Size of one instruction in bytes.
pub const INST_BYTES: u32 = 4;
