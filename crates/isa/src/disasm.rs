//! Textual disassembly of riq instructions.
//!
//! [`Inst`] implements [`std::fmt::Display`] with PC-relative branch offsets
//! spelled as word offsets; [`disassemble`] additionally resolves branch
//! targets to absolute addresses given the instruction's PC, which is what
//! pipeline traces print.

use crate::inst::Inst;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::Alu { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Inst::AluImm { op, rt, rs, imm } => write!(f, "{op} {rt}, {rs}, {imm}"),
            Inst::Shift { op, rd, rt, shamt } => write!(f, "{op} {rd}, {rt}, {shamt}"),
            Inst::Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Inst::Lw { rt, base, off } => write!(f, "lw {rt}, {off}({base})"),
            Inst::Sw { rt, base, off } => write!(f, "sw {rt}, {off}({base})"),
            Inst::Ld { ft, base, off } => write!(f, "l.d {ft}, {off}({base})"),
            Inst::Sd { ft, base, off } => write!(f, "s.d {ft}, {off}({base})"),
            Inst::FpOp { op, fd, fs, ft } => write!(f, "{op} {fd}, {fs}, {ft}"),
            Inst::FpUnary { op, fd, fs } => write!(f, "{op} {fd}, {fs}"),
            Inst::CmpD { cond, rd, fs, ft } => write!(f, "c.{cond}.d {rd}, {fs}, {ft}"),
            Inst::Mtc1 { rs, fd } => write!(f, "mtc1 {rs}, {fd}"),
            Inst::Mfc1 { rd, fs } => write!(f, "mfc1 {rd}, {fs}"),
            Inst::Beq { rs, rt, off } => write!(f, "beq {rs}, {rt}, {off}"),
            Inst::Bne { rs, rt, off } => write!(f, "bne {rs}, {rt}, {off}"),
            Inst::Bcond { cond, rs, off } => write!(f, "{cond} {rs}, {off}"),
            Inst::J { target } => write!(f, "j {target:#x}"),
            Inst::Jal { target } => write!(f, "jal {target:#x}"),
            Inst::Jr { rs } => write!(f, "jr {rs}"),
            Inst::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
        }
    }
}

/// Disassembles `inst` at address `pc`, resolving branch targets.
///
/// # Examples
///
/// ```
/// use riq_isa::{disassemble, Inst, IntReg};
/// let b = Inst::Bne { rs: IntReg::new(2), rt: IntReg::new(0), off: -3 };
/// assert_eq!(disassemble(&b, 0x110), "bne $r2, $r0, 0x108");
/// ```
#[must_use]
pub fn disassemble(inst: &Inst, pc: u32) -> String {
    disassemble_with(inst, pc, |_| None)
}

/// [`disassemble`] with a symbol resolver: control-transfer targets
/// (conditional branches, jumps, and calls) are printed through `resolve`
/// when it knows a name for the address, and as absolute hex otherwise.
///
/// The resolver typically wraps a program's symbol table — e.g.
/// `|addr| program.symbolize(addr)` — so loop branches disassemble as
/// `bne $r2, $r0, loop` instead of a bare address.
///
/// # Examples
///
/// ```
/// use riq_isa::{disassemble_with, Inst, IntReg};
/// let b = Inst::Bne { rs: IntReg::new(2), rt: IntReg::new(0), off: -3 };
/// let named = disassemble_with(&b, 0x110, |a| (a == 0x108).then(|| "loop".to_string()));
/// assert_eq!(named, "bne $r2, $r0, loop");
/// ```
#[must_use]
pub fn disassemble_with<F>(inst: &Inst, pc: u32, resolve: F) -> String
where
    F: Fn(u32) -> Option<String>,
{
    let name = |target: u32| resolve(target).unwrap_or_else(|| format!("{target:#x}"));
    match *inst {
        Inst::Beq { rs, rt, off } => {
            format!("beq {rs}, {rt}, {}", name(crate::branch_target(pc, off)))
        }
        Inst::Bne { rs, rt, off } => {
            format!("bne {rs}, {rt}, {}", name(crate::branch_target(pc, off)))
        }
        Inst::Bcond { cond, rs, off } => {
            format!("{cond} {rs}, {}", name(crate::branch_target(pc, off)))
        }
        Inst::J { target } => format!("j {}", name(target)),
        Inst::Jal { target } => format!("jal {}", name(target)),
        _ => inst.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluImmOp, AluOp, FpAluOp};
    use crate::reg::{FpReg, IntReg};

    #[test]
    fn display_formats() {
        let r = IntReg::new;
        let f = FpReg::new;
        let cases: Vec<(Inst, &str)> = vec![
            (Inst::Nop, "nop"),
            (Inst::Halt, "halt"),
            (Inst::Alu { op: AluOp::Add, rd: r(3), rs: r(1), rt: r(2) }, "add $r3, $r1, $r2"),
            (Inst::AluImm { op: AluImmOp::Addi, rt: r(4), rs: r(4), imm: -8 }, "addi $r4, $r4, -8"),
            (Inst::Lw { rt: r(5), base: r(29), off: 12 }, "lw $r5, 12($r29)"),
            (Inst::FpOp { op: FpAluOp::MulD, fd: f(0), fs: f(1), ft: f(2) }, "mul.d $f0, $f1, $f2"),
            (Inst::Jr { rs: IntReg::RA }, "jr $r31"),
        ];
        for (inst, expect) in cases {
            assert_eq!(inst.to_string(), expect);
        }
    }

    #[test]
    fn disassemble_resolves_branch_targets() {
        let b = Inst::Beq { rs: IntReg::new(1), rt: IntReg::new(2), off: 2 };
        assert_eq!(disassemble(&b, 0x100), "beq $r1, $r2, 0x10c");
        // Non-branches fall back to Display.
        assert_eq!(disassemble(&Inst::Halt, 0x100), "halt");
    }

    #[test]
    fn disassemble_with_resolves_symbols() {
        let resolve = |a: u32| match a {
            0x100 => Some("head".to_string()),
            0x400 => Some("leaf".to_string()),
            _ => None,
        };
        let b = Inst::Bne { rs: IntReg::new(2), rt: IntReg::new(0), off: -4 };
        assert_eq!(disassemble_with(&b, 0x10c, resolve), "bne $r2, $r0, head");
        assert_eq!(disassemble_with(&Inst::Jal { target: 0x400 }, 0x10c, resolve), "jal leaf");
        // Unknown targets keep the hex form; non-control falls back.
        assert_eq!(disassemble_with(&Inst::J { target: 0x200 }, 0x10c, resolve), "j 0x200");
        assert_eq!(disassemble_with(&Inst::Nop, 0, resolve), "nop");
    }
}
