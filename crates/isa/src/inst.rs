//! Instruction definitions for the riq ISA.
//!
//! The ISA is a 32-bit MIPS-like RISC: fixed 4-byte instructions, a
//! load/store architecture, 32 integer and 32 double-precision registers,
//! PC-relative conditional branches and absolute-target jumps. It is the
//! moral equivalent of SimpleScalar's PISA target used by the paper, reduced
//! to the instruction classes that array-intensive loop kernels exercise.
//!
//! Every instruction has at most one destination register and at most two
//! source registers, which is what lets the reuse issue queue's Logical
//! Register List store "three logical register numbers" per entry (§2.2 of
//! the paper).

use crate::reg::{ArchReg, FpReg, IntReg};
use std::fmt;

/// Floating-point comparison condition for [`Inst::CmpD`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCond {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl fmt::Display for FpCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpCond::Eq => write!(f, "eq"),
            FpCond::Lt => write!(f, "lt"),
            FpCond::Le => write!(f, "le"),
        }
    }
}

/// Condition for single-source integer branches ([`Inst::Bcond`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if less than or equal to zero (`blez`).
    Lez,
    /// Branch if greater than zero (`bgtz`).
    Gtz,
    /// Branch if less than zero (`bltz`).
    Ltz,
    /// Branch if greater than or equal to zero (`bgez`).
    Gez,
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchCond::Lez => write!(f, "blez"),
            BranchCond::Gtz => write!(f, "bgtz"),
            BranchCond::Ltz => write!(f, "bltz"),
            BranchCond::Gez => write!(f, "bgez"),
        }
    }
}

/// Three-register integer ALU operation selector for [`Inst::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (executes on the integer multiplier).
    Mul,
    /// Signed division; division by zero yields `0` (no trap).
    Div,
    /// Signed remainder; remainder by zero yields `0` (no trap).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Set-if-less-than, signed compare, result `0`/`1`.
    Slt,
    /// Set-if-less-than, unsigned compare, result `0`/`1`.
    Sltu,
    /// Logical shift left by `rt & 31`.
    Sllv,
    /// Logical shift right by `rt & 31`.
    Srlv,
    /// Arithmetic shift right by `rt & 31`.
    Srav,
}

impl AluOp {
    /// Whether this operation executes on the integer multiply/divide unit.
    #[must_use]
    pub fn uses_imult(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Sllv => "sllv",
            AluOp::Srlv => "srlv",
            AluOp::Srav => "srav",
        };
        write!(f, "{s}")
    }
}

/// Immediate-operand integer ALU operation selector for [`Inst::AluImm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `rt = rs + sext(imm)` (wrapping).
    Addi,
    /// `rt = (rs as i32) < sext(imm)`.
    Slti,
    /// `rt = rs < (sext(imm) as u32)` (unsigned compare).
    Sltiu,
    /// `rt = rs & zext(imm)`.
    Andi,
    /// `rt = rs | zext(imm)`.
    Ori,
    /// `rt = rs ^ zext(imm)`.
    Xori,
}

impl fmt::Display for AluImmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
        };
        write!(f, "{s}")
    }
}

/// Constant-shift operation selector for [`Inst::Shift`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShiftOp::Sll => "sll",
            ShiftOp::Srl => "srl",
            ShiftOp::Sra => "sra",
        };
        write!(f, "{s}")
    }
}

/// Three-register floating-point operation selector for [`Inst::FpOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpAluOp {
    /// Double-precision addition.
    AddD,
    /// Double-precision subtraction.
    SubD,
    /// Double-precision multiplication.
    MulD,
    /// Double-precision division.
    DivD,
}

impl FpAluOp {
    /// Whether this operation executes on the FP multiply/divide unit.
    #[must_use]
    pub fn uses_fpmult(self) -> bool {
        matches!(self, FpAluOp::MulD | FpAluOp::DivD)
    }
}

impl fmt::Display for FpAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpAluOp::AddD => "add.d",
            FpAluOp::SubD => "sub.d",
            FpAluOp::MulD => "mul.d",
            FpAluOp::DivD => "div.d",
        };
        write!(f, "{s}")
    }
}

/// Single-source floating-point operation selector for [`Inst::FpUnary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnaryOp {
    /// Register move.
    MovD,
    /// Negation.
    NegD,
    /// Square root.
    SqrtD,
    /// Convert the low 32 bits of `fs` (interpreted as `i32`) to a double.
    CvtDW,
    /// Truncate the double in `fs` to an `i32` stored in the low bits of `fd`.
    CvtWD,
}

impl fmt::Display for FpUnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpUnaryOp::MovD => "mov.d",
            FpUnaryOp::NegD => "neg.d",
            FpUnaryOp::SqrtD => "sqrt.d",
            FpUnaryOp::CvtDW => "cvt.d.w",
            FpUnaryOp::CvtWD => "cvt.w.d",
        };
        write!(f, "{s}")
    }
}

/// A decoded riq instruction.
///
/// # Examples
///
/// ```
/// use riq_isa::{Inst, AluOp, IntReg};
/// let add = Inst::Alu {
///     op: AluOp::Add,
///     rd: IntReg::new(3),
///     rs: IntReg::new(1),
///     rt: IntReg::new(2),
/// };
/// assert_eq!(add.dest(), Some(IntReg::new(3).into()));
/// assert!(!add.is_control());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // payload fields follow MIPS naming (rd/rs/rt/fd/fs/ft/imm/off)
pub enum Inst {
    /// Canonical no-operation (encodes as the all-zero word).
    Nop,
    /// Stops the program; the simulator drains and halts when this commits.
    Halt,
    /// Three-register integer ALU operation: `rd = rs <op> rt`.
    Alu { op: AluOp, rd: IntReg, rs: IntReg, rt: IntReg },
    /// Immediate integer ALU operation: `rt = rs <op> imm`.
    AluImm { op: AluImmOp, rt: IntReg, rs: IntReg, imm: i16 },
    /// Constant shift: `rd = rt <op> shamt`.
    Shift { op: ShiftOp, rd: IntReg, rt: IntReg, shamt: u8 },
    /// Load upper immediate: `rt = imm << 16`.
    Lui { rt: IntReg, imm: u16 },
    /// Load word: `rt = mem32[rs + sext(off)]`.
    Lw { rt: IntReg, base: IntReg, off: i16 },
    /// Store word: `mem32[rs + sext(off)] = rt`.
    Sw { rt: IntReg, base: IntReg, off: i16 },
    /// Load double: `ft = mem64[rs + sext(off)]`.
    Ld { ft: FpReg, base: IntReg, off: i16 },
    /// Store double: `mem64[rs + sext(off)] = ft`.
    Sd { ft: FpReg, base: IntReg, off: i16 },
    /// Three-register FP operation: `fd = fs <op> ft`.
    FpOp { op: FpAluOp, fd: FpReg, fs: FpReg, ft: FpReg },
    /// Single-source FP operation: `fd = <op>(fs)`.
    FpUnary { op: FpUnaryOp, fd: FpReg, fs: FpReg },
    /// FP compare writing `0`/`1` into an integer register: `rd = fs <cond> ft`.
    CmpD { cond: FpCond, rd: IntReg, fs: FpReg, ft: FpReg },
    /// Move integer register to FP register (raw bits, zero-extended).
    Mtc1 { rs: IntReg, fd: FpReg },
    /// Move low 32 bits of an FP register to an integer register.
    Mfc1 { rd: IntReg, fs: FpReg },
    /// Branch if `rs == rt`; `off` is in words relative to the next PC.
    Beq { rs: IntReg, rt: IntReg, off: i16 },
    /// Branch if `rs != rt`.
    Bne { rs: IntReg, rt: IntReg, off: i16 },
    /// Single-source compare-with-zero branch.
    Bcond { cond: BranchCond, rs: IntReg, off: i16 },
    /// Unconditional direct jump to an absolute word address.
    J { target: u32 },
    /// Direct call: jumps and writes the return address to `$r31`.
    Jal { target: u32 },
    /// Indirect jump through `rs` (used for returns).
    Jr { rs: IntReg },
    /// Indirect call through `rs`, writing the return address to `rd`.
    Jalr { rd: IntReg, rs: IntReg },
}

/// Function-unit / scheduling class of an instruction.
///
/// Used by the issue stage to pick a function unit and by the power model to
/// attribute execution energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU (also used for branch compare and address
    /// generation is modeled separately).
    IntAlu,
    /// Integer multiply.
    IntMult,
    /// Integer divide/remainder.
    IntDiv,
    /// FP add/subtract/compare/convert/move.
    FpAlu,
    /// FP multiply.
    FpMult,
    /// FP divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer (conditional branch, jump, call, return).
    Ctrl,
    /// No-op (consumes a slot but no function unit).
    Nop,
    /// Program halt.
    Halt,
}

/// Flavor of control transfer, used by the branch predictor interface and by
/// the reuse issue queue's loop detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Conditional branch with a static target.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes the RAS).
    Call,
    /// Indirect call.
    IndirectCall,
    /// Indirect jump (treated as a return when through `$r31`).
    Return,
}

impl Inst {
    /// The scheduling class of this instruction.
    #[must_use]
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Nop => InstClass::Nop,
            Inst::Halt => InstClass::Halt,
            Inst::Alu { op, .. } => match op {
                AluOp::Mul => InstClass::IntMult,
                AluOp::Div | AluOp::Rem => InstClass::IntDiv,
                _ => InstClass::IntAlu,
            },
            Inst::AluImm { .. } | Inst::Shift { .. } | Inst::Lui { .. } => InstClass::IntAlu,
            Inst::Lw { .. } | Inst::Ld { .. } => InstClass::Load,
            Inst::Sw { .. } | Inst::Sd { .. } => InstClass::Store,
            Inst::FpOp { op, .. } => match op {
                FpAluOp::MulD => InstClass::FpMult,
                FpAluOp::DivD => InstClass::FpDiv,
                _ => InstClass::FpAlu,
            },
            Inst::FpUnary { op, .. } => match op {
                FpUnaryOp::SqrtD => InstClass::FpDiv,
                _ => InstClass::FpAlu,
            },
            Inst::CmpD { .. } | Inst::Mtc1 { .. } | Inst::Mfc1 { .. } => InstClass::FpAlu,
            Inst::Beq { .. } | Inst::Bne { .. } | Inst::Bcond { .. } => InstClass::Ctrl,
            Inst::J { .. } | Inst::Jal { .. } | Inst::Jr { .. } | Inst::Jalr { .. } => {
                InstClass::Ctrl
            }
        }
    }

    /// The control-transfer kind, or `None` for non-control instructions.
    #[must_use]
    pub fn ctrl_kind(&self) -> Option<CtrlKind> {
        match self {
            Inst::Beq { .. } | Inst::Bne { .. } | Inst::Bcond { .. } => Some(CtrlKind::CondBranch),
            Inst::J { .. } => Some(CtrlKind::Jump),
            Inst::Jal { .. } => Some(CtrlKind::Call),
            Inst::Jalr { .. } => Some(CtrlKind::IndirectCall),
            Inst::Jr { .. } => Some(CtrlKind::Return),
            _ => None,
        }
    }

    /// Whether this instruction transfers control.
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.ctrl_kind().is_some()
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.ctrl_kind(), Some(CtrlKind::CondBranch))
    }

    /// Whether this is a memory access.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self.class(), InstClass::Load | InstClass::Store)
    }

    /// The statically-known target of this control instruction, given its PC.
    ///
    /// Conditional branches return their taken target; direct jumps and calls
    /// return their absolute target. Indirect jumps return `None`.
    #[must_use]
    pub fn static_target(&self, pc: u32) -> Option<u32> {
        match *self {
            Inst::Beq { off, .. } | Inst::Bne { off, .. } | Inst::Bcond { off, .. } => {
                Some(branch_target(pc, off))
            }
            Inst::J { target } | Inst::Jal { target } => Some(target),
            _ => None,
        }
    }

    /// The destination register, if any.
    #[must_use]
    pub fn dest(&self) -> Option<ArchReg> {
        let d = match *self {
            Inst::Alu { rd, .. } | Inst::Shift { rd, .. } => ArchReg::Int(rd),
            Inst::AluImm { rt, .. } | Inst::Lui { rt, .. } | Inst::Lw { rt, .. } => {
                ArchReg::Int(rt)
            }
            Inst::Ld { ft, .. } => ArchReg::Fp(ft),
            Inst::FpOp { fd, .. } | Inst::FpUnary { fd, .. } | Inst::Mtc1 { fd, .. } => {
                ArchReg::Fp(fd)
            }
            Inst::CmpD { rd, .. } | Inst::Mfc1 { rd, .. } => ArchReg::Int(rd),
            Inst::Jal { .. } => ArchReg::Int(IntReg::RA),
            Inst::Jalr { rd, .. } => ArchReg::Int(rd),
            _ => return None,
        };
        // Writes to the hard-wired zero register are architectural no-ops and
        // must not create a rename mapping.
        (!d.is_hardwired_zero()).then_some(d)
    }

    /// The source registers, up to two.
    ///
    /// Reads of `$r0` are omitted: the zero register is always ready and never
    /// creates a dependence.
    #[must_use]
    pub fn sources(&self) -> [Option<ArchReg>; 2] {
        fn int(r: IntReg) -> Option<ArchReg> {
            (!r.is_zero()).then_some(ArchReg::Int(r))
        }
        fn fp(r: FpReg) -> Option<ArchReg> {
            Some(ArchReg::Fp(r))
        }
        match *self {
            Inst::Nop | Inst::Halt | Inst::Lui { .. } | Inst::J { .. } | Inst::Jal { .. } => {
                [None, None]
            }
            Inst::Alu { rs, rt, .. } => [int(rs), int(rt)],
            Inst::AluImm { rs, .. } => [int(rs), None],
            Inst::Shift { rt, .. } => [int(rt), None],
            Inst::Lw { base, .. } | Inst::Ld { base, .. } => [int(base), None],
            Inst::Sw { rt, base, .. } => [int(base), int(rt)],
            Inst::Sd { ft, base, .. } => [int(base), fp(ft)],
            Inst::FpOp { fs, ft, .. } => [fp(fs), fp(ft)],
            Inst::FpUnary { fs, .. } => [fp(fs), None],
            Inst::CmpD { fs, ft, .. } => [fp(fs), fp(ft)],
            Inst::Mtc1 { rs, .. } => [int(rs), None],
            Inst::Mfc1 { fs, .. } => [fp(fs), None],
            Inst::Beq { rs, rt, .. } | Inst::Bne { rs, rt, .. } => [int(rs), int(rt)],
            Inst::Bcond { rs, .. } => [int(rs), None],
            Inst::Jr { rs } | Inst::Jalr { rs, .. } => [int(rs), None],
        }
    }

    /// Number of live source registers.
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.sources().iter().filter(|s| s.is_some()).count()
    }

    /// Memory access width in bytes, or `None` for non-memory instructions.
    #[must_use]
    pub fn mem_width(&self) -> Option<u32> {
        match self {
            Inst::Lw { .. } | Inst::Sw { .. } => Some(4),
            Inst::Ld { .. } | Inst::Sd { .. } => Some(8),
            _ => None,
        }
    }
}

/// Computes the taken target of a conditional branch at `pc` with a word
/// offset of `off` (relative to the *next* instruction, as in MIPS).
///
/// # Examples
///
/// ```
/// use riq_isa::branch_target;
/// // A branch at 0x100 with offset -2 targets 0x104 - 8 = 0xfc.
/// assert_eq!(branch_target(0x100, -2), 0xfc);
/// ```
#[must_use]
pub fn branch_target(pc: u32, off: i16) -> u32 {
    pc.wrapping_add(4).wrapping_add((off as i32 as u32).wrapping_mul(4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> IntReg {
        IntReg::new(n)
    }
    fn f(n: u8) -> FpReg {
        FpReg::new(n)
    }

    #[test]
    fn alu_classes() {
        let mk = |op| Inst::Alu { op, rd: r(1), rs: r(2), rt: r(3) };
        assert_eq!(mk(AluOp::Add).class(), InstClass::IntAlu);
        assert_eq!(mk(AluOp::Mul).class(), InstClass::IntMult);
        assert_eq!(mk(AluOp::Div).class(), InstClass::IntDiv);
        assert_eq!(mk(AluOp::Rem).class(), InstClass::IntDiv);
    }

    #[test]
    fn fp_classes() {
        let mk = |op| Inst::FpOp { op, fd: f(1), fs: f(2), ft: f(3) };
        assert_eq!(mk(FpAluOp::AddD).class(), InstClass::FpAlu);
        assert_eq!(mk(FpAluOp::MulD).class(), InstClass::FpMult);
        assert_eq!(mk(FpAluOp::DivD).class(), InstClass::FpDiv);
        let sqrt = Inst::FpUnary { op: FpUnaryOp::SqrtD, fd: f(1), fs: f(2) };
        assert_eq!(sqrt.class(), InstClass::FpDiv);
    }

    #[test]
    fn zero_register_never_a_dependence() {
        let add = Inst::Alu { op: AluOp::Add, rd: r(0), rs: r(0), rt: r(5) };
        assert_eq!(add.dest(), None, "write to $r0 is discarded");
        assert_eq!(add.sources(), [None, Some(ArchReg::Int(r(5)))]);
    }

    #[test]
    fn store_sources_include_value_and_base() {
        let sw = Inst::Sw { rt: r(7), base: r(8), off: 4 };
        assert_eq!(sw.dest(), None);
        assert_eq!(sw.source_count(), 2);
        let sd = Inst::Sd { ft: f(7), base: r(8), off: 4 };
        assert_eq!(sd.sources()[1], Some(ArchReg::Fp(f(7))));
    }

    #[test]
    fn call_defines_link_register() {
        assert_eq!(Inst::Jal { target: 0x40 }.dest(), Some(ArchReg::Int(IntReg::RA)));
        assert_eq!(Inst::Jalr { rd: r(20), rs: r(9) }.dest(), Some(ArchReg::Int(r(20))));
    }

    #[test]
    fn ctrl_kinds() {
        assert_eq!(
            Inst::Beq { rs: r(1), rt: r(2), off: -4 }.ctrl_kind(),
            Some(CtrlKind::CondBranch)
        );
        assert_eq!(Inst::J { target: 0 }.ctrl_kind(), Some(CtrlKind::Jump));
        assert_eq!(Inst::Jal { target: 0 }.ctrl_kind(), Some(CtrlKind::Call));
        assert_eq!(Inst::Jr { rs: IntReg::RA }.ctrl_kind(), Some(CtrlKind::Return));
        assert_eq!(Inst::Nop.ctrl_kind(), None);
    }

    #[test]
    fn branch_target_arithmetic() {
        // Backward branch closing a 4-instruction loop whose body starts at
        // 0x100: the branch sits at 0x10c and must jump back to 0x100.
        let off = -4i16;
        assert_eq!(branch_target(0x10c, off), 0x100 - 4 + 4);
        assert_eq!(branch_target(0x10c, 0), 0x110);
        assert_eq!(branch_target(0x10c, 1), 0x114);
    }

    #[test]
    fn static_targets() {
        let b = Inst::Bne { rs: r(1), rt: r(0), off: -3 };
        assert_eq!(b.static_target(0x200), Some(0x200 + 4 - 12));
        assert_eq!(Inst::J { target: 0x40 }.static_target(0), Some(0x40));
        assert_eq!(Inst::Jr { rs: r(31) }.static_target(0), None);
    }

    #[test]
    fn mem_widths() {
        assert_eq!(Inst::Lw { rt: r(1), base: r(2), off: 0 }.mem_width(), Some(4));
        assert_eq!(Inst::Sd { ft: f(1), base: r(2), off: 0 }.mem_width(), Some(8));
        assert_eq!(Inst::Nop.mem_width(), None);
    }
}
