//! Property tests: `decode ∘ encode = id` over the whole instruction
//! space, and decode totality (any 32-bit word either decodes to an
//! instruction that re-encodes to itself, or errors).

use proptest::prelude::*;
use riq_isa::{
    AluImmOp, AluOp, BranchCond, FpAluOp, FpCond, FpReg, FpUnaryOp, Inst, IntReg, ShiftOp,
};

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(IntReg::new)
}
fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(FpReg::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Sllv),
        Just(AluOp::Srlv),
        Just(AluOp::Srav),
    ]
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        (alu_op(), int_reg(), int_reg(), int_reg()).prop_map(|(op, rd, rs, rt)| Inst::Alu {
            op,
            rd,
            rs,
            rt
        }),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Slti),
                Just(AluImmOp::Sltiu),
                Just(AluImmOp::Andi),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Xori)
            ],
            int_reg(),
            int_reg(),
            any::<i16>()
        )
            .prop_map(|(op, rt, rs, imm)| Inst::AluImm { op, rt, rs, imm }),
        (
            prop_oneof![Just(ShiftOp::Sll), Just(ShiftOp::Srl), Just(ShiftOp::Sra)],
            int_reg(),
            int_reg(),
            0u8..32
        )
            .prop_map(|(op, rd, rt, shamt)| Inst::Shift { op, rd, rt, shamt }),
        (int_reg(), any::<u16>()).prop_map(|(rt, imm)| Inst::Lui { rt, imm }),
        (int_reg(), int_reg(), any::<i16>()).prop_map(|(rt, base, off)| Inst::Lw { rt, base, off }),
        (int_reg(), int_reg(), any::<i16>()).prop_map(|(rt, base, off)| Inst::Sw { rt, base, off }),
        (fp_reg(), int_reg(), any::<i16>()).prop_map(|(ft, base, off)| Inst::Ld { ft, base, off }),
        (fp_reg(), int_reg(), any::<i16>()).prop_map(|(ft, base, off)| Inst::Sd { ft, base, off }),
        (
            prop_oneof![
                Just(FpAluOp::AddD),
                Just(FpAluOp::SubD),
                Just(FpAluOp::MulD),
                Just(FpAluOp::DivD)
            ],
            fp_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fd, fs, ft)| Inst::FpOp { op, fd, fs, ft }),
        (
            prop_oneof![
                Just(FpUnaryOp::MovD),
                Just(FpUnaryOp::NegD),
                Just(FpUnaryOp::SqrtD),
                Just(FpUnaryOp::CvtDW),
                Just(FpUnaryOp::CvtWD)
            ],
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fd, fs)| Inst::FpUnary { op, fd, fs }),
        (
            prop_oneof![Just(FpCond::Eq), Just(FpCond::Lt), Just(FpCond::Le)],
            int_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(cond, rd, fs, ft)| Inst::CmpD { cond, rd, fs, ft }),
        (int_reg(), fp_reg()).prop_map(|(rs, fd)| Inst::Mtc1 { rs, fd }),
        (int_reg(), fp_reg()).prop_map(|(rd, fs)| Inst::Mfc1 { rd, fs }),
        (int_reg(), int_reg(), any::<i16>()).prop_map(|(rs, rt, off)| Inst::Beq { rs, rt, off }),
        (int_reg(), int_reg(), any::<i16>()).prop_map(|(rs, rt, off)| Inst::Bne { rs, rt, off }),
        (
            prop_oneof![
                Just(BranchCond::Lez),
                Just(BranchCond::Gtz),
                Just(BranchCond::Ltz),
                Just(BranchCond::Gez)
            ],
            int_reg(),
            any::<i16>()
        )
            .prop_map(|(cond, rs, off)| Inst::Bcond { cond, rs, off }),
        (0u32..(1 << 26)).prop_map(|w| Inst::J { target: w * 4 }),
        (0u32..(1 << 26)).prop_map(|w| Inst::Jal { target: w * 4 }),
        int_reg().prop_map(|rs| Inst::Jr { rs }),
        (int_reg(), int_reg()).prop_map(|(rd, rs)| Inst::Jalr { rd, rs }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4096, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_roundtrip(i in inst()) {
        let word = i.encode().expect("all generated instructions encode");
        let back = Inst::decode(word).expect("encoded word decodes");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn decode_is_total_and_consistent(word in any::<u32>()) {
        // Any word either fails to decode, or decodes to an instruction
        // that re-encodes bit-identically (canonical encoding).
        if let Ok(i) = Inst::decode(word) {
            let re = i.encode().expect("decoded instructions are encodable");
            prop_assert_eq!(re, word, "{:?} is not canonical", i);
        }
    }

    #[test]
    fn sources_and_dest_are_well_formed(i in inst()) {
        // At most one destination, at most two sources, never $r0.
        if let Some(d) = i.dest() {
            prop_assert!(!d.is_hardwired_zero());
        }
        let n = i.source_count();
        prop_assert!(n <= 2);
        for s in i.sources().into_iter().flatten() {
            prop_assert!(!s.is_hardwired_zero());
        }
    }

    #[test]
    fn display_never_empty(i in inst()) {
        prop_assert!(!i.to_string().is_empty());
        prop_assert!(!riq_isa::disassemble(&i, 0x40_0000).is_empty());
    }

    #[test]
    fn control_classification_agrees_with_static_target(i in inst(), pc in (0u32..0x100_0000).prop_map(|w| w * 4)) {
        match i.ctrl_kind() {
            None => prop_assert!(i.static_target(pc).is_none()),
            Some(riq_isa::CtrlKind::Return | riq_isa::CtrlKind::IndirectCall) => {
                prop_assert!(i.static_target(pc).is_none(), "indirect targets are unknown")
            }
            Some(_) => prop_assert!(i.static_target(pc).is_some()),
        }
    }
}
