//! Figure 6 bench: per-component power reduction table plus a timing of
//! the power-model accounting hot path.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{EngineOptions, Sweep};
use riq_power::{Activity, Component, PowerConfig, PowerModel};
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let sweep =
        Sweep::run_with(common::BENCH_SCALE, &EngineOptions::default()).expect("sweep runs");
    println!("\n== Figure 6 (scale {}) ==\n{}", common::BENCH_SCALE, sweep.fig6());
    let mut g = c.benchmark_group("fig6");
    g.sample_size(20);
    g.bench_function("power_model_cycle_accounting", |b| {
        let mut model = PowerModel::new(&PowerConfig::table1());
        let mut act = Activity::new();
        act.add(Component::Icache, 1);
        act.add(Component::Decode, 4);
        act.add(Component::IqInsert, 4);
        b.iter(|| {
            model.end_cycle(black_box(&act), false);
            model.end_cycle(black_box(&act), true);
        })
    });
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
