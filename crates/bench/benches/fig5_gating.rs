//! Figure 5 bench: regenerates the gated-cycle table at reduced scale and
//! times the underlying reuse-pipeline simulation.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{EngineOptions, Sweep};
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let sweep =
        Sweep::run_with(common::BENCH_SCALE, &EngineOptions::default()).expect("sweep runs");
    println!(
        "\n== Figure 5 (scale {}) ==\n{}",
        common::BENCH_SCALE,
        sweep.fig5().expect("full sweep")
    );
    let program = common::bench_program("aps");
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("reuse_pipeline_aps_iq64", |b| {
        b.iter(|| black_box(common::run(&program, 64, true)))
    });
    g.bench_function("baseline_pipeline_aps_iq64", |b| {
        b.iter(|| black_box(common::run(&program, 64, false)))
    });
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
