//! NBLT ablation bench (§3's revoke-rate claim) plus timing of a run with
//! the table disabled (worst-case buffering thrash).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{run_experiment, EngineOptions, Experiment};
use riq_core::{Processor, SimConfig};
use std::hint::black_box;

fn bench_nblt(c: &mut Criterion) {
    let table = run_experiment(
        &Experiment::NbltAblation { scale: common::BENCH_SCALE },
        &EngineOptions::default(),
    )
    .expect("ablation runs");
    println!("\n== NBLT ablation (scale {}) ==\n{table}", common::BENCH_SCALE);
    let program = common::bench_program("aps");
    let mut g = c.benchmark_group("nblt");
    g.sample_size(10);
    for (name, entries) in [("disabled", 0u32), ("eight_entries", 8)] {
        g.bench_function(name, |b| {
            let cfg = SimConfig::baseline().with_reuse(true).with_nblt(entries);
            b.iter(|| black_box(Processor::new(cfg.clone()).run(&program).expect("runs")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nblt);
criterion_main!(benches);
