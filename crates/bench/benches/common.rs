//! Shared helpers for the Criterion benches (included via `mod` path).
#![allow(dead_code)] // each bench uses a subset of these helpers

use riq_asm::Program;
use riq_core::{Processor, RunResult, SimConfig};
use riq_kernels::{compile, suite_scaled};

/// Scale used inside timed loops: small enough that one simulation is a
/// reasonable benchmark iteration.
pub const BENCH_SCALE: f64 = 0.05;

/// Compiles one suite kernel at bench scale.
pub fn bench_program(name: &str) -> Program {
    let k = suite_scaled(BENCH_SCALE)
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("unknown kernel {name}"));
    compile(&k).expect("kernel compiles")
}

/// Runs one configuration point (panics on simulator error: benches must
/// never silently measure a failure).
pub fn run(program: &Program, iq: u32, reuse: bool) -> RunResult {
    Processor::new(SimConfig::baseline().with_iq_size(iq).with_reuse(reuse))
        .run(program)
        .expect("simulation succeeds")
}
