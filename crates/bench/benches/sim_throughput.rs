//! Simulator performance: committed instructions per second for the
//! baseline and reuse pipelines, plus the functional emulator as the
//! upper bound.

mod common;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use riq_emu::Machine;
use std::hint::black_box;

fn throughput(c: &mut Criterion) {
    let program = common::bench_program("eflux");
    // Dynamic instruction count (from the oracle) for per-instruction rates.
    let mut m = Machine::new(&program);
    m.run(100_000_000).expect("halts");
    let insts = m.retired();

    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(insts));
    g.bench_function("emulator", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program);
            black_box(m.run(100_000_000).expect("halts"))
        })
    });
    g.bench_function("baseline_pipeline", |b| {
        b.iter(|| black_box(common::run(&program, 64, false)))
    });
    g.bench_function("reuse_pipeline", |b| b.iter(|| black_box(common::run(&program, 64, true))));
    g.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
