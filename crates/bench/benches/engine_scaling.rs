//! Engine bench: serial vs parallel execution of the Figure 5–8 sweep,
//! and the overhead of a fully-cached (all-hits) re-run.
//!
//! On a multi-core host the `jobs_auto` case should approach a linear
//! speedup over `jobs_1` — the sweep is embarrassingly parallel — and the
//! `cached` case measures pure engine bookkeeping (fingerprinting, cache
//! lookups, fan-out) with zero simulation.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{run_experiment, EngineOptions, Experiment};
use std::hint::black_box;

fn engine_scaling(c: &mut Criterion) {
    let experiment = Experiment::Fig5_8 { scale: common::BENCH_SCALE };
    let workers = EngineOptions::default().worker_count(usize::MAX);
    println!("\n== engine scaling (scale {}, {workers} CPUs) ==", common::BENCH_SCALE);

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("sweep_jobs_1", |b| {
        b.iter(|| black_box(run_experiment(&experiment, &EngineOptions::serial()).expect("runs")))
    });
    g.bench_function("sweep_jobs_auto", |b| {
        b.iter(|| black_box(run_experiment(&experiment, &EngineOptions::default()).expect("runs")))
    });
    g.bench_function("sweep_cached", |b| {
        let warm = EngineOptions::default();
        run_experiment(&experiment, &warm).expect("warm-up run");
        b.iter(|| black_box(run_experiment(&experiment, &warm).expect("runs")))
    });
    g.finish();
}

criterion_group!(benches, engine_scaling);
criterion_main!(benches);
