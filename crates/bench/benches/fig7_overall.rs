//! Figure 7 bench: overall power-reduction table plus baseline-vs-reuse
//! timing at the configuration where the whole suite is bufferable.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{EngineOptions, Sweep};
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let sweep =
        Sweep::run_with(common::BENCH_SCALE, &EngineOptions::default()).expect("sweep runs");
    println!(
        "\n== Figure 7 (scale {}) ==\n{}",
        common::BENCH_SCALE,
        sweep.fig7().expect("full sweep")
    );
    let program = common::bench_program("vpenta");
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("vpenta_iq256_reuse", |b| {
        b.iter(|| black_box(common::run(&program, 256, true)))
    });
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
