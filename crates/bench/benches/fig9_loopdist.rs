//! Figure 9 bench: loop-distribution table plus timing of the compiler
//! pass itself (dependence analysis + SCC partitioning + codegen).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{fig9_points, fig9_table, EngineOptions};
use riq_kernels::{by_name, compile, distribute_kernel};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let points = fig9_points(common::BENCH_SCALE, &EngineOptions::default()).expect("fig9 runs");
    println!("\n== Figure 9 (scale {}) ==\n{}", common::BENCH_SCALE, fig9_table(&points));
    let vpenta = by_name("vpenta").expect("table 2 kernel");
    let mut g = c.benchmark_group("fig9");
    g.sample_size(30);
    g.bench_function("distribute_vpenta", |b| {
        b.iter(|| black_box(distribute_kernel(black_box(&vpenta))))
    });
    g.bench_function("compile_distributed_vpenta", |b| {
        let opt = distribute_kernel(&vpenta);
        b.iter(|| black_box(compile(black_box(&opt)).expect("compiles")))
    });
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
