//! Buffering-strategy ablation bench (§2.2.1): single- vs multi-iteration
//! buffering, table plus head-to-head timing.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{run_experiment, EngineOptions, Experiment};
use riq_core::{BufferingStrategy, Processor, SimConfig};
use std::hint::black_box;

fn bench_strategy(c: &mut Criterion) {
    let table = run_experiment(
        &Experiment::StrategyAblation { scale: common::BENCH_SCALE },
        &EngineOptions::default(),
    )
    .expect("ablation runs");
    println!("\n== Strategy ablation (scale {}) ==\n{table}", common::BENCH_SCALE);
    let program = common::bench_program("tsf");
    let mut g = c.benchmark_group("strategy");
    g.sample_size(10);
    for (name, strategy) in [
        ("single_iteration", BufferingStrategy::SingleIteration),
        ("multi_iteration", BufferingStrategy::MultiIteration),
    ] {
        g.bench_function(name, |b| {
            let cfg = SimConfig::baseline().with_reuse(true).with_strategy(strategy);
            b.iter(|| black_box(Processor::new(cfg.clone()).run(&program).expect("runs")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategy);
criterion_main!(benches);
