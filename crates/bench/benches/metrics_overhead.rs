//! Zero-overhead bench for the metrics layer: the same simulation point
//! run (a) plain — disabled registry, the default every existing caller
//! gets — (b) profiled at the default sampling period, and (c) profiled
//! with timers on every cycle.
//!
//! The disabled path adds exactly one predictable branch per recording
//! site over the pre-metrics code, so `run_disabled` is the baseline the
//! zero-overhead claim is judged against: its time should be within run
//! noise of any pre-PR measurement of `sim_throughput`. The printed
//! ratios quantify what enabling profiling costs (expected: a few percent
//! at period 16, tens of percent at period 1 on short kernels).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_core::{Processor, ProfileConfig, SimConfig};
use riq_trace::NullSink;
use std::hint::black_box;

fn metrics_overhead(c: &mut Criterion) {
    let program = common::bench_program("eflux");
    let cfg = SimConfig::baseline().with_iq_size(64).with_reuse(true);
    let proc = Processor::new(cfg);

    // Sanity outside the timed region: all three paths simulate the same
    // machine — identical cycle counts and final state.
    let plain = proc.run(&program).expect("plain run");
    let profiled = proc
        .run_profiled(&program, &mut NullSink, None, ProfileConfig::default())
        .expect("profiled run");
    assert_eq!(plain.stats.cycles, profiled.stats.cycles, "profiling must not change timing");
    assert_eq!(plain.mem_digest, profiled.mem_digest);
    assert!(profiled.metrics.is_some());

    let mut g = c.benchmark_group("metrics");
    g.sample_size(10);
    g.bench_function("run_disabled", |b| b.iter(|| black_box(proc.run(&program).expect("runs"))));
    g.bench_function("run_profiled_p16", |b| {
        b.iter(|| {
            black_box(
                proc.run_profiled(&program, &mut NullSink, None, ProfileConfig::default())
                    .expect("runs"),
            )
        })
    });
    g.bench_function("run_profiled_p1", |b| {
        b.iter(|| {
            black_box(
                proc.run_profiled(
                    &program,
                    &mut NullSink,
                    None,
                    ProfileConfig { sample_period: 1 },
                )
                .expect("runs"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, metrics_overhead);
criterion_main!(benches);
