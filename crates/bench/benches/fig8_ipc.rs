//! Figure 8 bench: IPC-degradation table plus timing of the adversarial
//! case (btrix at IQ-128: the paper's low-utilization configuration).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use riq_bench::{EngineOptions, Sweep};
use std::hint::black_box;

fn fig8(c: &mut Criterion) {
    let sweep =
        Sweep::run_with(common::BENCH_SCALE, &EngineOptions::default()).expect("sweep runs");
    println!(
        "\n== Figure 8 (scale {}) ==\n{}",
        common::BENCH_SCALE,
        sweep.fig8().expect("full sweep")
    );
    let program = common::bench_program("btrix");
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("btrix_iq128_reuse", |b| {
        b.iter(|| black_box(common::run(&program, 128, true)))
    });
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
