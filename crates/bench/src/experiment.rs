//! The unified experiment API.
//!
//! Every figure and ablation of the paper's evaluation is a value of
//! [`Experiment`], and [`run_experiment`] is the single entry point that
//! enumerates its simulation points as [`JobSpec`](crate::JobSpec)s, hands
//! them to the parallel [engine](crate::run_jobs), and aggregates the
//! results into a [`FigTable`]. The `riq-repro` subcommands, the Criterion
//! benches, and EXPERIMENTS.md all go through this surface.
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_bench::{run_experiment, EngineOptions, Experiment};
//!
//! // Regenerate Figures 5–8 on every available CPU; the output is
//! // bit-identical to a serial run.
//! let opts = EngineOptions::default();
//! let stacked = run_experiment(&Experiment::Fig5_8 { scale: 1.0 }, &opts)?;
//! println!("{}", stacked.sub_table("fig5", "benchmark"));
//! // Reusing `opts` lets the cache dedup points shared with Figure 9.
//! let fig9 = run_experiment(&Experiment::Fig9 { scale: 1.0 }, &opts)?;
//! assert!(opts.cache.hits() > 0, "fig9's original points were already swept");
//! # Ok(())
//! # }
//! ```

use crate::engine::{run_jobs, EngineOptions, ExperimentError, JobSpec};
use crate::harness::{
    compiled_suite, fig9_points, fig9_table, FigTable, Sweep, IQ_SIZES, POLICY_IQ_SIZES,
};
use riq_core::{BufferingStrategy, IssuePolicyKind, SimConfig};
use riq_power::{ClassEnergyProfile, EnergyClass};
use std::sync::Arc;

/// One experiment of the reproduced evaluation. `scale` multiplies
/// benchmark outer trip counts (1.0 = the paper-scale runs behind
/// EXPERIMENTS.md; smaller values for tests and benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Experiment {
    /// The §3 sweep behind Figures 5–8: every Table 2 benchmark at every
    /// queue size on both pipelines. Renders as a stacked table with
    /// `fig5/`…`fig8/`-prefixed rows; use
    /// [`FigTable::sub_table`] to recover one figure.
    Fig5_8 {
        /// Outer-trip-count scale factor.
        scale: f64,
    },
    /// Figure 9: loop distribution at the 64-entry baseline.
    Fig9 {
        /// Outer-trip-count scale factor.
        scale: f64,
    },
    /// §3 NBLT ablation: buffering revoke rate with and without the
    /// 8-entry table.
    NbltAblation {
        /// Outer-trip-count scale factor.
        scale: f64,
    },
    /// §2.2.1 buffering-strategy ablation: single- vs multi-iteration
    /// buffering at each queue size.
    StrategyAblation {
        /// Outer-trip-count scale factor.
        scale: f64,
    },
    /// Loop-transformation ablation: gated rate under original,
    /// distributed, unrolled, and distributed-then-fused code.
    TransformAblation {
        /// Outer-trip-count scale factor.
        scale: f64,
    },
    /// Direction-predictor ablation (bimod/gshare/static).
    BpredAblation {
        /// Outer-trip-count scale factor.
        scale: f64,
    },
    /// Issue-policy × queue-size energy-delay scorecard (ROADMAP item 5):
    /// {baseline, reuse, load-delay, reuse+load-delay} at IQ
    /// {16, 32, 64, 128, 256}, scored in IPC, class-weighted energy, EDP,
    /// and ED²P. Rows are `metric/policy`-prefixed; use
    /// [`FigTable::sub_table`] to recover one metric.
    PolicyEdp {
        /// Outer-trip-count scale factor.
        scale: f64,
    },
}

impl Experiment {
    /// A short identifier (matching the `riq-repro` subcommand family).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Experiment::Fig5_8 { .. } => "fig5-8",
            Experiment::Fig9 { .. } => "fig9",
            Experiment::NbltAblation { .. } => "nblt",
            Experiment::StrategyAblation { .. } => "strategy",
            Experiment::TransformAblation { .. } => "transforms",
            Experiment::BpredAblation { .. } => "bpred",
            Experiment::PolicyEdp { .. } => "policy-edp",
        }
    }

    /// Every experiment at one scale, in EXPERIMENTS.md order.
    #[must_use]
    pub fn all(scale: f64) -> Vec<Experiment> {
        vec![
            Experiment::Fig5_8 { scale },
            Experiment::Fig9 { scale },
            Experiment::NbltAblation { scale },
            Experiment::StrategyAblation { scale },
            Experiment::BpredAblation { scale },
            Experiment::TransformAblation { scale },
            Experiment::PolicyEdp { scale },
        ]
    }
}

/// Runs one experiment through the parallel engine and aggregates its
/// table. Sharing `opts` (or a clone) across calls shares the result
/// cache, so points common to several experiments — e.g. the 64-entry
/// reuse points of Figures 5–8, Figure 9's "original" column, and the
/// transform ablation's "original" row — simulate exactly once.
///
/// # Errors
///
/// Propagates compile and simulation errors; see [`ExperimentError`].
pub fn run_experiment(
    experiment: &Experiment,
    opts: &EngineOptions,
) -> Result<FigTable, ExperimentError> {
    match *experiment {
        Experiment::Fig5_8 { scale } => {
            let sweep = Sweep::run_with(scale, opts)?;
            let mut t =
                FigTable::new("figure/row", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
            t.push_prefixed("fig5", &sweep.fig5()?);
            t.push_prefixed("fig6", &sweep.fig6());
            t.push_prefixed("fig7", &sweep.fig7()?);
            t.push_prefixed("fig8", &sweep.fig8()?);
            Ok(t)
        }
        Experiment::Fig9 { scale } => Ok(fig9_table(&fig9_points(scale, opts)?)),
        Experiment::NbltAblation { scale } => nblt(scale, opts),
        Experiment::StrategyAblation { scale } => strategy(scale, opts),
        Experiment::TransformAblation { scale } => transforms(scale, opts),
        Experiment::BpredAblation { scale } => bpred(scale, opts),
        Experiment::PolicyEdp { scale } => policy_edp(scale, opts),
    }
}

/// The §3 NBLT ablation: buffering revoke rate with and without the
/// 8-entry table, per benchmark at the baseline configuration.
fn nblt(scale: f64, opts: &EngineOptions) -> Result<FigTable, ExperimentError> {
    let suite = compiled_suite(scale)?;
    let jobs: Vec<JobSpec> = suite
        .iter()
        .flat_map(|(k, program)| {
            [0u32, 8].map(|entries| {
                JobSpec::new(
                    &k.name,
                    program,
                    SimConfig::baseline().with_reuse(true).with_nblt(entries),
                )
            })
        })
        .collect();
    let results = run_jobs(&jobs, opts)?;
    let mut t = FigTable::new(
        "benchmark",
        vec!["revoke rate (no NBLT)".into(), "revoke rate (NBLT 8)".into()],
    );
    for ((k, _), pair) in suite.iter().zip(results.chunks_exact(2)) {
        t.push_row(
            k.name.clone(),
            vec![pair[0].stats.reuse.revoke_rate(), pair[1].stats.reuse.revoke_rate()],
        );
    }
    t.push_average();
    Ok(t)
}

/// The §2.2.1 buffering-strategy ablation: gated rate under
/// single-iteration vs multi-iteration buffering at each queue size,
/// averaged over the suite.
fn strategy(scale: f64, opts: &EngineOptions) -> Result<FigTable, ExperimentError> {
    const STRATEGIES: [(&str, BufferingStrategy); 2] = [
        ("single-iteration", BufferingStrategy::SingleIteration),
        ("multi-iteration", BufferingStrategy::MultiIteration),
    ];
    let suite = compiled_suite(scale)?;
    let mut jobs = Vec::new();
    for (_, s) in STRATEGIES {
        for &iq in &IQ_SIZES {
            for (k, program) in &suite {
                jobs.push(JobSpec::new(
                    &k.name,
                    program,
                    SimConfig::baseline().with_iq_size(iq).with_reuse(true).with_strategy(s),
                ));
            }
        }
    }
    let results = run_jobs(&jobs, opts)?;
    let mut t = FigTable::new("strategy", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
    for ((name, _), per_strategy) in STRATEGIES.iter().zip(results.chunks_exact(suite.len() * 4)) {
        let row: Vec<f64> = per_strategy
            .chunks_exact(suite.len())
            .map(|per_iq| {
                per_iq.iter().map(|r| r.stats.gated_rate()).sum::<f64>() / suite.len() as f64
            })
            .collect();
        t.push_row(*name, row);
    }
    Ok(t)
}

/// Loop-transformation ablation: average gated rate of the reuse pipeline
/// per queue size under four code versions — original, distributed
/// (Section 4), unrolled ×4, and distributed-then-fused (the inverse
/// transform, re-creating fat bodies). Shows how each transform "gears the
/// code towards a given issue queue size" (paper conclusions).
fn transforms(scale: f64, opts: &EngineOptions) -> Result<FigTable, ExperimentError> {
    use riq_kernels::{
        compile, distribute_kernel, fuse_kernel, suite_scaled, unroll_kernel, Kernel,
    };
    let base = suite_scaled(scale);
    let versions: Vec<(&str, Vec<Kernel>)> = vec![
        ("original", base.clone()),
        ("distributed", base.iter().map(distribute_kernel).collect()),
        ("unrolled x4", base.iter().map(|k| unroll_kernel(k, 4)).collect()),
        ("distributed+fused", base.iter().map(|k| fuse_kernel(&distribute_kernel(k))).collect()),
    ];
    let mut jobs = Vec::new();
    for (name, kernels) in &versions {
        // One compile per (version, kernel); the Arc is shared by all
        // four queue sizes.
        let programs =
            kernels.iter().map(|k| compile(k).map(Arc::new)).collect::<Result<Vec<_>, _>>()?;
        for &iq in &IQ_SIZES {
            for (k, program) in kernels.iter().zip(&programs) {
                jobs.push(JobSpec::new(
                    format!("{name}/{}", k.name),
                    program,
                    SimConfig::baseline().with_iq_size(iq).with_reuse(true),
                ));
            }
        }
    }
    let results = run_jobs(&jobs, opts)?;
    let n = base.len();
    let mut t =
        FigTable::new("code version", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
    for ((name, _), per_version) in versions.iter().zip(results.chunks_exact(n * 4)) {
        let row: Vec<f64> = per_version
            .chunks_exact(n)
            .map(|per_iq| per_iq.iter().map(|r| r.stats.gated_rate()).sum::<f64>() / n as f64)
            .collect();
        t.push_row(*name, row);
    }
    Ok(t)
}

/// Direction-predictor ablation (the gshare extension DESIGN.md calls
/// out): per-predictor average mispredict-recovery rate on the baseline
/// pipeline and gated rate on the reuse pipeline, at the Table 1
/// configuration.
fn bpred(scale: f64, opts: &EngineOptions) -> Result<FigTable, ExperimentError> {
    use riq_bpred::DirPredictorKind;
    let dirs: [(&str, DirPredictorKind); 4] = [
        ("bimod-2048", DirPredictorKind::Bimod { entries: 2048 }),
        ("gshare-2048", DirPredictorKind::Gshare { entries: 2048, history_bits: 10 }),
        ("always-taken", DirPredictorKind::Taken),
        ("always-not-taken", DirPredictorKind::NotTaken),
    ];
    let suite = compiled_suite(scale)?;
    let mut jobs = Vec::new();
    for (_, dir) in dirs {
        let mut cfg = SimConfig::baseline();
        cfg.bpred.dir = dir;
        for (k, program) in &suite {
            jobs.push(JobSpec::new(&k.name, program, cfg.clone()));
            jobs.push(JobSpec::new(&k.name, program, cfg.clone().with_reuse(true)));
        }
    }
    let results = run_jobs(&jobs, opts)?;
    let mut t = FigTable::new(
        "predictor",
        vec!["mispredict rate (base)".into(), "gated rate (reuse)".into()],
    );
    let n = suite.len() as f64;
    for ((name, _), per_dir) in dirs.iter().zip(results.chunks_exact(suite.len() * 2)) {
        let mispred: f64 = per_dir.chunks_exact(2).map(|p| p[0].stats.mispredict_rate()).sum();
        let gated: f64 = per_dir.chunks_exact(2).map(|p| p[1].stats.gated_rate()).sum();
        t.push_row(*name, vec![mispred / n, gated / n]);
    }
    Ok(t)
}

/// The issue-policy × queue-size scorecard. Each policy row sweeps
/// [`POLICY_IQ_SIZES`]; per cell the suite's cycles, committed
/// instructions, and energies are summed before forming the metric, so
/// EDP/ED²P reflect the whole-suite run rather than an average of
/// per-kernel products.
fn policy_edp(scale: f64, opts: &EngineOptions) -> Result<FigTable, ExperimentError> {
    const POLICIES: [(&str, bool, IssuePolicyKind); 4] = [
        ("baseline", false, IssuePolicyKind::Oldest),
        ("reuse", true, IssuePolicyKind::Oldest),
        ("load-delay", false, IssuePolicyKind::LoadDelay),
        ("reuse+load-delay", true, IssuePolicyKind::LoadDelay),
    ];
    let suite = compiled_suite(scale)?;
    let mut jobs = Vec::new();
    for (_, reuse, kind) in POLICIES {
        for &iq in &POLICY_IQ_SIZES {
            for (k, program) in &suite {
                jobs.push(JobSpec::new(
                    &k.name,
                    program,
                    SimConfig::baseline().with_iq_size(iq).with_reuse(reuse).with_policy(kind),
                ));
            }
        }
    }
    let results = run_jobs(&jobs, opts)?;
    let profile = ClassEnergyProfile::default();
    // Suite-summed aggregates per (policy, queue-size) cell.
    struct Cell {
        cycles: f64,
        committed: f64,
        energy: f64,
        class: [f64; 5],
    }
    let cells: Vec<Vec<Cell>> = results
        .chunks_exact(POLICY_IQ_SIZES.len() * suite.len())
        .map(|per_policy| {
            per_policy
                .chunks_exact(suite.len())
                .map(|per_iq| {
                    let mut cell =
                        Cell { cycles: 0.0, committed: 0.0, energy: 0.0, class: [0.0; 5] };
                    for r in per_iq {
                        cell.cycles += r.stats.cycles as f64;
                        cell.committed += r.stats.committed as f64;
                        cell.energy += r.power.weighted_total_energy(&profile);
                        for (slot, &c) in EnergyClass::ALL.iter().enumerate() {
                            cell.class[slot] += profile.weight(c) * r.power.class_energy(c);
                        }
                    }
                    cell
                })
                .collect()
        })
        .collect();
    let mut t = FigTable::new(
        "metric/policy",
        POLICY_IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect(),
    )
    .with_raw_values();
    type Metric = fn(&Cell) -> f64;
    let metrics: [(&str, Metric); 4] = [
        ("ipc", |c| if c.cycles == 0.0 { 0.0 } else { c.committed / c.cycles }),
        ("energy", |c| c.energy),
        ("edp", |c| c.energy * c.cycles),
        ("ed2p", |c| c.energy * c.cycles * c.cycles),
    ];
    for (metric, f) in metrics {
        for ((name, _, _), per_policy) in POLICIES.iter().zip(&cells) {
            t.push_row(format!("{metric}/{name}"), per_policy.iter().map(f).collect());
        }
    }
    // Class-share rows: the fraction of weighted energy each instruction
    // class carries (the remainder to 1.0 is the shared structures).
    for (slot, class) in EnergyClass::ALL.iter().enumerate() {
        for ((name, _, _), per_policy) in POLICIES.iter().zip(&cells) {
            t.push_row(
                format!("share-{class}/{name}"),
                per_policy
                    .iter()
                    .map(|c| if c.energy == 0.0 { 0.0 } else { c.class[slot] / c.energy })
                    .collect(),
            );
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_experiments() {
        let all = Experiment::all(0.1);
        assert_eq!(all.len(), 7);
        let labels: Vec<&str> = all.iter().map(Experiment::label).collect();
        assert_eq!(
            labels,
            ["fig5-8", "fig9", "nblt", "strategy", "bpred", "transforms", "policy-edp"]
        );
    }

    #[test]
    fn policy_edp_rows_cover_every_metric_and_policy() {
        let opts = EngineOptions::default();
        let t = run_experiment(&Experiment::PolicyEdp { scale: 0.02 }, &opts)
            .expect("policy-edp runs at tiny scale");
        let csv = t.to_csv();
        let header = csv.lines().next().expect("header line");
        assert_eq!(header, "metric/policy,IQ 16,IQ 32,IQ 64,IQ 128,IQ 256");
        // 4 metric groups + 5 class-share groups, each × 4 policies.
        assert_eq!(csv.lines().count(), 1 + 9 * 4);
        for metric in ["ipc", "energy", "edp", "ed2p", "share-load"] {
            for policy in ["baseline", "reuse", "load-delay", "reuse+load-delay"] {
                let row = format!("{metric}/{policy},");
                assert!(csv.lines().any(|l| l.starts_with(&row)), "missing row {row}");
            }
        }
        let ipc = t.sub_table("ipc", "policy");
        assert_eq!(ipc.to_csv().lines().count(), 5, "4 policies under the ipc prefix");
    }
}
