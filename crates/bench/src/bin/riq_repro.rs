//! `riq-repro` — regenerates every table and figure of the paper, and runs
//! single programs with observability attached.
//!
//! ```text
//! riq-repro <experiment> [--scale F] [--jobs N] [--csv]
//!           [--skip N] [--warmup M] [--no-ckpt-store]
//! riq-repro run <kernel|file.s> [--iq N] [--reuse] [--scale F]
//!           [--json PATH] [--trace PATH] [--epoch N]
//!           [--skip N] [--warmup M] [--sample K] [--ckpt PATH]
//!           [--profile] [--sample-period P]
//! riq-repro bench --date LABEL [--quick] [--scale F] [--jobs N]
//!           [--out DIR] [--sim-only] [--store DIR]
//! riq-repro bench --check PATH
//! riq-repro serve [--listen ADDR] [--store DIR] [--workers N]
//!           [--store-max-bytes N] [--lease-ttl-ms N] [--trace PATH]
//! riq-repro worker --connect ADDR [--id NAME] [--exit-when-idle]
//!           [--max-jobs N]
//! riq-repro submit <experiment> --connect ADDR [--scale F] [--skip N]
//!           [--warmup M] [--priority P] [--wait]
//! riq-repro fetch --connect ADDR (--sweep ID [--report] [--wait] | --statsz)
//! riq-repro ckpt create <kernel|file.s> --skip N [--warmup M] [--scale F]
//!           [--out PATH]
//! riq-repro ckpt ls <PATH...>
//! riq-repro ckpt verify <PATH> [--program <kernel|file.s>] [--scale F]
//! riq-repro fuzz --seed S --iters N [--minimize] [--corpus DIR]
//! riq-repro analyze <kernel|file.s> [--iq N] [--scale F] [--dynamic]
//!           [--json PATH]
//! riq-repro attribute <kernel|file.s> [--iq N] [--scale F] [--calibrated]
//!           [--json PATH]
//! riq-repro attribute --corpus [--seeds N] [--iq N] [--jobs N]
//!           [--json PATH]
//!
//! experiments:
//!   table1    baseline processor configuration (paper Table 1)
//!   table2    benchmark list (paper Table 2)
//!   fig5      % of cycles with the pipeline front-end gated
//!   fig6      per-component power reduction + overhead
//!   fig7      overall per-cycle power reduction per benchmark
//!   fig8      IPC degradation per benchmark
//!   fig9      loop-distribution impact at the 64-entry baseline
//!   nblt      §3 ablation: buffering revoke rate with/without the NBLT
//!   strategy  §2.2.1 ablation: single- vs multi-iteration buffering
//!   bpred     direction-predictor ablation (bimod/gshare/static)
//!   transforms loop-transformation ablation (distribute/unroll/fuse)
//!   all       everything above, in order
//!
//! --scale F scales benchmark outer trip counts (default 1.0). Figures in
//! EXPERIMENTS.md are produced with the default.
//!
//! --jobs N runs the experiment's simulation points on N worker threads
//! (default: one per available CPU; 1 = serial). The printed tables are
//! bit-identical whatever N is — results are aggregated by job index, and
//! a shared cache deduplicates points that several figures have in common
//! (run `all` to see the cross-figure hits). Wall-clock time and cache
//! statistics go to stderr so stdout stays diffable.
//!
//! --csv prints the raw-fraction CSV of the experiment's table instead of
//! the formatted percentage view (not valid for table1/table2/all).
//!
//! `run` simulates one program — a Table 2 kernel by name, or a `.s`
//! assembly file — and prints a summary. `--json PATH` writes the full
//! machine-readable run report including measured wall-clock seconds
//! (`-` for stdout), `--trace PATH` streams every trace event as JSONL
//! (reuse-FSM transitions, gating windows, per-cycle pipeline samples,
//! cache misses, mispredictions), and `--epoch N` adds a statistics
//! snapshot every N cycles (to the report and, when tracing, the trace).
//!
//! `--skip N` fast-forwards N instructions on the functional emulator and
//! resumes the detailed simulator from the checkpoint; `--warmup M`
//! replays the last M fast-forwarded instructions into the caches, TLBs,
//! and branch predictor first. `--sample K` stops detailed simulation
//! after K committed instructions (SMARTS-style sampling). `--ckpt PATH`
//! reuses the snapshot file at PATH if it exists (it must match the
//! program) and creates it otherwise. The run report records checkpoint
//! provenance under `run.checkpoint`.
//!
//! `--profile` enables the core's sampled stage timers and visit
//! counters (period `--sample-period P`, default 16 cycles, rounded up
//! to a power of two): the run report gains a `metrics` block and the
//! perf block gains per-stage host-time shares. Every simulating command
//! prints a `speed:` line on stderr (simulated clock rate, M inst/s) —
//! built from the same wall-clock measurement as the JSON report, so the
//! two can never disagree.
//!
//! `bench` runs the pinned performance workload — all eight Table 2
//! kernels × {baseline, reuse} × IQ {16, 64, 256} plus one Figure 5–8
//! sweep — once timed and once profiled, and appends a versioned record
//! (sim KHz, MIPS, wall clock, per-stage time shares, peak RSS, and the
//! deterministic simulation-domain counter totals) to
//! `BENCH_<date>.json`. `--quick` uses the Criterion bench scale (0.05),
//! `--sim-only` prints just the deterministic block to stdout for CI
//! fixture diffs, and `--check PATH` schema-validates an existing file.
//!
//! The experiment commands accept `--skip N [--warmup M]` to fast-forward
//! every simulation point; a shared checkpoint store amortizes one
//! fast-forward per program across all configurations (disable with
//! `--no-ckpt-store` — results are identical, only slower).
//!
//! `ckpt create` snapshots a program after N instructions and writes the
//! versioned binary checkpoint file; `ckpt ls` prints the header of each
//! given file; `ckpt verify` decodes a file (checking its integrity
//! digest) and, with `--program`, replays the fast-forward and compares
//! fingerprints.
//!
//! `fuzz` generates `--iters` structured random programs from `--seed`
//! (deterministically — the same seed yields the byte-identical program
//! stream and summary line) and differentially checks each one: the
//! functional emulator is the architectural oracle, and a matrix of
//! simulator configurations (baseline, reuse at several IQ sizes,
//! checkpoint-resume at several skip fractions) must agree with it on
//! registers, memory digest, and committed count, plus structural
//! trace/power invariants. With `--minimize`, failing programs are shrunk
//! to a 1-minimal repro first; with `--corpus DIR`, each failure is
//! written there as a standalone `.s` plus a `.json` failure report. The
//! exit status is non-zero when any program fails.
//!
//! `serve` starts the simulation-as-a-service daemon: a durable
//! content-addressed result store (`DIR/results.wal`, default
//! `riq-store/`), a priority job queue with cross-client dedup and
//! lease-based retry, and the HTTP API (`POST /sweeps`, `GET
//! /sweeps/{id}[/csv|/report]`, `GET /jobs/{id}`, `GET /healthz`,
//! `GET /statsz`, plus the worker protocol `POST /lease|/complete|/fail`).
//! The bound address is printed on stdout (bind port 0 for an ephemeral
//! one). `--workers N` spawns N worker *processes* sharing the queue;
//! more can join from other terminals with `worker --connect`. A killed
//! worker's leases expire and requeue; a killed daemon recovers its
//! store from the write-ahead journal on restart. `--store-max-bytes`
//! bounds the store with LRU eviction (in-flight sweeps' keys are
//! pinned and never evicted). `submit` registers an experiment sweep and
//! prints its id; `fetch` retrieves the finished CSV/report —
//! byte-identical to the in-process experiment output whatever the
//! worker count, kill schedule, or store temperature. `bench --store
//! DIR` persists the timed pass's results into a store and reports its
//! size in the host block.
//!
//! `analyze` runs the static analysis pipeline (riq-analyze) over one
//! program: CFG recovery, natural loops, reuse eligibility at every queue
//! capacity, and the program linter. `--iq N` selects the capacity the
//! headline verdicts are computed at (default 64). With `--dynamic`, the
//! program is additionally simulated once with reuse enabled at that IQ
//! size and the static verdicts are scored against the reuse FSM's actual
//! promotions (precision/recall, every disagreement classified). `--json
//! PATH` writes the versioned, byte-deterministic analysis report (`-`
//! for stdout). The exit status is non-zero when the linter finds errors.
//!
//! `attribute` joins the static predictor with one measured run pair: the
//! program is simulated twice (baseline and reuse at `--iq`), the
//! reuse-FSM trace events are replayed onto the static loop table, and
//! the measured per-class energy delta is attributed to loops by their
//! share of gated cycles — which loops pay for themselves, which revoke,
//! and how the predictor's ranking compares to the measured one.
//! `--calibrated` weighs classes with the non-uniform
//! `ClassEnergyProfile::calibrated()` instead of all-ones. `--json PATH`
//! writes the versioned, byte-deterministic attribution report (`-` for
//! stdout). With `--corpus`, `--seeds N` (default 200) fuzz-generated
//! programs run baseline+reuse through the deterministic bench engine
//! and are characterized per structural family (measured savings and
//! gating vs the static predictor score); the table and summary line are
//! byte-identical for any `--jobs` count.
//! ```

use riq_bench::{
    append_record, experiment_from_label, report_json, run_bench_with_store, run_experiment,
    start_daemon, table1, table2, validate_bench_doc, CheckpointProvenance, CheckpointStore,
    DaemonOptions, EngineOptions, Experiment, FigTable, RunSpec, QUICK_SCALE,
};
use riq_ckpt::Checkpoint;
use riq_core::{IssuePolicyKind, Processor, ProfileConfig, SimConfig};
use riq_metrics::{HostCounter, HubMode, PerfBlock, SharedRegistry, SimCounter};
use riq_trace::{parse, JsonlSink, NullSink, TraceSink};
use std::fs::File;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: riq-repro <table1|table2|fig5|fig6|fig7|fig8|fig9|nblt|strategy|bpred|transforms|policy-edp|all> [--scale F] [--jobs N] [--csv] [--skip N] [--warmup M] [--no-ckpt-store]
                riq-repro sweep --experiment <fig5-8|fig9|nblt|strategy|bpred|transforms|policy-edp> [--scale F] [--jobs N] [--csv] [--skip N] [--warmup M] [--no-ckpt-store]
                riq-repro run <kernel|file.s> [--iq N] [--reuse] [--policy oldest|load-delay] [--scale F] [--json PATH] [--trace PATH] [--epoch N] [--skip N] [--warmup M] [--sample K] [--ckpt PATH] [--profile] [--sample-period P]
                riq-repro bench --date LABEL [--quick] [--scale F] [--jobs N] [--out DIR] [--sim-only] [--store DIR]
                riq-repro bench --check PATH
                riq-repro serve [--listen ADDR] [--store DIR] [--workers N] [--store-max-bytes N] [--lease-ttl-ms N] [--trace PATH]
                riq-repro worker --connect ADDR [--id NAME] [--exit-when-idle] [--max-jobs N]
                riq-repro submit <experiment> --connect ADDR [--scale F] [--skip N] [--warmup M] [--priority P] [--wait]
                riq-repro fetch --connect ADDR (--sweep ID [--report] [--wait] | --statsz)
                riq-repro ckpt create <kernel|file.s> --skip N [--warmup M] [--scale F] [--out PATH]
                riq-repro ckpt ls <PATH...>
                riq-repro ckpt verify <PATH> [--program <kernel|file.s>] [--scale F]
                riq-repro fuzz --seed S --iters N [--minimize] [--corpus DIR]
                riq-repro analyze <kernel|file.s> [--iq N] [--scale F] [--dynamic] [--json PATH]
                riq-repro attribute <kernel|file.s> [--iq N] [--scale F] [--calibrated] [--json PATH]
                riq-repro attribute --corpus [--seeds N] [--iq N] [--jobs N] [--json PATH]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    if cmd == "run" {
        return match run_program(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "bench" {
        return match run_bench_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "ckpt" {
        return match run_ckpt(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "analyze" {
        return match run_analyze(&args[1..]) {
            Ok(clean) => {
                if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "attribute" {
        return match run_attribute(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "serve" {
        return match run_serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "worker" {
        return match run_worker_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "submit" {
        return match run_submit(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "fetch" {
        return match run_fetch(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "fuzz" {
        return match run_fuzz_cmd(&args[1..]) {
            Ok(clean) => {
                if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // `sweep --experiment LABEL` is the explicit spelling of the bare
    // experiment subcommands (it accepts exactly the engine-backed sweep
    // labels, matching `submit`); the remaining flags are shared.
    let mut cmd = cmd.clone();
    let mut flag_args: Vec<String> = args[1..].to_vec();
    if cmd == "sweep" {
        let Some(pos) = flag_args.iter().position(|a| a == "--experiment") else {
            return usage();
        };
        if pos + 1 >= flag_args.len() {
            return usage();
        }
        cmd = flag_args.remove(pos + 1);
        flag_args.remove(pos);
        if figure_command(&cmd, 1.0).is_none() {
            eprintln!("riq-repro: unknown experiment {cmd:?}");
            return usage();
        }
    }
    let mut scale = 1.0f64;
    let mut jobs = 0usize; // 0 = one worker per available CPU
    let mut csv = false;
    let mut skip = 0u64;
    let mut warmup = 0u64;
    let mut no_store = false;
    let mut it = flag_args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => scale = v,
                _ => return usage(),
            },
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) => jobs = v,
                _ => return usage(),
            },
            "--csv" => csv = true,
            "--skip" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => skip = v,
                _ => return usage(),
            },
            "--warmup" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => warmup = v,
                _ => return usage(),
            },
            "--no-ckpt-store" => no_store = true,
            _ => return usage(),
        }
    }
    match run(&cmd, scale, jobs, csv, skip, warmup, no_store) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("riq-repro: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Options of the `run` subcommand.
struct RunArgs {
    program: String,
    iq: u32,
    reuse: bool,
    policy: IssuePolicyKind,
    scale: f64,
    json: Option<String>,
    trace: Option<String>,
    epoch: Option<u64>,
    skip: u64,
    warmup: u64,
    sample: Option<u64>,
    ckpt: Option<String>,
    profile: bool,
    sample_period: Option<u64>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut it = args.iter();
    let program = it.next().ok_or("run: missing program (kernel name or .s file)")?.clone();
    let mut out = RunArgs {
        program,
        iq: 64,
        reuse: false,
        policy: IssuePolicyKind::Oldest,
        scale: 1.0,
        json: None,
        trace: None,
        epoch: None,
        skip: 0,
        warmup: 0,
        sample: None,
        ckpt: None,
        profile: false,
        sample_period: None,
    };
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("run: {flag} needs a value"));
        match a.as_str() {
            "--iq" => {
                out.iq = value("--iq")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("run: --iq needs a positive integer")?;
            }
            "--reuse" => out.reuse = true,
            "--policy" => {
                out.policy = match value("--policy")?.as_str() {
                    "oldest" => IssuePolicyKind::Oldest,
                    "load-delay" => IssuePolicyKind::LoadDelay,
                    other => {
                        return Err(format!(
                            "run: --policy {other:?} is not a policy (oldest, load-delay)"
                        ));
                    }
                };
            }
            "--scale" => {
                out.scale = value("--scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or("run: --scale needs a positive number")?;
            }
            "--json" => out.json = Some(value("--json")?),
            "--trace" => out.trace = Some(value("--trace")?),
            "--epoch" => {
                out.epoch = Some(
                    value("--epoch")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("run: --epoch needs a positive cycle count")?,
                );
            }
            "--skip" => {
                out.skip = value("--skip")?
                    .parse()
                    .ok()
                    .ok_or("run: --skip needs an instruction count")?;
            }
            "--warmup" => {
                out.warmup = value("--warmup")?
                    .parse()
                    .ok()
                    .ok_or("run: --warmup needs an instruction count")?;
            }
            "--sample" => {
                out.sample = Some(
                    value("--sample")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("run: --sample needs a positive commit count")?,
                );
            }
            "--ckpt" => out.ckpt = Some(value("--ckpt")?),
            "--profile" => out.profile = true,
            // A sampling period implies profiling — there is nothing else
            // it could configure.
            "--sample-period" => {
                out.profile = true;
                out.sample_period = Some(
                    value("--sample-period")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("run: --sample-period needs a positive cycle count")?,
                );
            }
            other => return Err(format!("run: unknown option {other:?}")),
        }
    }
    Ok(out)
}

fn load_program(name: &str, scale: f64) -> Result<riq_asm::Program, Box<dyn std::error::Error>> {
    if name.ends_with(".s") {
        let source =
            std::fs::read_to_string(name).map_err(|e| format!("cannot read {name}: {e}"))?;
        Ok(riq_asm::assemble(&source)?)
    } else {
        let kernel = riq_kernels::suite_scaled(scale)
            .into_iter()
            .find(|k| k.name == name)
            .ok_or_else(|| format!("unknown kernel {name:?} (and not a .s file)"))?;
        Ok(riq_kernels::compile(&kernel)?)
    }
}

/// Obtains the checkpoint for a `run` invocation: loaded from `--ckpt
/// PATH` when the file exists (validated against the program), freshly
/// fast-forwarded otherwise (and saved to PATH when one was given).
/// Returns the checkpoint and the fast-forward wall-clock seconds (zero
/// on a load).
fn obtain_checkpoint(
    opts: &RunArgs,
    program: &riq_asm::Program,
) -> Result<(Checkpoint, f64), Box<dyn std::error::Error>> {
    if let Some(path) = &opts.ckpt {
        if std::path::Path::new(path).exists() {
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let ckpt = Checkpoint::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
            if ckpt.program_fingerprint != program.fingerprint() {
                return Err(
                    format!("{path}: checkpoint was captured from a different program").into()
                );
            }
            eprintln!(
                "checkpoint: loaded {path} (skip {}, {} retired, warm {})",
                ckpt.skip,
                ckpt.retired,
                ckpt.warm.len()
            );
            return Ok((ckpt, 0.0));
        }
    }
    let started = Instant::now();
    let ckpt = Checkpoint::fast_forward(program, opts.skip, opts.warmup)?;
    let ff_wall = started.elapsed().as_secs_f64();
    if let Some(path) = &opts.ckpt {
        std::fs::write(path, ckpt.encode()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("checkpoint: created {path} ({} retired, {ff_wall:.3}s)", ckpt.retired);
    }
    Ok((ckpt, ff_wall))
}

fn run_program(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_run_args(args)?;
    let program = load_program(&opts.program, opts.scale)?;
    let cfg =
        SimConfig::baseline().with_iq_size(opts.iq).with_reuse(opts.reuse).with_policy(opts.policy);
    let processor = Processor::new(cfg);

    // Any of --skip/--sample/--ckpt routes the run through a checkpoint
    // (a --sample without --skip samples from instruction zero).
    let checkpointed = opts.skip > 0 || opts.sample.is_some() || opts.ckpt.is_some();
    let checkpoint = if checkpointed {
        let (ckpt, ff_wall) = obtain_checkpoint(&opts, &program)?;
        Some((ckpt, ff_wall))
    } else {
        None
    };

    let mut jsonl = match &opts.trace {
        Some(path) => Some(JsonlSink::new(
            File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        None => None,
    };
    let mut null = NullSink;
    let sink: &mut dyn TraceSink = match jsonl.as_mut() {
        Some(s) => s,
        None => &mut null,
    };
    let profile_cfg = opts.profile.then(|| match opts.sample_period {
        Some(p) => ProfileConfig { sample_period: p },
        None => ProfileConfig::default(),
    });
    let started = Instant::now();
    let result = match (&checkpoint, profile_cfg) {
        (Some((ckpt, _)), Some(prof)) => processor.resume_profiled(
            &program,
            ckpt,
            opts.warmup,
            opts.sample,
            sink,
            opts.epoch,
            prof,
        )?,
        (Some((ckpt, _)), None) => {
            processor.resume_observed(&program, ckpt, opts.warmup, opts.sample, sink, opts.epoch)?
        }
        (None, Some(prof)) => processor.run_profiled(&program, sink, opts.epoch, prof)?,
        (None, None) => processor.run_observed(&program, sink, opts.epoch)?,
    };
    let wall = started.elapsed().as_secs_f64();
    if let Some(s) = jsonl {
        let events = s.written();
        s.into_inner()?;
        eprintln!("trace: {events} events -> {}", opts.trace.as_deref().unwrap_or_default());
    }

    let spec = RunSpec {
        program: opts.program.clone(),
        iq: opts.iq,
        reuse: opts.reuse,
        policy: opts.policy,
        scale: opts.scale,
        epoch: opts.epoch,
        checkpoint: checkpoint.as_ref().map(|(ckpt, _)| CheckpointProvenance {
            fingerprint: ckpt.fingerprint(),
            skip: ckpt.skip,
            warmup: opts.warmup,
            sample: opts.sample,
        }),
    };
    // One perf block from one clock: the stderr speed line and the JSON
    // report's perf/wall_clock_seconds fields can never disagree.
    let mut perf = PerfBlock::new(wall, result.stats.committed, result.stats.cycles);
    if let Some((_, ff_wall)) = &checkpoint {
        perf = perf.with_fast_forward(*ff_wall);
    }
    if let Some(m) = &result.metrics {
        perf = perf.with_stage_shares(m.stage_shares_json());
        eprintln!("{}", m.render_sim());
    }
    eprintln!("{}", perf.speed_line());
    if let Some(path) = &opts.json {
        let doc = report_json(&spec, &result, Some(&perf)).to_pretty();
        if path == "-" {
            print!("{doc}");
        } else {
            File::create(path)
                .and_then(|mut f| f.write_all(doc.as_bytes()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report -> {path}");
        }
    }

    // The summary normally goes to stdout, but must not corrupt the JSON
    // stream when the report itself is directed there via `--json -`.
    let mut summary: Box<dyn std::io::Write> = if opts.json.as_deref() == Some("-") {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    let s = &result.stats;
    writeln!(
        summary,
        "{}: {} cycles, {} committed (IPC {:.3}), gated {:.1}% ({} cycles), \
         reused {} insts, {} epochs sampled, {wall:.3}s wall clock",
        opts.program,
        s.cycles,
        s.committed,
        s.ipc(),
        s.gated_rate() * 100.0,
        s.gated_cycles,
        s.reuse.reused_insts,
        result.epochs.len(),
    )?;
    if let Some((ckpt, ff_wall)) = &checkpoint {
        writeln!(
            summary,
            "  resumed at {} retired (skip {}, warmup {}), {} retired in total, \
             fast-forward {ff_wall:.3}s",
            ckpt.retired,
            ckpt.skip,
            opts.warmup.min(ckpt.warm.len() as u64),
            ckpt.retired + s.committed,
        )?;
    }
    Ok(())
}

/// The `bench` subcommand: run the pinned workload matrix and append a
/// record to the `BENCH_<date>.json` trajectory, or validate one with
/// `--check`.
fn run_bench_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut date: Option<String> = None;
    let mut quick = false;
    let mut scale: Option<f64> = None;
    let mut jobs = 0usize;
    let mut out_dir = String::from(".");
    let mut sim_only = false;
    let mut check: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("bench: {flag} needs a value"));
        match a.as_str() {
            "--date" => date = Some(value("--date")?),
            "--quick" => quick = true,
            "--scale" => {
                scale = Some(
                    value("--scale")?
                        .parse()
                        .ok()
                        .filter(|&f: &f64| f > 0.0)
                        .ok_or("bench: --scale needs a positive number")?,
                );
            }
            "--jobs" => {
                jobs = value("--jobs")?.parse().ok().ok_or("bench: --jobs needs a count")?;
            }
            "--out" => out_dir = value("--out")?,
            "--sim-only" => sim_only = true,
            "--check" => check = Some(value("--check")?),
            "--store" => store_dir = Some(value("--store")?),
            other => return Err(format!("bench: unknown option {other:?}").into()),
        }
    }

    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let n = validate_bench_doc(&doc).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: ok ({n} records)");
        return Ok(());
    }

    let scale = scale.unwrap_or(if quick { QUICK_SCALE } else { 1.0 });
    let store_path = store_dir.map(|d| std::path::Path::new(&d).join("results.wal"));
    let bench = run_bench_with_store(
        scale,
        jobs,
        date.as_deref().unwrap_or(""),
        quick,
        store_path.as_deref(),
    )?;
    eprintln!("{}", bench.perf.speed_line());
    if sim_only {
        // The deterministic simulation-domain block alone, for fixture
        // diffs — nothing host-dependent can appear on stdout.
        println!("{}", bench.sim.to_pretty());
        return Ok(());
    }
    let date = date.ok_or("bench: --date LABEL is required when writing a record")?;
    let path = std::path::Path::new(&out_dir).join(format!("BENCH_{date}.json"));
    let count = append_record(&path, bench.record)?;
    eprintln!(
        "bench: {} points at scale {scale}, record {count} -> {}",
        bench.points,
        path.display()
    );
    Ok(())
}

/// The `ckpt` subcommand: `create`, `ls`, `verify`.
fn run_ckpt(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(verb) = args.first() else {
        return Err("ckpt: missing subcommand (create|ls|verify)".into());
    };
    match verb.as_str() {
        "create" => ckpt_create(&args[1..]),
        "ls" => ckpt_ls(&args[1..]),
        "verify" => ckpt_verify(&args[1..]),
        other => Err(format!("ckpt: unknown subcommand {other:?}").into()),
    }
}

fn ckpt_create(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut it = args.iter();
    let program_name =
        it.next().ok_or("ckpt create: missing program (kernel name or .s file)")?.clone();
    let mut skip: Option<u64> = None;
    let mut warmup = 0u64;
    let mut scale = 1.0f64;
    let mut out_path: Option<String> = None;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("ckpt create: {flag} needs a value"))
        };
        match a.as_str() {
            "--skip" => {
                skip = Some(
                    value("--skip")?
                        .parse()
                        .ok()
                        .ok_or("ckpt create: --skip needs an instruction count")?,
                );
            }
            "--warmup" => {
                warmup = value("--warmup")?
                    .parse()
                    .ok()
                    .ok_or("ckpt create: --warmup needs an instruction count")?;
            }
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or("ckpt create: --scale needs a positive number")?;
            }
            "--out" => out_path = Some(value("--out")?),
            other => return Err(format!("ckpt create: unknown option {other:?}").into()),
        }
    }
    let skip = skip.ok_or("ckpt create: --skip is required")?;
    let program = load_program(&program_name, scale)?;
    let started = Instant::now();
    let ckpt = Checkpoint::fast_forward(&program, skip, warmup)?;
    let ff_wall = started.elapsed().as_secs_f64();
    let path = out_path.unwrap_or_else(|| format!("{program_name}.ckpt"));
    let bytes = ckpt.encode();
    std::fs::write(&path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "{path}: {} bytes, skip {}, {} retired, warm {}, fingerprint {:#018x} ({ff_wall:.3}s)",
        bytes.len(),
        ckpt.skip,
        ckpt.retired,
        ckpt.warm.len(),
        ckpt.fingerprint(),
    );
    Ok(())
}

fn ckpt_ls(paths: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if paths.is_empty() {
        return Err("ckpt ls: missing checkpoint file paths".into());
    }
    for path in paths {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let ckpt = Checkpoint::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: program {:#018x}, skip {}, {} retired, pc {:#010x}{}, {} pages, \
             warm {}, fingerprint {:#018x}",
            ckpt.program_fingerprint,
            ckpt.skip,
            ckpt.retired,
            ckpt.pc,
            if ckpt.halted { " (halted)" } else { "" },
            ckpt.mem.pages().count(),
            ckpt.warm.len(),
            ckpt.fingerprint(),
        );
    }
    Ok(())
}

fn ckpt_verify(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut it = args.iter();
    let path = it.next().ok_or("ckpt verify: missing checkpoint file path")?.clone();
    let mut program_name: Option<String> = None;
    let mut scale = 1.0f64;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("ckpt verify: {flag} needs a value"))
        };
        match a.as_str() {
            "--program" => program_name = Some(value("--program")?),
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or("ckpt verify: --scale needs a positive number")?;
            }
            other => return Err(format!("ckpt verify: unknown option {other:?}").into()),
        }
    }
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Decoding enforces the trailing integrity digest.
    let ckpt = Checkpoint::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if let Some(name) = program_name {
        let program = load_program(&name, scale)?;
        if ckpt.program_fingerprint != program.fingerprint() {
            return Err(format!("{path}: checkpoint does not belong to {name:?}").into());
        }
        // Replay the fast-forward; an equal fingerprint means every byte
        // of architectural state matches the file.
        let replay = Checkpoint::fast_forward(&program, ckpt.skip, ckpt.warmup)?;
        if replay.fingerprint() != ckpt.fingerprint() {
            return Err(format!("{path}: replayed fast-forward diverges from the file").into());
        }
        println!("{path}: ok (digest intact, replay of {name:?} matches)");
    } else {
        println!("{path}: ok (digest intact)");
    }
    Ok(())
}

/// The `analyze` subcommand: static CFG/loop/eligibility analysis with
/// the linter, optionally scored against one dynamic run. Returns
/// `Ok(true)` when the linter found no errors.
fn run_analyze(args: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let mut it = args.iter();
    let name = it.next().ok_or("analyze: missing program (kernel name or .s file)")?.clone();
    let mut iq = 64u32;
    let mut scale = 1.0f64;
    let mut dynamic = false;
    let mut json: Option<String> = None;
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("analyze: {flag} needs a value"));
        match a.as_str() {
            "--iq" => {
                iq = value("--iq")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("analyze: --iq needs a positive integer")?;
            }
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or("analyze: --scale needs a positive number")?;
            }
            "--dynamic" => dynamic = true,
            "--json" => json = Some(value("--json")?),
            other => return Err(format!("analyze: unknown option {other:?}").into()),
        }
    }
    let program = load_program(&name, scale)?;
    let analysis = riq_analyze::analyze(&program);
    // The dynamic leg runs the detailed simulator once with reuse enabled
    // at the selected IQ size and replays the reuse-FSM trace events.
    let agreement = if dynamic {
        let cfg = SimConfig::baseline().with_iq_size(iq).with_reuse(true);
        let mut sink = riq_trace::VecSink::new();
        let started = Instant::now();
        let r = Processor::new(cfg).run_observed(&program, &mut sink, None)?;
        // Speed accounting for the one simulated leg; stderr only — the
        // stdout table and summary line stay byte-deterministic.
        let perf =
            PerfBlock::new(started.elapsed().as_secs_f64(), r.stats.committed, r.stats.cycles);
        eprintln!("{}", perf.speed_line());
        Some(riq_analyze::agreement(&program, &analysis, &sink.events, iq))
    } else {
        None
    };
    if let Some(path) = &json {
        let doc = riq_analyze::report_json(&name, &program, &analysis, iq, agreement.as_ref())
            .to_pretty();
        if path == "-" {
            print!("{doc}");
        } else {
            File::create(path)
                .and_then(|mut f| f.write_all(doc.as_bytes()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report -> {path}");
        }
    }
    // The human table and summary line go to stdout unless the JSON
    // report already owns it.
    let mut out: Box<dyn std::io::Write> = if json.as_deref() == Some("-") {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    write!(
        out,
        "{}",
        riq_analyze::human_table(&name, &program, &analysis, iq, agreement.as_ref())
    )?;
    writeln!(
        out,
        "{}",
        riq_analyze::summary_line(&name, &program, &analysis, iq, agreement.as_ref())
    )?;
    Ok(analysis.lint.errors().count() == 0)
}

/// The `attribute` subcommand: per-loop, per-class energy attribution
/// joining the static predictor with a measured baseline/reuse run pair
/// (or, with `--corpus`, a fuzz-corpus family characterization).
fn run_attribute(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.iter().any(|a| a == "--corpus") {
        return run_attribute_corpus_cmd(args);
    }
    let mut it = args.iter();
    let name = it.next().ok_or("attribute: missing program (kernel name or .s file)")?.clone();
    let mut iq = 64u32;
    let mut scale = 1.0f64;
    let mut calibrated = false;
    let mut json: Option<String> = None;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("attribute: {flag} needs a value"))
        };
        match a.as_str() {
            "--iq" => {
                iq = value("--iq")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("attribute: --iq needs a positive integer")?;
            }
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or("attribute: --scale needs a positive number")?;
            }
            "--calibrated" => calibrated = true,
            "--json" => json = Some(value("--json")?),
            other => return Err(format!("attribute: unknown option {other:?}").into()),
        }
    }
    let program = load_program(&name, scale)?;
    let analysis = riq_analyze::analyze(&program);

    // Baseline leg: no reuse, no trace needed.
    let base_cfg = SimConfig::baseline().with_iq_size(iq);
    let started = Instant::now();
    let base = Processor::new(base_cfg).run(&program)?;
    let perf =
        PerfBlock::new(started.elapsed().as_secs_f64(), base.stats.committed, base.stats.cycles);
    eprintln!("baseline: {}", perf.speed_line());

    // Reuse leg: observed, so the reuse-FSM events can be replayed onto
    // the static loop table.
    let reuse_cfg = SimConfig::baseline().with_iq_size(iq).with_reuse(true);
    let mut sink = riq_trace::VecSink::new();
    let started = Instant::now();
    let reuse = Processor::new(reuse_cfg).run_observed(&program, &mut sink, None)?;
    let perf =
        PerfBlock::new(started.elapsed().as_secs_f64(), reuse.stats.committed, reuse.stats.cycles);
    eprintln!("reuse:    {}", perf.speed_line());

    let profile = if calibrated {
        riq_power::ClassEnergyProfile::calibrated()
    } else {
        riq_power::ClassEnergyProfile::default()
    };
    let base_run = riq_analyze::MeasuredRun { committed: base.stats.committed, power: base.power };
    let reuse_run =
        riq_analyze::MeasuredRun { committed: reuse.stats.committed, power: reuse.power };
    let attribution = riq_analyze::attribute(
        &program,
        &analysis,
        &sink.events,
        iq,
        &base_run,
        &reuse_run,
        &profile,
    );

    if let Some(path) = &json {
        let doc = riq_analyze::attribution_json(&name, &attribution).to_pretty();
        if path == "-" {
            print!("{doc}");
        } else {
            File::create(path)
                .and_then(|mut f| f.write_all(doc.as_bytes()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report -> {path}");
        }
    }
    let mut out: Box<dyn std::io::Write> = if json.as_deref() == Some("-") {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    write!(out, "{}", riq_analyze::attribution_table(&name, &attribution))?;
    writeln!(out, "{}", riq_analyze::attribution_summary_line(&name, &attribution))?;
    Ok(())
}

/// The `attribute --corpus` mode: characterize fuzz-generated programs
/// through the deterministic bench engine, bucketed by family.
fn run_attribute_corpus_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut seeds = 200u64;
    let mut iq = 64u32;
    let mut jobs = 0usize;
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("attribute: {flag} needs a value"))
        };
        match a.as_str() {
            "--corpus" => {}
            "--seeds" => {
                seeds = value("--seeds")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("attribute: --seeds needs a positive integer")?;
            }
            "--iq" => {
                iq = value("--iq")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("attribute: --iq needs a positive integer")?;
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .ok()
                    .ok_or("attribute: --jobs needs an unsigned integer")?;
            }
            "--json" => json = Some(value("--json")?),
            other => return Err(format!("attribute: unknown option {other:?}").into()),
        }
    }
    let opts = EngineOptions { jobs, ..EngineOptions::default() };
    let started = Instant::now();
    let report = riq_bench::run_attribution_corpus(seeds, iq, &opts)?;
    eprintln!(
        "corpus: {} programs ({} sim jobs) in {:.2}s",
        seeds,
        seeds * 2,
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = &json {
        let doc = report.to_json().to_pretty();
        if path == "-" {
            print!("{doc}");
        } else {
            File::create(path)
                .and_then(|mut f| f.write_all(doc.as_bytes()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report -> {path}");
        }
    }
    let mut out: Box<dyn std::io::Write> = if json.as_deref() == Some("-") {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    write!(out, "{}", report.render())?;
    writeln!(out, "{}", report.summary_line())?;
    Ok(())
}

/// The `fuzz` subcommand: differential fuzzing of the simulator against
/// the functional emulator. Returns `Ok(true)` when every program passed.
fn run_fuzz_cmd(args: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let mut opts = riq_fuzz::FuzzOptions { seed: 0, iters: 100, minimize: false, corpus_dir: None };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("fuzz: {flag} needs a value"));
        match a.as_str() {
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .ok()
                    .ok_or("fuzz: --seed needs an unsigned integer")?;
            }
            "--iters" => {
                opts.iters = value("--iters")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("fuzz: --iters needs a positive integer")?;
            }
            "--minimize" => opts.minimize = true,
            "--corpus" => opts.corpus_dir = Some(value("--corpus")?.into()),
            other => return Err(format!("fuzz: unknown option {other:?}").into()),
        }
    }
    let started = Instant::now();
    let summary = riq_fuzz::run_fuzz_with(&opts, |i, seed, failed| {
        if failed {
            eprintln!("fuzz: iteration {i}: seed {seed:#x} FAILED");
        } else if (i + 1) % 50 == 0 {
            eprintln!("fuzz: {} / {} programs checked", i + 1, opts.iters);
        }
    });
    for note in &summary.failure_notes {
        eprintln!("fuzz: {note}");
    }
    for path in &summary.repro_paths {
        eprintln!("fuzz: repro -> {}", path.display());
    }
    // Wall-clock and speed accounting go to stderr; stdout carries only
    // the deterministic summary line (CI diffs it). The campaign's
    // sim-domain totals route through a metrics hub like the sweep
    // engine's, so shrinker effort lands in the same counter namespace.
    let wall = started.elapsed().as_secs_f64();
    let hub = SharedRegistry::new(HubMode::Speed);
    hub.add_sim(SimCounter::Cycles, summary.sim_cycles);
    hub.add_sim(SimCounter::Committed, summary.sim_insts);
    hub.add_host(HostCounter::FuzzPrograms, summary.programs);
    hub.add_host(HostCounter::ShrinkEvals, summary.shrink_evals);
    let snap = hub.snapshot();
    let perf = PerfBlock::new(wall, snap.sim(SimCounter::Committed), snap.sim(SimCounter::Cycles));
    eprintln!("{}", perf.speed_line());
    eprintln!("fuzz: {wall:.2}s wall clock");
    println!("{}", summary.line());
    Ok(summary.failures == 0)
}

/// The `serve` subcommand: bind the daemon, optionally spawn worker
/// processes against it, and run until killed.
fn run_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut listen = String::from("127.0.0.1:0");
    let mut store_dir = String::from("riq-store");
    let mut workers = 0usize;
    let mut store_max_bytes: Option<u64> = None;
    let mut trace: Option<String> = None;
    let mut lease_ttl_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("serve: {flag} needs a value"));
        match a.as_str() {
            "--listen" => listen = value("--listen")?,
            "--store" => store_dir = value("--store")?,
            "--workers" => {
                workers =
                    value("--workers")?.parse().ok().ok_or("serve: --workers needs a count")?;
            }
            "--store-max-bytes" => {
                store_max_bytes = Some(
                    value("--store-max-bytes")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("serve: --store-max-bytes needs a positive byte count")?,
                );
            }
            "--trace" => trace = Some(value("--trace")?),
            "--lease-ttl-ms" => {
                lease_ttl_ms = Some(
                    value("--lease-ttl-ms")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("serve: --lease-ttl-ms needs a positive count")?,
                );
            }
            other => return Err(format!("serve: unknown option {other:?}").into()),
        }
    }
    let listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let store_path = std::path::Path::new(&store_dir).join("results.wal");
    let mut options = DaemonOptions::new(&store_path);
    options.store_max_bytes = store_max_bytes;
    options.trace_path = trace.map(Into::into);
    if let Some(ms) = lease_ttl_ms {
        options.queue.lease_ttl = std::time::Duration::from_millis(ms);
    }
    let daemon = start_daemon(listener, &options)?;
    // The bound address goes to stdout (scripts need the ephemeral port);
    // everything else to stderr.
    println!("{}", daemon.addr());
    std::io::stdout().flush()?;
    eprintln!("serve: listening on {}, store {}", daemon.addr(), store_path.display());
    let addr = daemon.addr().to_string();
    let exe = std::env::current_exe()?;
    let mut children = Vec::new();
    for i in 0..workers {
        let child = std::process::Command::new(&exe)
            .args(["worker", "--connect", &addr, "--id", &format!("w{i}")])
            .spawn()
            .map_err(|e| format!("cannot spawn worker {i}: {e}"))?;
        eprintln!("serve: worker w{i} -> pid {}", child.id());
        children.push(child);
    }
    // Serve until killed; workers notice the closed socket and exit on
    // their own when this process dies.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}

/// The `worker` subcommand: lease-simulate-report against a daemon.
fn run_worker_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut connect: Option<String> = None;
    let mut id: Option<String> = None;
    let mut exit_when_idle = false;
    let mut max_jobs: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("worker: {flag} needs a value"));
        match a.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--id" => id = Some(value("--id")?),
            "--exit-when-idle" => exit_when_idle = true,
            "--max-jobs" => {
                max_jobs = Some(
                    value("--max-jobs")?.parse().ok().ok_or("worker: --max-jobs needs a count")?,
                );
            }
            other => return Err(format!("worker: unknown option {other:?}").into()),
        }
    }
    let addr = connect.ok_or("worker: --connect ADDR is required")?;
    let id = id.unwrap_or_else(|| format!("w-{}", std::process::id()));
    let mut options = riq_serve::WorkerOptions::named(&id);
    options.exit_when_idle = exit_when_idle;
    options.max_jobs = max_jobs;
    let outcome = riq_serve::run_worker(&addr, &options);
    eprintln!(
        "worker {id}: {} completed, {} failed, {} leased, exit {:?}",
        outcome.completed, outcome.failed, outcome.leased, outcome.exit
    );
    Ok(())
}

/// One HTTP exchange against the daemon, with error mapping.
fn daemon_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), Box<dyn std::error::Error>> {
    riq_serve::http_request(addr, method, path, body)
        .map_err(|e| format!("cannot reach daemon at {addr}: {e}").into())
}

/// The `submit` subcommand: register a sweep, print its id, optionally
/// wait for completion.
fn run_submit(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut it = args.iter();
    let label = it.next().ok_or("submit: missing experiment label")?.clone();
    let mut connect: Option<String> = None;
    let mut scale = 1.0f64;
    let mut skip = 0u64;
    let mut warmup = 0u64;
    let mut priority = 0i64;
    let mut wait = false;
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("submit: {flag} needs a value"));
        match a.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or("submit: --scale needs a positive number")?;
            }
            "--skip" => {
                skip = value("--skip")?.parse().ok().ok_or("submit: --skip needs a count")?;
            }
            "--warmup" => {
                warmup = value("--warmup")?.parse().ok().ok_or("submit: --warmup needs a count")?;
            }
            "--priority" => {
                priority = value("--priority")?
                    .parse()
                    .ok()
                    .ok_or("submit: --priority needs an integer")?;
            }
            "--wait" => wait = true,
            other => return Err(format!("submit: unknown option {other:?}").into()),
        }
    }
    let addr = connect.ok_or("submit: --connect ADDR is required")?;
    if experiment_from_label(&label, scale).is_none() {
        return Err(format!(
            "submit: unknown experiment {label:?} (expected fig5-8, fig9, nblt, strategy, \
             transforms, bpred, or policy-edp)"
        )
        .into());
    }
    let body = format!(
        "{{\"experiment\": \"{label}\", \"scale\": {scale}, \"skip\": {skip}, \
         \"warmup\": {warmup}, \"priority\": {priority}}}"
    );
    let (status, reply) = daemon_request(&addr, "POST", "/sweeps", body.as_bytes())?;
    let reply_text = String::from_utf8_lossy(&reply).into_owned();
    if status != 200 {
        return Err(format!("submit: daemon answered {status}: {}", reply_text.trim()).into());
    }
    let doc = parse(&reply_text).map_err(|e| format!("submit: bad daemon reply: {e}"))?;
    let sweep =
        doc.get("sweep").and_then(riq_trace::JsonValue::as_u64).ok_or("submit: reply has no id")?;
    println!("{sweep}");
    std::io::stdout().flush()?;
    if !wait {
        return Ok(());
    }
    loop {
        let (status, body) = daemon_request(&addr, "GET", &format!("/sweeps/{sweep}"), b"")?;
        if status != 200 {
            return Err(format!("submit: status poll answered {status}").into());
        }
        let doc = parse(&String::from_utf8_lossy(&body))
            .map_err(|e| format!("submit: bad status reply: {e}"))?;
        let state = doc.get("status").and_then(riq_trace::JsonValue::as_str).unwrap_or("unknown");
        match state {
            "done" => return Ok(()),
            "failed" => {
                let msg = doc
                    .get("message")
                    .and_then(riq_trace::JsonValue::as_str)
                    .unwrap_or("unknown failure");
                return Err(format!("submit: sweep {sweep} failed: {msg}").into());
            }
            _ => {
                let done =
                    doc.get("done_points").and_then(riq_trace::JsonValue::as_u64).unwrap_or(0);
                let total =
                    doc.get("total_points").and_then(riq_trace::JsonValue::as_u64).unwrap_or(0);
                eprintln!("submit: sweep {sweep}: {done}/{total} points");
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
        }
    }
}

/// The `fetch` subcommand: print a finished sweep's CSV or report (or
/// the daemon's `/statsz` document) to stdout.
fn run_fetch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut connect: Option<String> = None;
    let mut sweep: Option<u64> = None;
    let mut report = false;
    let mut statsz = false;
    let mut wait = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("fetch: {flag} needs a value"));
        match a.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--sweep" => {
                sweep =
                    Some(value("--sweep")?.parse().ok().ok_or("fetch: --sweep needs a sweep id")?);
            }
            "--report" => report = true,
            "--statsz" => statsz = true,
            "--wait" => wait = true,
            other => return Err(format!("fetch: unknown option {other:?}").into()),
        }
    }
    let addr = connect.ok_or("fetch: --connect ADDR is required")?;
    if statsz {
        let (status, body) = daemon_request(&addr, "GET", "/statsz", b"")?;
        if status != 200 {
            return Err(format!("fetch: /statsz answered {status}").into());
        }
        print!("{}", String::from_utf8_lossy(&body));
        return Ok(());
    }
    let sweep = sweep.ok_or("fetch: --sweep ID is required (or --statsz)")?;
    let view = if report { "report" } else { "csv" };
    loop {
        let (status, body) = daemon_request(&addr, "GET", &format!("/sweeps/{sweep}/{view}"), b"")?;
        match status {
            200 => {
                print!("{}", String::from_utf8_lossy(&body));
                return Ok(());
            }
            409 if wait => std::thread::sleep(std::time::Duration::from_millis(250)),
            _ => {
                return Err(format!(
                    "fetch: sweep {sweep} {view} answered {status}: {}",
                    String::from_utf8_lossy(&body).trim()
                )
                .into())
            }
        }
    }
}

/// Prints one table in the selected format.
fn emit(header: &str, table: &FigTable, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{header}");
        println!("{table}");
    }
}

/// A figure subcommand resolved to its experiment: which [`Experiment`]
/// to run, which sub-table to extract from a stacked Fig5–8 result
/// (`(row prefix, row label)`), and the header to print above it.
struct FigureCommand {
    experiment: Experiment,
    extract: Option<(&'static str, &'static str)>,
    header: &'static str,
}

fn figure_command(cmd: &str, scale: f64) -> Option<FigureCommand> {
    match cmd {
        // The stacked sweep that Figures 5-8 are views of, as one table —
        // the same rows the daemon serves for a "fig5-8" sweep, so
        // service and engine output can be diffed byte for byte.
        "fig5-8" => Some(FigureCommand {
            experiment: Experiment::Fig5_8 { scale },
            extract: None,
            header: "== Figures 5-8: stacked gating/power/IPC sweep ==",
        }),
        "fig5" => Some(FigureCommand {
            experiment: Experiment::Fig5_8 { scale },
            extract: Some(("fig5", "benchmark")),
            header: "== Figure 5: fraction of cycles with the front-end gated ==",
        }),
        "fig6" => Some(FigureCommand {
            experiment: Experiment::Fig5_8 { scale },
            extract: Some(("fig6", "component")),
            header: "== Figure 6: per-component power reduction (suite average) ==\n(Overhead row = LRL+NBLT+control share of total power)",
        }),
        "fig7" => Some(FigureCommand {
            experiment: Experiment::Fig5_8 { scale },
            extract: Some(("fig7", "benchmark")),
            header: "== Figure 7: overall per-cycle power reduction ==",
        }),
        "fig8" => Some(FigureCommand {
            experiment: Experiment::Fig5_8 { scale },
            extract: Some(("fig8", "benchmark")),
            header: "== Figure 8: IPC degradation (negative = reuse faster) ==",
        }),
        "fig9" => Some(FigureCommand {
            experiment: Experiment::Fig9 { scale },
            extract: None,
            header: "== Figure 9: loop distribution at the IQ-64 baseline ==",
        }),
        "nblt" => Some(FigureCommand {
            experiment: Experiment::NbltAblation { scale },
            extract: None,
            header: "== NBLT ablation (§3): buffering revoke rate ==",
        }),
        "strategy" => Some(FigureCommand {
            experiment: Experiment::StrategyAblation { scale },
            extract: None,
            header: "== Buffering-strategy ablation (§2.2.1): gated rate ==",
        }),
        "bpred" => Some(FigureCommand {
            experiment: Experiment::BpredAblation { scale },
            extract: None,
            header: "== Direction-predictor ablation (bimod vs gshare vs static) ==",
        }),
        "transforms" => Some(FigureCommand {
            experiment: Experiment::TransformAblation { scale },
            extract: None,
            header: "== Loop-transformation ablation: gated rate by code version ==",
        }),
        "policy-edp" => Some(FigureCommand {
            experiment: Experiment::PolicyEdp { scale },
            extract: None,
            header: "== Issue-policy x queue-size scorecard: IPC / energy / EDP / ED2P ==",
        }),
        _ => None,
    }
}

fn header_for(label: &str) -> &'static str {
    match label {
        "fig9" => "== Figure 9: loop distribution at the IQ-64 baseline ==",
        "nblt" => "== NBLT ablation (§3): buffering revoke rate ==",
        "strategy" => "== Buffering-strategy ablation (§2.2.1): gated rate ==",
        "bpred" => "== Direction-predictor ablation (bimod vs gshare vs static) ==",
        "transforms" => "== Loop-transformation ablation: gated rate by code version ==",
        "policy-edp" => "== Issue-policy x queue-size scorecard: IPC / energy / EDP / ED2P ==",
        _ => "== experiment ==",
    }
}

fn run(
    cmd: &str,
    scale: f64,
    jobs: usize,
    csv: bool,
    skip: u64,
    warmup: u64,
    no_store: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    // Sweeps always run with a speed-mode hub: per-returned-job sim
    // totals cost one relaxed add per job and pay for the stderr speed
    // line on every experiment.
    let hub = SharedRegistry::new(HubMode::Speed);
    let opts = EngineOptions {
        jobs,
        cache: riq_bench::ResultCache::new(),
        skip,
        warmup,
        ckpt: (skip > 0 && !no_store).then(CheckpointStore::new),
        metrics: hub.clone(),
        profile: ProfileConfig::default(),
        executor: None,
    };
    let started = Instant::now();
    match cmd {
        "table1" | "table2" | "all" if csv => {
            return Err(format!("--csv is not supported for {cmd:?}").into());
        }
        "table1" => print!("== Table 1: baseline configuration ==\n{}", table1()),
        "table2" => print!("== Table 2: benchmarks ==\n{}", table2()),
        "all" => {
            print!("== Table 1: baseline configuration ==\n{}\n", table1());
            print!("== Table 2: benchmarks ==\n{}\n", table2());
            // One shared EngineOptions: the cache dedups the points that
            // fig9/strategy/bpred/transforms share with the fig5-8 sweep.
            let stacked = run_experiment(&Experiment::Fig5_8 { scale }, &opts)?;
            emit(
                "== Figure 5: fraction of cycles with the front-end gated ==",
                &stacked.sub_table("fig5", "benchmark"),
                false,
            );
            emit(
                "== Figure 6: per-component power reduction (suite average) ==",
                &stacked.sub_table("fig6", "component"),
                false,
            );
            emit(
                "== Figure 7: overall per-cycle power reduction ==",
                &stacked.sub_table("fig7", "benchmark"),
                false,
            );
            emit(
                "== Figure 8: IPC degradation (negative = reuse faster) ==",
                &stacked.sub_table("fig8", "benchmark"),
                false,
            );
            for e in Experiment::all(scale) {
                if matches!(e, Experiment::Fig5_8 { .. }) {
                    continue;
                }
                let t = run_experiment(&e, &opts)?;
                emit(header_for(e.label()), &t, false);
            }
        }
        _ => {
            let Some(FigureCommand { experiment, extract, header }) = figure_command(cmd, scale)
            else {
                return Err(format!("unknown experiment {cmd:?}").into());
            };
            let t = run_experiment(&experiment, &opts)?;
            let t = match extract {
                Some((prefix, row_label)) => t.sub_table(prefix, row_label),
                None => t,
            };
            emit(header, &t, csv);
        }
    }
    // One clock for everything below: the engine line, the speed line,
    // and the hub's wall-nanos counter all read this measurement.
    let wall = started.elapsed().as_secs_f64();
    if let Some(store) = &opts.ckpt {
        hub.set_host(HostCounter::CkptCreated, store.created());
        hub.set_host(HostCounter::CkptReused, store.reused());
    }
    if !opts.cache.is_empty() {
        eprintln!(
            "engine: {wall:.2}s wall clock, {} workers, {} simulated, {} deduplicated",
            opts.worker_count(usize::MAX),
            opts.cache.misses(),
            opts.cache.hits(),
        );
        let snap = hub.snapshot();
        let perf =
            PerfBlock::new(wall, snap.sim(SimCounter::Committed), snap.sim(SimCounter::Cycles))
                .with_fast_forward(snap.host(HostCounter::FastForwardNanos) as f64 / 1e9);
        eprintln!("{}", perf.speed_line());
    }
    if let Some(store) = &opts.ckpt {
        eprintln!(
            "checkpoints: skip {skip}, {} fast-forwards ({:.2}s), {} reused",
            store.created(),
            store.ff_seconds(),
            store.reused(),
        );
    }
    Ok(())
}
