//! `riq-repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! riq-repro <experiment> [--scale F]
//!
//! experiments:
//!   table1    baseline processor configuration (paper Table 1)
//!   table2    benchmark list (paper Table 2)
//!   fig5      % of cycles with the pipeline front-end gated
//!   fig6      per-component power reduction + overhead
//!   fig7      overall per-cycle power reduction per benchmark
//!   fig8      IPC degradation per benchmark
//!   fig9      loop-distribution impact at the 64-entry baseline
//!   nblt      §3 ablation: buffering revoke rate with/without the NBLT
//!   strategy  §2.2.1 ablation: single- vs multi-iteration buffering
//!   bpred     direction-predictor ablation (bimod/gshare/static)
//!   transforms loop-transformation ablation (distribute/unroll/fuse)
//!   all       everything above, in order
//!
//! --scale F scales benchmark outer trip counts (default 1.0). Figures in
//! EXPERIMENTS.md are produced with the default.
//! ```

use riq_bench::{bpred_ablation, transform_ablation, fig9, fig9_table, nblt_ablation, strategy_ablation, table1, table2, Sweep};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: riq-repro <table1|table2|fig5|fig6|fig7|fig8|fig9|nblt|strategy|bpred|transforms|all> [--scale F]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let mut scale = 1.0f64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => scale = v,
                _ => return usage(),
            }
        } else {
            return usage();
        }
    }
    match run(cmd, scale) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("riq-repro: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, scale: f64) -> Result<(), Box<dyn std::error::Error>> {
    let sweep = Sweep::run;
    match cmd {
        "table1" => print!("== Table 1: baseline configuration ==\n{}", table1()),
        "table2" => print!("== Table 2: benchmarks ==\n{}", table2()),
        "fig5" => {
            println!("== Figure 5: fraction of cycles with the front-end gated ==");
            println!("{}", sweep(scale)?.fig5());
        }
        "fig6" => {
            println!("== Figure 6: per-component power reduction (suite average) ==");
            println!("(Overhead row = LRL+NBLT+control share of total power)");
            println!("{}", sweep(scale)?.fig6());
        }
        "fig7" => {
            println!("== Figure 7: overall per-cycle power reduction ==");
            println!("{}", sweep(scale)?.fig7());
        }
        "fig8" => {
            println!("== Figure 8: IPC degradation (negative = reuse faster) ==");
            println!("{}", sweep(scale)?.fig8());
        }
        "fig9" => {
            println!("== Figure 9: loop distribution at the IQ-64 baseline ==");
            println!("{}", fig9_table(&fig9(scale)?));
        }
        "nblt" => {
            println!("== NBLT ablation (§3): buffering revoke rate ==");
            println!("{}", nblt_ablation(scale)?);
        }
        "strategy" => {
            println!("== Buffering-strategy ablation (§2.2.1): gated rate ==");
            println!("{}", strategy_ablation(scale)?);
        }
        "bpred" => {
            println!("== Direction-predictor ablation (bimod vs gshare vs static) ==");
            println!("{}", bpred_ablation(scale)?);
        }
        "transforms" => {
            println!("== Loop-transformation ablation: gated rate by code version ==");
            println!("{}", transform_ablation(scale)?);
        }
        "all" => {
            print!("== Table 1: baseline configuration ==\n{}\n", table1());
            print!("== Table 2: benchmarks ==\n{}\n", table2());
            let s = sweep(scale)?;
            println!("== Figure 5: fraction of cycles with the front-end gated ==");
            println!("{}", s.fig5());
            println!("== Figure 6: per-component power reduction (suite average) ==");
            println!("{}", s.fig6());
            println!("== Figure 7: overall per-cycle power reduction ==");
            println!("{}", s.fig7());
            println!("== Figure 8: IPC degradation (negative = reuse faster) ==");
            println!("{}", s.fig8());
            println!("== Figure 9: loop distribution at the IQ-64 baseline ==");
            println!("{}", fig9_table(&fig9(scale)?));
            println!("== NBLT ablation (§3): buffering revoke rate ==");
            println!("{}", nblt_ablation(scale)?);
            println!("== Buffering-strategy ablation (§2.2.1): gated rate ==");
            println!("{}", strategy_ablation(scale)?);
            println!("== Direction-predictor ablation (bimod vs gshare vs static) ==");
            println!("{}", bpred_ablation(scale)?);
            println!("== Loop-transformation ablation: gated rate by code version ==");
            println!("{}", transform_ablation(scale)?);
        }
        _ => return Err(format!("unknown experiment {cmd:?}").into()),
    }
    Ok(())
}
