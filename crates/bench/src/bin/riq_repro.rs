//! `riq-repro` — regenerates every table and figure of the paper, and runs
//! single programs with observability attached.
//!
//! ```text
//! riq-repro <experiment> [--scale F]
//! riq-repro run <kernel|file.s> [--iq N] [--reuse] [--scale F]
//!           [--json PATH] [--trace PATH] [--epoch N]
//!
//! experiments:
//!   table1    baseline processor configuration (paper Table 1)
//!   table2    benchmark list (paper Table 2)
//!   fig5      % of cycles with the pipeline front-end gated
//!   fig6      per-component power reduction + overhead
//!   fig7      overall per-cycle power reduction per benchmark
//!   fig8      IPC degradation per benchmark
//!   fig9      loop-distribution impact at the 64-entry baseline
//!   nblt      §3 ablation: buffering revoke rate with/without the NBLT
//!   strategy  §2.2.1 ablation: single- vs multi-iteration buffering
//!   bpred     direction-predictor ablation (bimod/gshare/static)
//!   transforms loop-transformation ablation (distribute/unroll/fuse)
//!   all       everything above, in order
//!
//! --scale F scales benchmark outer trip counts (default 1.0). Figures in
//! EXPERIMENTS.md are produced with the default.
//!
//! `run` simulates one program — a Table 2 kernel by name, or a `.s`
//! assembly file — and prints a summary. `--json PATH` writes the full
//! machine-readable run report (`-` for stdout), `--trace PATH` streams
//! every trace event as JSONL (reuse-FSM transitions, gating windows,
//! per-cycle pipeline samples, cache misses, mispredictions), and
//! `--epoch N` adds a statistics snapshot every N cycles (to the report
//! and, when tracing, the trace).
//! ```

use riq_bench::{
    bpred_ablation, fig9, fig9_table, nblt_ablation, report_json, strategy_ablation, table1,
    table2, transform_ablation, RunSpec, Sweep,
};
use riq_core::{Processor, SimConfig};
use riq_trace::{JsonlSink, NullSink, TraceSink};
use std::fs::File;
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: riq-repro <table1|table2|fig5|fig6|fig7|fig8|fig9|nblt|strategy|bpred|transforms|all> [--scale F]
                riq-repro run <kernel|file.s> [--iq N] [--reuse] [--scale F] [--json PATH] [--trace PATH] [--epoch N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    if cmd == "run" {
        return match run_program(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("riq-repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut scale = 1.0f64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => scale = v,
                _ => return usage(),
            }
        } else {
            return usage();
        }
    }
    match run(cmd, scale) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("riq-repro: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Options of the `run` subcommand.
struct RunArgs {
    program: String,
    iq: u32,
    reuse: bool,
    scale: f64,
    json: Option<String>,
    trace: Option<String>,
    epoch: Option<u64>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut it = args.iter();
    let program = it.next().ok_or("run: missing program (kernel name or .s file)")?.clone();
    let mut out =
        RunArgs { program, iq: 64, reuse: false, scale: 1.0, json: None, trace: None, epoch: None };
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("run: {flag} needs a value"));
        match a.as_str() {
            "--iq" => {
                out.iq = value("--iq")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("run: --iq needs a positive integer")?;
            }
            "--reuse" => out.reuse = true,
            "--scale" => {
                out.scale = value("--scale")?
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or("run: --scale needs a positive number")?;
            }
            "--json" => out.json = Some(value("--json")?),
            "--trace" => out.trace = Some(value("--trace")?),
            "--epoch" => {
                out.epoch = Some(
                    value("--epoch")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("run: --epoch needs a positive cycle count")?,
                );
            }
            other => return Err(format!("run: unknown option {other:?}")),
        }
    }
    Ok(out)
}

fn load_program(name: &str, scale: f64) -> Result<riq_asm::Program, Box<dyn std::error::Error>> {
    if name.ends_with(".s") {
        let source =
            std::fs::read_to_string(name).map_err(|e| format!("cannot read {name}: {e}"))?;
        Ok(riq_asm::assemble(&source)?)
    } else {
        let kernel = riq_kernels::suite_scaled(scale)
            .into_iter()
            .find(|k| k.name == name)
            .ok_or_else(|| format!("unknown kernel {name:?} (and not a .s file)"))?;
        Ok(riq_kernels::compile(&kernel)?)
    }
}

fn run_program(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_run_args(args)?;
    let program = load_program(&opts.program, opts.scale)?;
    let cfg = SimConfig::baseline().with_iq_size(opts.iq).with_reuse(opts.reuse);
    let processor = Processor::new(cfg);

    let mut jsonl = match &opts.trace {
        Some(path) => Some(JsonlSink::new(
            File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        None => None,
    };
    let mut null = NullSink;
    let sink: &mut dyn TraceSink = match jsonl.as_mut() {
        Some(s) => s,
        None => &mut null,
    };
    let result = processor.run_observed(&program, sink, opts.epoch)?;
    if let Some(s) = jsonl {
        let events = s.written();
        s.into_inner()?;
        eprintln!("trace: {events} events -> {}", opts.trace.as_deref().unwrap_or_default());
    }

    let spec = RunSpec {
        program: opts.program.clone(),
        iq: opts.iq,
        reuse: opts.reuse,
        scale: opts.scale,
        epoch: opts.epoch,
    };
    if let Some(path) = &opts.json {
        let doc = report_json(&spec, &result).to_pretty();
        if path == "-" {
            print!("{doc}");
        } else {
            File::create(path)
                .and_then(|mut f| f.write_all(doc.as_bytes()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report -> {path}");
        }
    }

    // The summary normally goes to stdout, but must not corrupt the JSON
    // stream when the report itself is directed there via `--json -`.
    let mut summary: Box<dyn std::io::Write> = if opts.json.as_deref() == Some("-") {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    let s = &result.stats;
    writeln!(
        summary,
        "{}: {} cycles, {} committed (IPC {:.3}), gated {:.1}% ({} cycles), \
         reused {} insts, {} epochs sampled",
        opts.program,
        s.cycles,
        s.committed,
        s.ipc(),
        s.gated_rate() * 100.0,
        s.gated_cycles,
        s.reuse.reused_insts,
        result.epochs.len(),
    )?;
    Ok(())
}

fn run(cmd: &str, scale: f64) -> Result<(), Box<dyn std::error::Error>> {
    let sweep = Sweep::run;
    match cmd {
        "table1" => print!("== Table 1: baseline configuration ==\n{}", table1()),
        "table2" => print!("== Table 2: benchmarks ==\n{}", table2()),
        "fig5" => {
            println!("== Figure 5: fraction of cycles with the front-end gated ==");
            println!("{}", sweep(scale)?.fig5());
        }
        "fig6" => {
            println!("== Figure 6: per-component power reduction (suite average) ==");
            println!("(Overhead row = LRL+NBLT+control share of total power)");
            println!("{}", sweep(scale)?.fig6());
        }
        "fig7" => {
            println!("== Figure 7: overall per-cycle power reduction ==");
            println!("{}", sweep(scale)?.fig7());
        }
        "fig8" => {
            println!("== Figure 8: IPC degradation (negative = reuse faster) ==");
            println!("{}", sweep(scale)?.fig8());
        }
        "fig9" => {
            println!("== Figure 9: loop distribution at the IQ-64 baseline ==");
            println!("{}", fig9_table(&fig9(scale)?));
        }
        "nblt" => {
            println!("== NBLT ablation (§3): buffering revoke rate ==");
            println!("{}", nblt_ablation(scale)?);
        }
        "strategy" => {
            println!("== Buffering-strategy ablation (§2.2.1): gated rate ==");
            println!("{}", strategy_ablation(scale)?);
        }
        "bpred" => {
            println!("== Direction-predictor ablation (bimod vs gshare vs static) ==");
            println!("{}", bpred_ablation(scale)?);
        }
        "transforms" => {
            println!("== Loop-transformation ablation: gated rate by code version ==");
            println!("{}", transform_ablation(scale)?);
        }
        "all" => {
            print!("== Table 1: baseline configuration ==\n{}\n", table1());
            print!("== Table 2: benchmarks ==\n{}\n", table2());
            let s = sweep(scale)?;
            println!("== Figure 5: fraction of cycles with the front-end gated ==");
            println!("{}", s.fig5());
            println!("== Figure 6: per-component power reduction (suite average) ==");
            println!("{}", s.fig6());
            println!("== Figure 7: overall per-cycle power reduction ==");
            println!("{}", s.fig7());
            println!("== Figure 8: IPC degradation (negative = reuse faster) ==");
            println!("{}", s.fig8());
            println!("== Figure 9: loop distribution at the IQ-64 baseline ==");
            println!("{}", fig9_table(&fig9(scale)?));
            println!("== NBLT ablation (§3): buffering revoke rate ==");
            println!("{}", nblt_ablation(scale)?);
            println!("== Buffering-strategy ablation (§2.2.1): gated rate ==");
            println!("{}", strategy_ablation(scale)?);
            println!("== Direction-predictor ablation (bimod vs gshare vs static) ==");
            println!("{}", bpred_ablation(scale)?);
            println!("== Loop-transformation ablation: gated rate by code version ==");
            println!("{}", transform_ablation(scale)?);
        }
        _ => return Err(format!("unknown experiment {cmd:?}").into()),
    }
    Ok(())
}
