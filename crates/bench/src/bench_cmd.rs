//! The `riq-repro bench` command: a pinned workload matrix timed end to
//! end, recorded as one versioned entry in a `BENCH_<date>.json`
//! trajectory file.
//!
//! The workload is fixed so records are comparable across commits: all
//! eight Table 2 kernels × {baseline, reuse} × IQ {16, 64, 256} (48
//! points), plus one full Figure 5–8 sweep. It runs twice:
//!
//! 1. **timed pass** — disabled per-run registries, a [`HubMode::Speed`]
//!    hub; produces the host-domain block (wall clock, sim KHz, MIPS,
//!    peak RSS) from a single wall-clock measurement via [`PerfBlock`];
//! 2. **profiled pass** — a fresh cache and [`HubMode::Profile`]; the
//!    48 matrix points run with per-run registries whose snapshots are
//!    merged into the simulation-domain block (committed/cycle totals,
//!    IQ-scan/LSQ-search/ROB-walk visit counters, cache hits/misses) and
//!    the per-stage host-time shares.
//!
//! The two domains land in separate JSON sub-documents. The `sim` block
//! is a pure function of `(matrix, scale)` — byte-identical on any
//! machine, for any worker count — so CI can diff it against a pinned
//! fixture, while everything under `host` is recorded but never gated.

use crate::engine::{run_jobs, EngineOptions, ExperimentError, JobSpec, ResultCache};
use crate::experiment::{run_experiment, Experiment};
use riq_core::{MetricsSnapshot, SimConfig};
use riq_metrics::{HubMode, PerfBlock, SharedRegistry, SimCounter};
use riq_trace::{parse, JsonValue};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Version of the `BENCH_*.json` trajectory document.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The `--quick` trip-count scale (matches the Criterion benches).
pub const QUICK_SCALE: f64 = 0.05;

/// IQ sizes of the pinned matrix.
pub const BENCH_IQ_SIZES: [u32; 3] = [16, 64, 256];

/// Enumerates the pinned 48-point matrix: every Table 2 kernel ×
/// {baseline, reuse} × [`BENCH_IQ_SIZES`].
///
/// # Errors
///
/// Propagates kernel compilation failures.
pub fn matrix_jobs(scale: f64) -> Result<Vec<JobSpec>, ExperimentError> {
    let mut jobs = Vec::new();
    for k in riq_kernels::suite_scaled(scale) {
        let program = Arc::new(riq_kernels::compile(&k).map_err(ExperimentError::Compile)?);
        for reuse in [false, true] {
            for iq in BENCH_IQ_SIZES {
                jobs.push(JobSpec {
                    kernel: k.name.to_string(),
                    program: Arc::clone(&program),
                    config: SimConfig::baseline().with_iq_size(iq).with_reuse(reuse),
                });
            }
        }
    }
    Ok(jobs)
}

/// The outcome of one bench invocation.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// The full trajectory record (sim + host blocks).
    pub record: JsonValue,
    /// The deterministic simulation-domain block alone (what CI diffs).
    pub sim: JsonValue,
    /// The perf block of the timed pass (for the stderr speed line).
    pub perf: PerfBlock,
    /// Simulation points executed per pass (matrix + sweep).
    pub points: u64,
}

/// Runs both passes of the pinned workload and assembles the record.
///
/// `date` is a caller-supplied label (the CLI takes it from `--date`, CI
/// passes the host date) — the simulator never reads a clock itself, so
/// the record stays reproducible.
///
/// # Errors
///
/// Propagates compilation and simulation failures from the engine.
pub fn run_bench(
    scale: f64,
    jobs: usize,
    date: &str,
    quick: bool,
) -> Result<BenchRun, ExperimentError> {
    run_bench_with_store(scale, jobs, date, quick, None)
}

/// [`run_bench`] with an optional `riq-serve` result store: when `store`
/// is given, the timed pass's results are persisted into it (warming the
/// daemon's cache for free) and the host block reports the store's
/// on-disk byte and entry counts.
///
/// # Errors
///
/// Propagates engine failures; a store I/O failure surfaces as
/// [`ExperimentError::JobFailed`] for the pseudo-kernel `result-store`.
pub fn run_bench_with_store(
    scale: f64,
    jobs: usize,
    date: &str,
    quick: bool,
    store: Option<&Path>,
) -> Result<BenchRun, ExperimentError> {
    let specs = matrix_jobs(scale)?;

    // Pass 1 — timed. Disabled per-run registries: this is the number the
    // zero-overhead claim stands on, measured with one clock.
    let speed_hub = SharedRegistry::new(HubMode::Speed);
    let speed_opts = EngineOptions {
        jobs,
        cache: ResultCache::new(),
        metrics: speed_hub.clone(),
        ..EngineOptions::default()
    };
    let started = Instant::now();
    let timed_results = run_jobs(&specs, &speed_opts)?;
    run_experiment(&Experiment::Fig5_8 { scale }, &speed_opts)?;
    let wall = started.elapsed().as_secs_f64();
    let speed = speed_hub.snapshot();
    let perf =
        PerfBlock::new(wall, speed.sim(SimCounter::Committed), speed.sim(SimCounter::Cycles));
    let points = speed_opts.cache.misses() + speed_opts.cache.hits();

    // Pass 2 — profiled, over the 48 matrix points with a fresh cache (a
    // cache hit would return a snapshot-less result). Merged snapshots
    // give the full simulation-domain counters and the stage shares.
    let profile_opts = EngineOptions {
        jobs,
        cache: ResultCache::new(),
        metrics: SharedRegistry::new(HubMode::Profile),
        ..EngineOptions::default()
    };
    let profile_start = Instant::now();
    let profiled_results = run_jobs(&specs, &profile_opts)?;
    let profile_wall = profile_start.elapsed().as_secs_f64();
    let mut merged = MetricsSnapshot::default();
    for r in &profiled_results {
        if let Some(m) = &r.metrics {
            merged.merge(m);
        }
    }
    debug_assert_eq!(
        merged.get(SimCounter::Cycles),
        timed_results.iter().map(|r| r.stats.cycles).sum::<u64>(),
        "profiling must not change simulated timing"
    );

    // Persist the timed pass into the service store when asked: the
    // daemon content-addresses results by the same key, so a later sweep
    // over any of these points simulates nothing.
    let store_stats = match store {
        Some(path) => {
            let store_err = |e: std::io::Error| ExperimentError::JobFailed {
                kernel: "result-store".to_string(),
                message: e.to_string(),
            };
            let mut s = riq_serve::ResultStore::open(path, None).map_err(store_err)?;
            for (spec, result) in specs.iter().zip(&timed_results) {
                s.put(spec.key(), result).map_err(store_err)?;
            }
            Some(s.stats())
        }
        None => None,
    };

    let sim = merged.sim_json();
    let host = JsonValue::obj([
        ("wall_clock_seconds", JsonValue::Num(perf.wall_seconds)),
        ("sim_khz", JsonValue::Num(perf.sim_khz())),
        ("mips", JsonValue::Num(perf.mips())),
        ("instructions_per_second", JsonValue::Num(perf.instructions_per_second())),
        ("cycles_per_second", JsonValue::Num(perf.cycles_per_second())),
        ("peak_rss_bytes", perf.peak_rss_bytes.map_or(JsonValue::Null, JsonValue::UInt)),
        ("profile_wall_seconds", JsonValue::Num(profile_wall)),
        ("stage_shares", merged.stage_shares_json()),
        (
            "result_store_entries",
            store_stats.map_or(JsonValue::Null, |s| JsonValue::UInt(s.entries)),
        ),
        (
            "result_store_bytes",
            store_stats.map_or(JsonValue::Null, |s| JsonValue::UInt(s.bytes_on_disk)),
        ),
    ]);
    let record = JsonValue::obj([
        ("date", JsonValue::Str(date.to_string())),
        ("quick", JsonValue::Bool(quick)),
        ("scale", JsonValue::Num(scale)),
        ("points", JsonValue::UInt(points)),
        ("sim", sim.clone()),
        ("host", host),
    ]);
    Ok(BenchRun { record, sim, perf, points })
}

/// Validates a trajectory document; returns its record count.
///
/// # Errors
///
/// Returns a human-readable description of the first schema violation.
pub fn validate_bench_doc(doc: &JsonValue) -> Result<usize, String> {
    match doc.get("schema_version").and_then(JsonValue::as_u64) {
        Some(BENCH_SCHEMA_VERSION) => {}
        other => return Err(format!("schema_version {other:?} != {BENCH_SCHEMA_VERSION}")),
    }
    let Some(JsonValue::Arr(records)) = doc.get("records") else {
        return Err("records: missing or not an array".to_string());
    };
    for (i, rec) in records.iter().enumerate() {
        let ctx = |field: &str| format!("records[{i}].{field}");
        if rec.get("date").and_then(JsonValue::as_str).is_none() {
            return Err(format!("{}: missing or not a string", ctx("date")));
        }
        if rec.get("quick").and_then(JsonValue::as_bool).is_none() {
            return Err(format!("{}: missing or not a bool", ctx("quick")));
        }
        for field in ["scale"] {
            if rec.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("{}: missing or not a number", ctx(field)));
            }
        }
        let Some(sim) = rec.get("sim") else {
            return Err(format!("{}: missing", ctx("sim")));
        };
        for c in SimCounter::ALL {
            if sim.get(c.name()).and_then(JsonValue::as_u64).is_none() {
                return Err(format!(
                    "{}: missing or not an integer",
                    ctx(&format!("sim.{}", c.name()))
                ));
            }
        }
        let Some(host) = rec.get("host") else {
            return Err(format!("{}: missing", ctx("host")));
        };
        for field in ["wall_clock_seconds", "sim_khz", "mips"] {
            if host.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("{}: missing or not a number", ctx(&format!("host.{field}"))));
            }
        }
    }
    Ok(records.len())
}

/// Appends `record` to the trajectory file at `path` (creating it when
/// absent), validating the document before and after. Returns the total
/// record count after the append.
///
/// # Errors
///
/// Fails on unreadable/unparsable existing files, schema violations, and
/// write errors.
pub fn append_record(path: &Path, record: JsonValue) -> Result<usize, String> {
    let mut records = if path.exists() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        validate_bench_doc(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        match doc.get("records") {
            Some(JsonValue::Arr(r)) => r.clone(),
            _ => Vec::new(),
        }
    } else {
        Vec::new()
    };
    records.push(record);
    let count = records.len();
    let doc = JsonValue::obj([
        ("schema_version", JsonValue::UInt(BENCH_SCHEMA_VERSION)),
        ("generator", JsonValue::Str("riq-repro bench".to_string())),
        ("records", JsonValue::Arr(records)),
    ]);
    validate_bench_doc(&doc).map_err(|e| format!("assembled document invalid: {e}"))?;
    std::fs::write(path, doc.to_pretty()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_the_pinned_48_points() {
        let jobs = matrix_jobs(QUICK_SCALE).expect("compiles");
        assert_eq!(jobs.len(), 8 * 2 * 3);
        // All points are distinct — the matrix itself never dedups.
        let keys: std::collections::HashSet<_> = jobs.iter().map(JobSpec::key).collect();
        assert_eq!(keys.len(), jobs.len());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let empty = JsonValue::obj([
            ("schema_version", JsonValue::UInt(BENCH_SCHEMA_VERSION)),
            ("records", JsonValue::Arr(Vec::new())),
        ]);
        assert_eq!(validate_bench_doc(&empty), Ok(0));

        let wrong_version = JsonValue::obj([
            ("schema_version", JsonValue::UInt(99)),
            ("records", JsonValue::Arr(Vec::new())),
        ]);
        assert!(validate_bench_doc(&wrong_version).is_err());

        let bad_record = JsonValue::obj([
            ("schema_version", JsonValue::UInt(BENCH_SCHEMA_VERSION)),
            (
                "records",
                JsonValue::Arr(vec![JsonValue::obj([(
                    "date",
                    JsonValue::Str("2026-01-01".to_string()),
                )])]),
            ),
        ]);
        let err = validate_bench_doc(&bad_record).unwrap_err();
        assert!(err.contains("records[0]"), "{err}");
    }
}
