//! Shared experiment harness: sweeps, aggregation, and table rendering.
//!
//! Every table and figure of the paper is regenerated from the structures
//! here; the `riq-repro` binary and the Criterion benches are thin
//! wrappers. All percentages are reported exactly the way the paper
//! reports them: per-cycle power reductions relative to the conventional
//! baseline at the same issue-queue size, gated cycles as a fraction of
//! total cycles, and IPC degradation relative to the baseline.

use riq_asm::Program;
use riq_core::{BufferingStrategy, Processor, RunResult, SimConfig, SimError};
use riq_kernels::{compile, distribute_kernel, suite_scaled, Kernel};
use riq_power::ComponentGroup;
use std::error::Error;
use std::fmt;

/// The issue-queue sizes swept by the paper's evaluation (§3).
pub const IQ_SIZES: [u32; 4] = [32, 64, 128, 256];

/// Error running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// A kernel failed to compile.
    Compile(riq_kernels::CompileKernelError),
    /// A simulation failed.
    Sim(SimError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "kernel compilation failed: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for ExperimentError {}

impl From<riq_kernels::CompileKernelError> for ExperimentError {
    fn from(e: riq_kernels::CompileKernelError) -> Self {
        ExperimentError::Compile(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// A baseline/reuse pair at one configuration point.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Benchmark name.
    pub kernel: String,
    /// Issue-queue size.
    pub iq: u32,
    /// Conventional-pipeline run.
    pub baseline: RunResult,
    /// Reuse-pipeline run.
    pub reuse: RunResult,
}

impl PairResult {
    /// Fraction of cycles the reuse pipeline had its front-end gated
    /// (Figure 5's y-axis).
    #[must_use]
    pub fn gated_rate(&self) -> f64 {
        self.reuse.stats.gated_rate()
    }

    /// Whole-processor per-cycle power reduction (Figure 7's y-axis).
    #[must_use]
    pub fn overall_power_reduction(&self) -> f64 {
        self.reuse.power.power_reduction_vs(&self.baseline.power)
    }

    /// Per-cycle power reduction of one component group (Figure 6).
    #[must_use]
    pub fn group_power_reduction(&self, g: ComponentGroup) -> f64 {
        self.reuse.power.group_power_reduction_vs(&self.baseline.power, g)
    }

    /// Reuse-overhead power (LRL + NBLT + control) as a fraction of the
    /// reuse pipeline's total (Figure 6's "Overhead" series).
    #[must_use]
    pub fn overhead_share(&self) -> f64 {
        self.reuse.power.group_share(ComponentGroup::Overhead)
    }

    /// IPC degradation of the reuse pipeline (Figure 8's y-axis;
    /// negative means the reuse pipeline was faster).
    #[must_use]
    pub fn ipc_degradation(&self) -> f64 {
        let b = self.baseline.stats.ipc();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.reuse.stats.ipc() / b
        }
    }
}

/// Runs one program on baseline and reuse pipelines at one queue size.
///
/// # Errors
///
/// Propagates any simulation error.
pub fn run_pair(name: &str, program: &Program, iq: u32) -> Result<PairResult, ExperimentError> {
    let baseline = Processor::new(SimConfig::baseline().with_iq_size(iq)).run(program)?;
    let reuse =
        Processor::new(SimConfig::baseline().with_iq_size(iq).with_reuse(true)).run(program)?;
    Ok(PairResult { kernel: name.to_string(), iq, baseline, reuse })
}

/// The full §3 sweep: every Table 2 benchmark at every queue size.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// All points, ordered kernel-major then queue size.
    pub points: Vec<PairResult>,
}

impl Sweep {
    /// Runs the sweep. `scale` multiplies outer trip counts (1.0 =
    /// full-length runs, used for EXPERIMENTS.md; smaller for tests).
    ///
    /// # Errors
    ///
    /// Propagates compile or simulation errors.
    pub fn run(scale: f64) -> Result<Sweep, ExperimentError> {
        let mut points = Vec::new();
        for k in suite_scaled(scale) {
            let program = compile(&k)?;
            for iq in IQ_SIZES {
                points.push(run_pair(&k.name, &program, iq)?);
            }
        }
        Ok(Sweep { points })
    }

    /// The point for a benchmark/size combination.
    #[must_use]
    pub fn point(&self, kernel: &str, iq: u32) -> Option<&PairResult> {
        self.points.iter().find(|p| p.kernel == kernel && p.iq == iq)
    }

    /// Benchmark names in sweep order.
    #[must_use]
    pub fn kernels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.points {
            if !out.contains(&p.kernel) {
                out.push(p.kernel.clone());
            }
        }
        out
    }

    fn per_kernel_metric(&self, f: impl Fn(&PairResult) -> f64) -> FigTable {
        let mut table =
            FigTable::new("benchmark", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
        for k in self.kernels() {
            let row: Vec<f64> =
                IQ_SIZES.iter().map(|&iq| self.point(&k, iq).map_or(0.0, &f)).collect();
            table.push_row(k, row);
        }
        table.push_average();
        table
    }

    /// Figure 5: fraction of total cycles with the front-end gated.
    #[must_use]
    pub fn fig5(&self) -> FigTable {
        self.per_kernel_metric(PairResult::gated_rate)
    }

    /// Figure 6: average per-component power reduction (plus overhead
    /// share) per queue size.
    #[must_use]
    pub fn fig6(&self) -> FigTable {
        let mut table =
            FigTable::new("component", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
        let avg = |f: &dyn Fn(&PairResult) -> f64, iq: u32| -> f64 {
            let vals: Vec<f64> = self.points.iter().filter(|p| p.iq == iq).map(f).collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let groups: [(&str, ComponentGroup); 3] = [
            ("Icache", ComponentGroup::Icache),
            ("Bpred", ComponentGroup::Bpred),
            ("IssueQueue", ComponentGroup::IssueQueue),
        ];
        for (name, g) in groups {
            let row: Vec<f64> = IQ_SIZES
                .iter()
                .map(|&iq| avg(&|p: &PairResult| p.group_power_reduction(g), iq))
                .collect();
            table.push_row(name, row);
        }
        let row: Vec<f64> =
            IQ_SIZES.iter().map(|&iq| avg(&PairResult::overhead_share, iq)).collect();
        table.push_row("Overhead", row);
        table
    }

    /// Figure 7: whole-processor per-cycle power reduction.
    #[must_use]
    pub fn fig7(&self) -> FigTable {
        self.per_kernel_metric(PairResult::overall_power_reduction)
    }

    /// Figure 8: IPC degradation.
    #[must_use]
    pub fn fig8(&self) -> FigTable {
        self.per_kernel_metric(PairResult::ipc_degradation)
    }
}

/// Figure 9: loop distribution at the 64-entry baseline configuration.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Benchmark name.
    pub kernel: String,
    /// Point using the original kernel.
    pub original: PairResult,
    /// Point using the loop-distributed kernel.
    pub optimized: PairResult,
}

/// Runs the Figure 9 experiment.
///
/// # Errors
///
/// Propagates compile or simulation errors.
pub fn fig9(scale: f64) -> Result<Vec<Fig9Point>, ExperimentError> {
    let mut out = Vec::new();
    for k in suite_scaled(scale) {
        let original = run_pair(&k.name, &compile(&k)?, 64)?;
        let opt: Kernel = distribute_kernel(&k);
        let optimized = run_pair(&k.name, &compile(&opt)?, 64)?;
        out.push(Fig9Point { kernel: k.name.clone(), original, optimized });
    }
    Ok(out)
}

/// Renders Figure 9 as a table (power reduction, gated rate, IPC loss for
/// original vs optimized code).
#[must_use]
pub fn fig9_table(points: &[Fig9Point]) -> FigTable {
    let mut t = FigTable::new(
        "benchmark",
        vec![
            "orig Δpower".into(),
            "opt Δpower".into(),
            "orig gated".into(),
            "opt gated".into(),
            "orig ΔIPC".into(),
            "opt ΔIPC".into(),
        ],
    );
    for p in points {
        t.push_row(
            p.kernel.clone(),
            vec![
                p.original.overall_power_reduction(),
                p.optimized.overall_power_reduction(),
                p.original.gated_rate(),
                p.optimized.gated_rate(),
                p.original.ipc_degradation(),
                p.optimized.ipc_degradation(),
            ],
        );
    }
    t.push_average();
    t
}

/// The §3 NBLT ablation: buffering revoke rate with and without the
/// 8-entry table, per benchmark at the baseline configuration.
///
/// # Errors
///
/// Propagates compile or simulation errors.
pub fn nblt_ablation(scale: f64) -> Result<FigTable, ExperimentError> {
    let mut t = FigTable::new(
        "benchmark",
        vec!["revoke rate (no NBLT)".into(), "revoke rate (NBLT 8)".into()],
    );
    for k in suite_scaled(scale) {
        let program = compile(&k)?;
        let without =
            Processor::new(SimConfig::baseline().with_reuse(true).with_nblt(0)).run(&program)?;
        let with =
            Processor::new(SimConfig::baseline().with_reuse(true).with_nblt(8)).run(&program)?;
        t.push_row(
            k.name.clone(),
            vec![without.stats.reuse.revoke_rate(), with.stats.reuse.revoke_rate()],
        );
    }
    t.push_average();
    Ok(t)
}

/// The §2.2.1 buffering-strategy ablation: gated rate under
/// single-iteration vs multi-iteration buffering at each queue size,
/// averaged over the suite.
///
/// # Errors
///
/// Propagates compile or simulation errors.
pub fn strategy_ablation(scale: f64) -> Result<FigTable, ExperimentError> {
    let mut rows: Vec<(String, Vec<f64>)> =
        vec![("single-iteration".into(), Vec::new()), ("multi-iteration".into(), Vec::new())];
    let kernels: Vec<(Kernel, Program)> = suite_scaled(scale)
        .into_iter()
        .map(|k| compile(&k).map(|p| (k, p)))
        .collect::<Result<_, _>>()?;
    for iq in IQ_SIZES {
        for (row, strategy) in
            [(0, BufferingStrategy::SingleIteration), (1, BufferingStrategy::MultiIteration)]
        {
            let mut acc = 0.0;
            for (_, program) in &kernels {
                let r = Processor::new(
                    SimConfig::baseline().with_iq_size(iq).with_reuse(true).with_strategy(strategy),
                )
                .run(program)?;
                acc += r.stats.gated_rate();
            }
            rows[row].1.push(acc / kernels.len() as f64);
        }
    }
    let mut t = FigTable::new("strategy", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
    for (name, vals) in rows {
        t.push_row(name, vals);
    }
    Ok(t)
}

/// Loop-transformation ablation: average gated rate of the reuse pipeline
/// per queue size under four code versions — original, distributed
/// (Section 4), unrolled ×4, and distributed-then-refused (the inverse
/// transform, re-creating fat bodies). Shows how each transform "gears the
/// code towards a given issue queue size" (paper conclusions).
///
/// # Errors
///
/// Propagates compile or simulation errors.
pub fn transform_ablation(scale: f64) -> Result<FigTable, ExperimentError> {
    use riq_kernels::{distribute_kernel, fuse_kernel, unroll_kernel};
    let base = suite_scaled(scale);
    let versions: Vec<(&str, Vec<Kernel>)> = vec![
        ("original", base.clone()),
        ("distributed", base.iter().map(distribute_kernel).collect()),
        ("unrolled x4", base.iter().map(|k| unroll_kernel(k, 4)).collect()),
        ("distributed+fused", base.iter().map(|k| fuse_kernel(&distribute_kernel(k))).collect()),
    ];
    let mut t =
        FigTable::new("code version", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
    for (name, kernels) in versions {
        let programs: Vec<Program> = kernels.iter().map(compile).collect::<Result<_, _>>()?;
        let mut row = Vec::new();
        for iq in IQ_SIZES {
            let mut acc = 0.0;
            for program in &programs {
                let r = Processor::new(SimConfig::baseline().with_iq_size(iq).with_reuse(true))
                    .run(program)?;
                acc += r.stats.gated_rate();
            }
            row.push(acc / programs.len() as f64);
        }
        t.push_row(name, row);
    }
    Ok(t)
}

/// Direction-predictor ablation (the gshare extension DESIGN.md calls
/// out): per-predictor average mispredict-recovery rate on the baseline
/// pipeline and gated rate on the reuse pipeline, at the Table 1
/// configuration.
///
/// # Errors
///
/// Propagates compile or simulation errors.
pub fn bpred_ablation(scale: f64) -> Result<FigTable, ExperimentError> {
    use riq_bpred::DirPredictorKind;
    let kernels: Vec<(Kernel, Program)> = suite_scaled(scale)
        .into_iter()
        .map(|k| compile(&k).map(|p| (k, p)))
        .collect::<Result<_, _>>()?;
    let mut t = FigTable::new(
        "predictor",
        vec!["mispredict rate (base)".into(), "gated rate (reuse)".into()],
    );
    let dirs: [(&str, DirPredictorKind); 4] = [
        ("bimod-2048", DirPredictorKind::Bimod { entries: 2048 }),
        ("gshare-2048", DirPredictorKind::Gshare { entries: 2048, history_bits: 10 }),
        ("always-taken", DirPredictorKind::Taken),
        ("always-not-taken", DirPredictorKind::NotTaken),
    ];
    for (name, dir) in dirs {
        let mut cfg = SimConfig::baseline();
        cfg.bpred.dir = dir;
        let mut mispred = 0.0;
        let mut gated = 0.0;
        for (_, program) in &kernels {
            let base = Processor::new(cfg.clone()).run(program)?;
            mispred += base.stats.mispredict_rate();
            let reuse = Processor::new(cfg.clone().with_reuse(true)).run(program)?;
            gated += reuse.stats.gated_rate();
        }
        let n = kernels.len() as f64;
        t.push_row(name, vec![mispred / n, gated / n]);
    }
    Ok(t)
}

/// A generic named-rows × named-columns table of fractions, rendered as
/// percentages.
#[derive(Debug, Clone)]
pub struct FigTable {
    row_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl FigTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(row_label: impl Into<String>, columns: Vec<String>) -> FigTable {
        FigTable { row_label: row_label.into(), columns, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((name.into(), values));
    }

    /// Appends an `average` row over the existing rows.
    pub fn push_average(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let n = self.rows.len() as f64;
        let avg: Vec<f64> = (0..self.columns.len())
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(("average".into(), avg));
    }

    /// Column headers.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The value at (row name, column index).
    #[must_use]
    pub fn value(&self, row: &str, col: usize) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == row).and_then(|(_, v)| v.get(col).copied())
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Renders the table as CSV (fractions, not percentages) for external
    /// plotting tools.
    ///
    /// # Examples
    ///
    /// ```
    /// use riq_bench::FigTable;
    /// let mut t = FigTable::new("bench", vec!["IQ 32".into()]);
    /// t.push_row("aps", vec![0.5]);
    /// assert_eq!(t.to_csv(), "bench,IQ 32\naps,0.5\n");
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(name);
            for v in vals {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w0 =
            self.rows.iter().map(|(n, _)| n.len()).chain([self.row_label.len()]).max().unwrap_or(8)
                + 2;
        write!(f, "{:w0$}", self.row_label)?;
        for c in &self.columns {
            write!(f, "{c:>14}")?;
        }
        writeln!(f)?;
        for (name, vals) in &self.rows {
            write!(f, "{name:w0$}")?;
            for v in vals {
                write!(f, "{:>13.1}%", v * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_table_renders_and_averages() {
        let mut t = FigTable::new("bench", vec!["IQ 32".into(), "IQ 64".into()]);
        t.push_row("a", vec![0.5, 0.75]);
        t.push_row("b", vec![0.25, 0.25]);
        t.push_average();
        assert_eq!(t.value("average", 0), Some(0.375));
        assert_eq!(t.value("average", 1), Some(0.5));
        let s = t.to_string();
        assert!(s.contains("50.0%"), "{s}");
        assert!(s.contains("average"), "{s}");
        assert_eq!(t.value("missing", 0), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = FigTable::new("x", vec!["a".into()]);
        t.push_row("r", vec![1.0, 2.0]);
    }

    #[test]
    fn empty_average_is_noop() {
        let mut t = FigTable::new("x", vec!["a".into()]);
        t.push_average();
        assert!(t.rows().is_empty());
    }
}
