//! Sweep aggregation and table rendering.
//!
//! Every table and figure of the paper is regenerated from the structures
//! here; the `riq-repro` binary and the Criterion benches are thin
//! wrappers. Simulation points are enumerated as [`JobSpec`]s and executed
//! by the parallel [engine](crate::run_jobs); this module owns the
//! aggregation back into paper-shaped tables. All percentages are reported
//! exactly the way the paper reports them: per-cycle power reductions
//! relative to the conventional baseline at the same issue-queue size,
//! gated cycles as a fraction of total cycles, and IPC degradation
//! relative to the baseline.

use crate::engine::{run_jobs, EngineOptions, ExperimentError, JobSpec};
use riq_asm::Program;
use riq_core::{Processor, RunResult, SimConfig};
use riq_kernels::{compile, distribute_kernel, suite_scaled, Kernel};
use riq_power::ComponentGroup;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The issue-queue sizes swept by the paper's evaluation (§3).
pub const IQ_SIZES: [u32; 4] = [32, 64, 128, 256];

/// The issue-queue sizes swept by the policy × EDP scorecard
/// ([`Experiment::PolicyEdp`](crate::Experiment)): the paper's four sizes
/// plus a 16-entry point where scheduling pressure is highest.
pub const POLICY_IQ_SIZES: [u32; 5] = [16, 32, 64, 128, 256];

/// A baseline/reuse pair at one configuration point.
///
/// The two runs are shared with the engine's result cache, so holding a
/// sweep does not duplicate result storage.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Benchmark name.
    pub kernel: String,
    /// Issue-queue size.
    pub iq: u32,
    /// Conventional-pipeline run.
    pub baseline: Arc<RunResult>,
    /// Reuse-pipeline run.
    pub reuse: Arc<RunResult>,
}

impl PairResult {
    /// Fraction of cycles the reuse pipeline had its front-end gated
    /// (Figure 5's y-axis).
    #[must_use]
    pub fn gated_rate(&self) -> f64 {
        self.reuse.stats.gated_rate()
    }

    /// Whole-processor per-cycle power reduction (Figure 7's y-axis).
    #[must_use]
    pub fn overall_power_reduction(&self) -> f64 {
        self.reuse.power.power_reduction_vs(&self.baseline.power)
    }

    /// Per-cycle power reduction of one component group (Figure 6).
    #[must_use]
    pub fn group_power_reduction(&self, g: ComponentGroup) -> f64 {
        self.reuse.power.group_power_reduction_vs(&self.baseline.power, g)
    }

    /// Reuse-overhead power (LRL + NBLT + control) as a fraction of the
    /// reuse pipeline's total (Figure 6's "Overhead" series).
    #[must_use]
    pub fn overhead_share(&self) -> f64 {
        self.reuse.power.group_share(ComponentGroup::Overhead)
    }

    /// IPC degradation of the reuse pipeline (Figure 8's y-axis;
    /// negative means the reuse pipeline was faster).
    #[must_use]
    pub fn ipc_degradation(&self) -> f64 {
        let b = self.baseline.stats.ipc();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.reuse.stats.ipc() / b
        }
    }
}

/// Runs one program on baseline and reuse pipelines at one queue size.
///
/// # Errors
///
/// Propagates any simulation error.
pub fn run_pair(name: &str, program: &Program, iq: u32) -> Result<PairResult, ExperimentError> {
    let sim = |reuse: bool| {
        Processor::new(SimConfig::baseline().with_iq_size(iq).with_reuse(reuse))
            .run(program)
            .map(Arc::new)
            .map_err(|source| ExperimentError::Sim { kernel: name.to_string(), source })
    };
    Ok(PairResult { kernel: name.to_string(), iq, baseline: sim(false)?, reuse: sim(true)? })
}

/// The full §3 sweep: every Table 2 benchmark at every queue size, on both
/// pipelines. Backs Figures 5 through 8.
#[derive(Debug, Clone)]
pub struct Sweep {
    points: Vec<PairResult>,
    index: HashMap<(String, u32), usize>,
}

impl Sweep {
    /// Runs the sweep through the parallel engine. `scale` multiplies
    /// outer trip counts (1.0 = full-length runs, used for EXPERIMENTS.md;
    /// smaller for tests).
    ///
    /// # Errors
    ///
    /// Propagates compile or simulation errors.
    pub fn run_with(scale: f64, opts: &EngineOptions) -> Result<Sweep, ExperimentError> {
        let mut jobs = Vec::new();
        let mut meta = Vec::new();
        for k in suite_scaled(scale) {
            let program = Arc::new(compile(&k)?);
            for iq in IQ_SIZES {
                let base = SimConfig::baseline().with_iq_size(iq);
                jobs.push(JobSpec::new(&k.name, &program, base.clone()));
                jobs.push(JobSpec::new(&k.name, &program, base.with_reuse(true)));
                meta.push((k.name.clone(), iq));
            }
        }
        let results = run_jobs(&jobs, opts)?;
        let points = meta
            .into_iter()
            .zip(results.chunks_exact(2))
            .map(|((kernel, iq), pair)| PairResult {
                kernel,
                iq,
                baseline: Arc::clone(&pair[0]),
                reuse: Arc::clone(&pair[1]),
            })
            .collect();
        Ok(Sweep::from_points(points))
    }

    fn from_points(points: Vec<PairResult>) -> Sweep {
        let index = points
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.kernel.clone(), p.iq), i))
            .collect::<HashMap<_, _>>();
        Sweep { points, index }
    }

    /// All points, ordered kernel-major then queue size.
    #[must_use]
    pub fn points(&self) -> &[PairResult] {
        &self.points
    }

    /// The point for a benchmark/size combination (indexed lookup).
    #[must_use]
    pub fn point(&self, kernel: &str, iq: u32) -> Option<&PairResult> {
        self.index.get(&(kernel.to_string(), iq)).map(|&i| &self.points[i])
    }

    /// Benchmark names in sweep order.
    #[must_use]
    pub fn kernels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.points {
            if !out.contains(&p.kernel) {
                out.push(p.kernel.clone());
            }
        }
        out
    }

    fn per_kernel_metric(
        &self,
        f: impl Fn(&PairResult) -> f64,
    ) -> Result<FigTable, ExperimentError> {
        let mut table =
            FigTable::new("benchmark", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
        for k in self.kernels() {
            let row = IQ_SIZES
                .iter()
                .map(|&iq| {
                    self.point(&k, iq)
                        .map(&f)
                        .ok_or_else(|| ExperimentError::MissingPoint { kernel: k.clone(), iq })
                })
                .collect::<Result<Vec<f64>, _>>()?;
            table.push_row(k, row);
        }
        table.push_average();
        Ok(table)
    }

    /// Figure 5: fraction of total cycles with the front-end gated.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::MissingPoint`] if the sweep is missing a
    /// (kernel, queue-size) combination (a partial sweep must not be
    /// silently averaged as zeros).
    pub fn fig5(&self) -> Result<FigTable, ExperimentError> {
        self.per_kernel_metric(PairResult::gated_rate)
    }

    /// Figure 6: average per-component power reduction (plus overhead
    /// share) per queue size.
    #[must_use]
    pub fn fig6(&self) -> FigTable {
        let mut table =
            FigTable::new("component", IQ_SIZES.iter().map(|iq| format!("IQ {iq}")).collect());
        let avg = |f: &dyn Fn(&PairResult) -> f64, iq: u32| -> f64 {
            let vals: Vec<f64> = self.points.iter().filter(|p| p.iq == iq).map(f).collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let groups: [(&str, ComponentGroup); 3] = [
            ("Icache", ComponentGroup::Icache),
            ("Bpred", ComponentGroup::Bpred),
            ("IssueQueue", ComponentGroup::IssueQueue),
        ];
        for (name, g) in groups {
            let row: Vec<f64> = IQ_SIZES
                .iter()
                .map(|&iq| avg(&|p: &PairResult| p.group_power_reduction(g), iq))
                .collect();
            table.push_row(name, row);
        }
        let row: Vec<f64> =
            IQ_SIZES.iter().map(|&iq| avg(&PairResult::overhead_share, iq)).collect();
        table.push_row("Overhead", row);
        table
    }

    /// Figure 7: whole-processor per-cycle power reduction.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::MissingPoint`] for a partial sweep.
    pub fn fig7(&self) -> Result<FigTable, ExperimentError> {
        self.per_kernel_metric(PairResult::overall_power_reduction)
    }

    /// Figure 8: IPC degradation.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::MissingPoint`] for a partial sweep.
    pub fn fig8(&self) -> Result<FigTable, ExperimentError> {
        self.per_kernel_metric(PairResult::ipc_degradation)
    }
}

/// Figure 9: loop distribution at the 64-entry baseline configuration.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Benchmark name.
    pub kernel: String,
    /// Point using the original kernel.
    pub original: PairResult,
    /// Point using the loop-distributed kernel.
    pub optimized: PairResult,
}

/// Runs the Figure 9 experiment through the parallel engine.
///
/// # Errors
///
/// Propagates compile or simulation errors.
pub fn fig9_points(scale: f64, opts: &EngineOptions) -> Result<Vec<Fig9Point>, ExperimentError> {
    let mut jobs = Vec::new();
    let mut names = Vec::new();
    for k in suite_scaled(scale) {
        let original = Arc::new(compile(&k)?);
        let optimized = Arc::new(compile(&distribute_kernel(&k))?);
        let base = SimConfig::baseline().with_iq_size(64);
        jobs.push(JobSpec::new(&k.name, &original, base.clone()));
        jobs.push(JobSpec::new(&k.name, &original, base.clone().with_reuse(true)));
        jobs.push(JobSpec::new(format!("{} [dist]", k.name), &optimized, base.clone()));
        jobs.push(JobSpec::new(format!("{} [dist]", k.name), &optimized, base.with_reuse(true)));
        names.push(k.name.clone());
    }
    let results = run_jobs(&jobs, opts)?;
    Ok(names
        .into_iter()
        .zip(results.chunks_exact(4))
        .map(|(kernel, r)| Fig9Point {
            original: PairResult {
                kernel: kernel.clone(),
                iq: 64,
                baseline: Arc::clone(&r[0]),
                reuse: Arc::clone(&r[1]),
            },
            optimized: PairResult {
                kernel: kernel.clone(),
                iq: 64,
                baseline: Arc::clone(&r[2]),
                reuse: Arc::clone(&r[3]),
            },
            kernel,
        })
        .collect())
}

/// Renders Figure 9 as a table (power reduction, gated rate, IPC loss for
/// original vs optimized code).
#[must_use]
pub fn fig9_table(points: &[Fig9Point]) -> FigTable {
    let mut t = FigTable::new(
        "benchmark",
        vec![
            "orig Δpower".into(),
            "opt Δpower".into(),
            "orig gated".into(),
            "opt gated".into(),
            "orig ΔIPC".into(),
            "opt ΔIPC".into(),
        ],
    );
    for p in points {
        t.push_row(
            p.kernel.clone(),
            vec![
                p.original.overall_power_reduction(),
                p.optimized.overall_power_reduction(),
                p.original.gated_rate(),
                p.optimized.gated_rate(),
                p.original.ipc_degradation(),
                p.optimized.ipc_degradation(),
            ],
        );
    }
    t.push_average();
    t
}

/// Compiles the suite at `scale`, pairing each kernel with its shared
/// program image (compiled once per kernel, shared by every job).
pub(crate) fn compiled_suite(scale: f64) -> Result<Vec<(Kernel, Arc<Program>)>, ExperimentError> {
    suite_scaled(scale)
        .into_iter()
        .map(|k| compile(&k).map(|p| (k, Arc::new(p))).map_err(ExperimentError::from))
        .collect()
}

/// A generic named-rows × named-columns table of fractions, rendered as
/// percentages — or, for tables that mix units (the policy × EDP
/// scorecard carries raw IPC, joules, and joule-cycles), as raw values
/// ([`FigTable::with_raw_values`]). CSV output is unit-agnostic either
/// way.
#[derive(Debug, Clone)]
pub struct FigTable {
    row_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    percent: bool,
}

impl FigTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(row_label: impl Into<String>, columns: Vec<String>) -> FigTable {
        FigTable { row_label: row_label.into(), columns, rows: Vec::new(), percent: true }
    }

    /// Switches the human rendering from percentages to raw values
    /// (`1.956`, `7.803e7`); [`FigTable::to_csv`] is unaffected.
    #[must_use]
    pub fn with_raw_values(mut self) -> FigTable {
        self.percent = false;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((name.into(), values));
    }

    /// Appends an `average` row over the existing rows.
    pub fn push_average(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let n = self.rows.len() as f64;
        let avg: Vec<f64> = (0..self.columns.len())
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(("average".into(), avg));
    }

    /// Column headers.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The value at (row name, column index).
    #[must_use]
    pub fn value(&self, row: &str, col: usize) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == row).and_then(|(_, v)| v.get(col).copied())
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Extracts the rows whose names start with `"{prefix}/"` into a new
    /// table, stripping the prefix. Stacked tables (like the one
    /// [`Experiment::Fig5_8`](crate::Experiment::Fig5_8) produces) use
    /// `"fig5/aps"`-style row names; this recovers the per-figure view.
    ///
    /// # Examples
    ///
    /// ```
    /// use riq_bench::FigTable;
    /// let mut t = FigTable::new("row", vec!["IQ 32".into()]);
    /// t.push_row("fig5/aps", vec![0.5]);
    /// t.push_row("fig6/Icache", vec![0.25]);
    /// let fig5 = t.sub_table("fig5", "benchmark");
    /// assert_eq!(fig5.value("aps", 0), Some(0.5));
    /// assert_eq!(fig5.rows().len(), 1);
    /// ```
    #[must_use]
    pub fn sub_table(&self, prefix: &str, row_label: impl Into<String>) -> FigTable {
        let mut out = FigTable::new(row_label, self.columns.clone());
        out.percent = self.percent;
        let prefix = format!("{prefix}/");
        for (name, vals) in &self.rows {
            if let Some(stripped) = name.strip_prefix(&prefix) {
                out.push_row(stripped, vals.clone());
            }
        }
        out
    }

    /// Appends every row of `other`, renamed to `"{prefix}/{name}"`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn push_prefixed(&mut self, prefix: &str, other: &FigTable) {
        for (name, vals) in other.rows() {
            self.push_row(format!("{prefix}/{name}"), vals.clone());
        }
    }

    /// Renders the table as CSV (fractions, not percentages) for external
    /// plotting tools.
    ///
    /// # Examples
    ///
    /// ```
    /// use riq_bench::FigTable;
    /// let mut t = FigTable::new("bench", vec!["IQ 32".into()]);
    /// t.push_row("aps", vec![0.5]);
    /// assert_eq!(t.to_csv(), "bench,IQ 32\naps,0.5\n");
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(name);
            for v in vals {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w0 =
            self.rows.iter().map(|(n, _)| n.len()).chain([self.row_label.len()]).max().unwrap_or(8)
                + 2;
        write!(f, "{:w0$}", self.row_label)?;
        for c in &self.columns {
            write!(f, "{c:>14}")?;
        }
        writeln!(f)?;
        for (name, vals) in &self.rows {
            write!(f, "{name:w0$}")?;
            for &v in vals {
                if self.percent {
                    write!(f, "{:>13.1}%", v * 100.0)?;
                } else if v != 0.0 && (v.abs() >= 1e6 || v.abs() < 1e-3) {
                    write!(f, "{v:>14.3e}")?;
                } else {
                    write!(f, "{v:>14.4}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_table_renders_and_averages() {
        let mut t = FigTable::new("bench", vec!["IQ 32".into(), "IQ 64".into()]);
        t.push_row("a", vec![0.5, 0.75]);
        t.push_row("b", vec![0.25, 0.25]);
        t.push_average();
        assert_eq!(t.value("average", 0), Some(0.375));
        assert_eq!(t.value("average", 1), Some(0.5));
        let s = t.to_string();
        assert!(s.contains("50.0%"), "{s}");
        assert!(s.contains("average"), "{s}");
        assert_eq!(t.value("missing", 0), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = FigTable::new("x", vec!["a".into()]);
        t.push_row("r", vec![1.0, 2.0]);
    }

    #[test]
    fn empty_average_is_noop() {
        let mut t = FigTable::new("x", vec!["a".into()]);
        t.push_average();
        assert!(t.rows().is_empty());
    }

    #[test]
    fn sub_table_round_trips_prefixed_rows() {
        let mut inner = FigTable::new("benchmark", vec!["IQ 32".into()]);
        inner.push_row("aps", vec![0.5]);
        inner.push_row("average", vec![0.5]);
        let mut stacked = FigTable::new("row", vec!["IQ 32".into()]);
        stacked.push_prefixed("fig5", &inner);
        let back = stacked.sub_table("fig5", "benchmark");
        assert_eq!(back.to_csv(), inner.to_csv());
        assert!(stacked.sub_table("fig7", "benchmark").rows().is_empty());
    }

    #[test]
    fn missing_point_is_an_error_not_a_zero() {
        // A sweep with a hole must refuse to render, not average a 0.0 in.
        let program = riq_asm::assemble("  halt\n").expect("assembles");
        let pair = run_pair("lone", &program, 32).expect("runs");
        let sweep = Sweep::from_points(vec![pair]);
        match sweep.fig5() {
            Err(ExperimentError::MissingPoint { kernel, iq }) => {
                assert_eq!(kernel, "lone");
                assert_eq!(iq, 64, "first missing size after the one present");
            }
            other => panic!("expected MissingPoint, got {other:?}"),
        }
    }

    #[test]
    fn point_lookup_uses_the_index() {
        let program = riq_asm::assemble("  halt\n").expect("assembles");
        let points: Vec<PairResult> =
            IQ_SIZES.iter().map(|&iq| run_pair("k", &program, iq).expect("runs")).collect();
        let sweep = Sweep::from_points(points);
        for &iq in &IQ_SIZES {
            assert_eq!(sweep.point("k", iq).map(|p| p.iq), Some(iq));
        }
        assert!(sweep.point("k", 48).is_none());
        assert!(sweep.point("other", 64).is_none());
    }
}
