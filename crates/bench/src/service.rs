//! The `riq-serve` daemon: simulation-as-a-service over the experiment
//! engine.
//!
//! This is the *policy* half of the service; the mechanisms — blob codec,
//! durable content-addressed [`ResultStore`], leased [`JobQueue`], the
//! HTTP plumbing, and the worker loop — live in the `riq-serve` crate.
//! The daemon composes them:
//!
//! * `POST /sweeps` registers an [`Experiment`] (by label) or a raw job
//!   list and runs it on a background thread through the ordinary
//!   [`run_experiment`]/[`run_jobs`] path, with a [`QueueExecutor`]
//!   installed as the engine's [`JobExecutor`] backend;
//! * the executor resolves every point it can from the store (a warm
//!   store means *zero* new simulations), pins the remaining keys so LRU
//!   eviction can never drop an in-flight sweep's dependencies, enqueues
//!   them once (cross-client dedup happens inside the queue), and blocks
//!   until workers deliver;
//! * worker processes lease jobs over `POST /lease`, simulate them with
//!   the engine's exact unprofiled path, and report over
//!   `POST /complete` / `POST /fail`; expired leases requeue, so a
//!   SIGKILLed worker's jobs simply run again elsewhere;
//! * `GET /sweeps/{id}` reports progress and an ETA derived from the
//!   per-worker speed accounting ([`riq_metrics::PerfBlock`]), and
//!   `GET /sweeps/{id}/csv` returns the finished table — byte-identical
//!   to what an in-process `run_experiment` prints, because it *is* the
//!   in-process aggregation, fed deterministic results by key.
//!
//! Determinism argument, in one paragraph: the simulator is a pure
//! function of `(program, config, skip, warmup)`, which is exactly the
//! store/queue key. Workers recompute that function; the store persists
//! it; the engine aggregates by job index after the executor returns one
//! result per job in order. Worker count, lease schedule, kill/restart
//! timing, and store temperature only change *where* a result comes
//! from, never its bytes — so the CSV cannot change either
//! (`tests/serve_determinism.rs` holds this invariant).

use crate::engine::{
    run_jobs, EngineOptions, ExperimentError, JobExecutor, JobKey, JobSpec, ResultCache,
};
use crate::experiment::{run_experiment, Experiment};
use riq_asm::Program;
use riq_core::{RunResult, SimConfig};
use riq_metrics::PerfBlock;
use riq_serve::{
    decode_result, encode_job, serve_on, JobBlob, JobQueue, JobState, QueueConfig, Request,
    Response, ResultStore, ServerHandle,
};
use riq_trace::{parse, EventKind, JsonValue, JsonlSink, TraceEvent, TraceSink};
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Path of the durable result store (a single append-only journal
    /// file; created, with parent directories, when absent).
    pub store_path: PathBuf,
    /// LRU eviction budget for the store; `None` never evicts.
    pub store_max_bytes: Option<u64>,
    /// Lease lifetime and retry policy of the job queue.
    pub queue: QueueConfig,
    /// When set, every queue transition is appended to this file as a
    /// JSONL trace (`job_queued`/`job_leased`/`job_completed`/
    /// `job_requeued`/`job_failed` events).
    pub trace_path: Option<PathBuf>,
}

impl DaemonOptions {
    /// Options with the default queue policy and no eviction budget.
    #[must_use]
    pub fn new(store_path: impl Into<PathBuf>) -> DaemonOptions {
        DaemonOptions {
            store_path: store_path.into(),
            store_max_bytes: None,
            queue: QueueConfig::default(),
            trace_path: None,
        }
    }
}

/// Everything a worker needs to simulate one distinct point, kept by
/// content address so concurrent sweeps sharing a point register it once.
struct Payload {
    kernel: String,
    program: Arc<Program>,
    config: SimConfig,
    skip: u64,
    warmup: u64,
}

/// Terminal/running status of a registered sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SweepStatus {
    Running,
    Done,
    Failed(String),
}

impl SweepStatus {
    fn label(&self) -> &'static str {
        match self {
            SweepStatus::Running => "running",
            SweepStatus::Done => "done",
            SweepStatus::Failed(_) => "failed",
        }
    }
}

/// Bookkeeping for one submitted sweep.
struct SweepEntry {
    label: String,
    scale: f64,
    /// Work units handed to the executor; `0` until the experiment has
    /// enumerated and deduplicated its points.
    total: usize,
    /// Points answered by the store without queueing anything.
    from_store: usize,
    /// Queue ids of the points that did need simulating.
    job_ids: Vec<u64>,
    status: SweepStatus,
    csv: Option<String>,
    report: Option<String>,
}

/// Per-worker completion accounting, fed by `POST /complete` and read by
/// `/statsz` and the sweep ETA.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerPerf {
    completed: u64,
    sim_cycles: u64,
    sim_insts: u64,
    wall_nanos: u64,
}

/// Shared daemon state behind the HTTP handler, the sweep threads, and
/// the executor.
struct DaemonState {
    queue: JobQueue,
    store: Mutex<ResultStore>,
    payloads: Mutex<HashMap<JobKey, Payload>>,
    sweeps: Mutex<BTreeMap<u64, SweepEntry>>,
    next_sweep: AtomicU64,
    worker_perf: Mutex<BTreeMap<String, WorkerPerf>>,
    worker_ids: Mutex<HashMap<String, u64>>,
    trace: Mutex<Option<JsonlSink<File>>>,
    trace_seq: AtomicU64,
    started: Instant,
}

/// Locks tolerating poison: every structure here is left consistent by
/// construction (single-call mutations), so a panicking peer thread must
/// not take the daemon down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl DaemonState {
    fn emit(&self, kind: EventKind) {
        let mut guard = lock(&self.trace);
        if let Some(sink) = guard.as_mut() {
            let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
            sink.record(TraceEvent::new(seq, kind));
        }
    }

    /// Stable numeric identity for a worker name (trace events carry
    /// numbers, not strings).
    fn worker_ordinal(&self, name: &str) -> u64 {
        let mut ids = lock(&self.worker_ids);
        let next = ids.len() as u64 + 1;
        *ids.entry(name.to_string()).or_insert(next)
    }
}

/// The engine backend: turns the deduplicated pending batch of a sweep
/// into store lookups plus queue submissions, and blocks until every
/// point is terminal.
struct QueueExecutor {
    state: Arc<DaemonState>,
    sweep_id: u64,
    priority: i64,
}

impl JobExecutor for QueueExecutor {
    fn execute(
        &self,
        jobs: &[JobSpec],
        skip: u64,
        warmup: u64,
    ) -> Result<Vec<Arc<RunResult>>, ExperimentError> {
        let state = &self.state;
        let mut slots: Vec<Option<Arc<RunResult>>> = vec![None; jobs.len()];
        let mut pinned: Vec<JobKey> = Vec::with_capacity(jobs.len());
        // (slot, job id, key, kernel label) for every point the store
        // could not answer.
        let mut waiting: Vec<(usize, u64, JobKey, String)> = Vec::new();
        for (i, spec) in jobs.iter().enumerate() {
            let key = spec.key_with(skip, warmup);
            let mut store = lock(&state.store);
            // Pin before looking: between a miss and the completion that
            // fills it, eviction must treat the key's future entry as
            // load-bearing.
            store.pin(&key);
            pinned.push(key);
            if let Some(result) = store.get(&key) {
                slots[i] = Some(result);
                continue;
            }
            drop(store);
            let (eff_skip, eff_warmup) = if skip == 0 { (0, 0) } else { (skip, warmup) };
            lock(&state.payloads).entry(key).or_insert_with(|| Payload {
                kernel: spec.kernel.clone(),
                program: Arc::clone(&spec.program),
                config: spec.config.clone(),
                skip: eff_skip,
                warmup: eff_warmup,
            });
            let (job_id, fresh) = state.queue.submit(key, self.priority);
            if fresh {
                state.emit(EventKind::JobQueued { job: job_id, sweep: self.sweep_id });
            }
            waiting.push((i, job_id, key, spec.kernel.clone()));
        }

        {
            let mut sweeps = lock(&state.sweeps);
            if let Some(entry) = sweeps.get_mut(&self.sweep_id) {
                entry.total = jobs.len();
                entry.from_store = jobs.len() - waiting.len();
                entry.job_ids = waiting.iter().map(|w| w.1).collect();
            }
        }

        let ids: Vec<u64> = waiting.iter().map(|w| w.1).collect();
        let states = loop {
            if let Some(states) = state.queue.wait_done(&ids, Duration::from_secs(3600)) {
                break states;
            }
        };

        // Waiting is in slot (= job) order, so the first failure found is
        // the lowest-indexed one — matching the in-process engine's error
        // selection.
        let mut failure: Option<ExperimentError> = None;
        for ((slot, job_id, key, kernel), job_state) in waiting.iter().zip(states) {
            match job_state {
                JobState::Done => match lock(&state.store).get(key) {
                    Some(result) => slots[*slot] = Some(result),
                    None => {
                        if failure.is_none() {
                            failure = Some(ExperimentError::JobFailed {
                                kernel: kernel.clone(),
                                message: format!("job {job_id}: result missing from store"),
                            });
                        }
                    }
                },
                JobState::Failed { message } => {
                    if failure.is_none() {
                        failure =
                            Some(ExperimentError::JobFailed { kernel: kernel.clone(), message });
                    }
                }
                other => {
                    // `wait_done` only returns terminal states; anything
                    // else is a queue invariant violation.
                    if failure.is_none() {
                        failure = Some(ExperimentError::JobFailed {
                            kernel: kernel.clone(),
                            message: format!("job {job_id}: non-terminal state {other:?}"),
                        });
                    }
                }
            }
        }
        {
            let mut store = lock(&state.store);
            for key in &pinned {
                store.unpin(key);
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(slots.into_iter().map(|s| s.expect("every slot resolved")).collect())
    }
}

/// Resolves a sweep label (the `riq-repro` experiment command names) to
/// its [`Experiment`].
#[must_use]
pub fn experiment_from_label(label: &str, scale: f64) -> Option<Experiment> {
    Some(match label {
        "fig5-8" => Experiment::Fig5_8 { scale },
        "fig9" => Experiment::Fig9 { scale },
        "nblt" => Experiment::NbltAblation { scale },
        "strategy" => Experiment::StrategyAblation { scale },
        "transforms" => Experiment::TransformAblation { scale },
        "bpred" => Experiment::BpredAblation { scale },
        "policy-edp" => Experiment::PolicyEdp { scale },
        _ => return None,
    })
}

/// Engine options for a sweep thread: a fresh cache (the store is the
/// persistent dedup layer) and the queue-backed executor.
fn sweep_engine_options(executor: Arc<QueueExecutor>, skip: u64, warmup: u64) -> EngineOptions {
    EngineOptions {
        jobs: 1,
        cache: ResultCache::new(),
        skip,
        warmup,
        ckpt: None,
        executor: Some(executor),
        ..EngineOptions::default()
    }
}

fn register_sweep(state: &Arc<DaemonState>, label: String, scale: f64) -> u64 {
    let sweep_id = state.next_sweep.fetch_add(1, Ordering::Relaxed) + 1;
    lock(&state.sweeps).insert(
        sweep_id,
        SweepEntry {
            label,
            scale,
            total: 0,
            from_store: 0,
            job_ids: Vec::new(),
            status: SweepStatus::Running,
            csv: None,
            report: None,
        },
    );
    sweep_id
}

fn finish_sweep(
    state: &Arc<DaemonState>,
    sweep_id: u64,
    outcome: Result<(String, String), String>,
) {
    let mut sweeps = lock(&state.sweeps);
    if let Some(entry) = sweeps.get_mut(&sweep_id) {
        match outcome {
            Ok((csv, report)) => {
                entry.csv = Some(csv);
                entry.report = Some(report);
                entry.status = SweepStatus::Done;
            }
            Err(message) => entry.status = SweepStatus::Failed(message),
        }
    }
}

fn spawn_experiment_sweep(
    state: &Arc<DaemonState>,
    experiment: Experiment,
    scale: f64,
    priority: i64,
    skip: u64,
    warmup: u64,
) -> u64 {
    let sweep_id = register_sweep(state, experiment.label().to_string(), scale);
    let state2 = Arc::clone(state);
    thread::Builder::new()
        .name(format!("riq-sweep-{sweep_id}"))
        .spawn(move || {
            let executor =
                Arc::new(QueueExecutor { state: Arc::clone(&state2), sweep_id, priority });
            let opts = sweep_engine_options(executor, skip, warmup);
            let outcome = run_experiment(&experiment, &opts)
                .map(|table| (table.to_csv(), format!("{table}")))
                .map_err(|e| e.to_string());
            finish_sweep(&state2, sweep_id, outcome);
        })
        .expect("spawn sweep thread");
    sweep_id
}

/// CSV/report for a raw job-list sweep: one deterministic row per job.
fn raw_table(specs: &[JobSpec], results: &[Arc<RunResult>]) -> String {
    let mut out = String::from("kernel,iq,reuse,cycles,committed,ipc,gated_rate\n");
    for (spec, r) in specs.iter().zip(results) {
        out.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.6}\n",
            spec.kernel,
            spec.config.iq_entries,
            spec.config.reuse.enabled,
            r.stats.cycles,
            r.stats.committed,
            r.stats.ipc(),
            r.stats.gated_rate(),
        ));
    }
    out
}

fn spawn_raw_sweep(
    state: &Arc<DaemonState>,
    specs: Vec<JobSpec>,
    scale: f64,
    priority: i64,
    skip: u64,
    warmup: u64,
) -> u64 {
    let sweep_id = register_sweep(state, "jobs".to_string(), scale);
    let state2 = Arc::clone(state);
    thread::Builder::new()
        .name(format!("riq-sweep-{sweep_id}"))
        .spawn(move || {
            let executor =
                Arc::new(QueueExecutor { state: Arc::clone(&state2), sweep_id, priority });
            let opts = sweep_engine_options(executor, skip, warmup);
            let outcome = run_jobs(&specs, &opts)
                .map(|results| {
                    let table = raw_table(&specs, &results);
                    (table.clone(), table)
                })
                .map_err(|e| e.to_string());
            finish_sweep(&state2, sweep_id, outcome);
        })
        .expect("spawn sweep thread");
    sweep_id
}

/// A running daemon: the HTTP listener plus its shared state. Dropping
/// the handle leaks the accept thread; call [`Daemon::stop`].
pub struct Daemon {
    http: ServerHandle,
    state: Arc<DaemonState>,
}

impl Daemon {
    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The `/statsz` document, for callers holding the handle (the CLI
    /// prints it on shutdown; remote clients use the endpoint).
    #[must_use]
    pub fn statsz(&self) -> JsonValue {
        statsz_json(&self.state)
    }

    /// Stops accepting connections and joins the accept thread. Sweep
    /// threads blocked on missing workers are left to the OS — the store
    /// is durable, so a restarted daemon resumes from their results.
    pub fn stop(self) {
        self.http.stop();
    }
}

/// Starts the daemon on an already-bound listener (bind to port 0 for an
/// ephemeral address) and returns its handle.
///
/// # Errors
///
/// Propagates store-open/replay and listener I/O failures.
pub fn start_daemon(listener: TcpListener, options: &DaemonOptions) -> io::Result<Daemon> {
    let store = ResultStore::open(&options.store_path, options.store_max_bytes)?;
    let trace = match &options.trace_path {
        Some(path) => Some(JsonlSink::new(File::create(path)?)),
        None => None,
    };
    let state = Arc::new(DaemonState {
        queue: JobQueue::new(options.queue),
        store: Mutex::new(store),
        payloads: Mutex::new(HashMap::new()),
        sweeps: Mutex::new(BTreeMap::new()),
        next_sweep: AtomicU64::new(0),
        worker_perf: Mutex::new(BTreeMap::new()),
        worker_ids: Mutex::new(HashMap::new()),
        trace: Mutex::new(trace),
        trace_seq: AtomicU64::new(0),
        started: Instant::now(),
    });
    let handler_state = Arc::clone(&state);
    let http = serve_on(listener, Arc::new(move |req: &Request| handle(&handler_state, req)))?;
    Ok(Daemon { http, state })
}

fn response_with_status(status: u16, body: String) -> Response {
    Response { status, content_type: "text/plain; charset=utf-8", body: body.into_bytes() }
}

fn handle(state: &Arc<DaemonState>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/statsz") => Response::json(statsz_json(state).to_pretty()),
        ("POST", "/sweeps") => post_sweeps(state, req),
        ("POST", "/lease") => post_lease(state, req),
        ("POST", "/complete") => post_complete(state, req),
        ("POST", "/fail") => post_fail(state, req),
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/sweeps/") {
                get_sweep(state, rest)
            } else if let Some(rest) = path.strip_prefix("/jobs/") {
                get_job(state, rest)
            } else {
                Response::not_found("no such endpoint")
            }
        }
        _ => Response::not_found("no such endpoint"),
    }
}

fn healthz(state: &Arc<DaemonState>) -> Response {
    let doc = JsonValue::obj([
        ("ok", JsonValue::Bool(true)),
        ("uptime_seconds", JsonValue::Num(state.started.elapsed().as_secs_f64())),
    ]);
    Response::json(doc.to_pretty())
}

fn statsz_json(state: &Arc<DaemonState>) -> JsonValue {
    let queue = state.queue.stats();
    let store = lock(&state.store).stats();
    let sweeps = lock(&state.sweeps);
    let (mut running, mut done, mut failed) = (0u64, 0u64, 0u64);
    for entry in sweeps.values() {
        match entry.status {
            SweepStatus::Running => running += 1,
            SweepStatus::Done => done += 1,
            SweepStatus::Failed(_) => failed += 1,
        }
    }
    let workers: BTreeMap<String, JsonValue> = lock(&state.worker_perf)
        .iter()
        .map(|(name, perf)| {
            // One PerfBlock per worker: the same speed accounting the
            // engine and `riq-repro run` print, from completion-reported
            // wall time and the result's own simulation-domain counters.
            let block =
                PerfBlock::new(perf.wall_nanos as f64 / 1e9, perf.sim_insts, perf.sim_cycles);
            let doc = JsonValue::obj([
                ("completed", JsonValue::UInt(perf.completed)),
                ("wall_seconds", JsonValue::Num(perf.wall_nanos as f64 / 1e9)),
                ("sim_khz", JsonValue::Num(block.sim_khz())),
                ("mips", JsonValue::Num(block.mips())),
            ]);
            (name.clone(), doc)
        })
        .collect();
    JsonValue::obj([
        ("uptime_seconds", JsonValue::Num(state.started.elapsed().as_secs_f64())),
        (
            "queue",
            JsonValue::obj([
                ("queued", JsonValue::UInt(queue.queued)),
                ("leased", JsonValue::UInt(queue.leased)),
                ("done", JsonValue::UInt(queue.done)),
                ("failed", JsonValue::UInt(queue.failed)),
                ("dedup_hits", JsonValue::UInt(queue.dedup_hits)),
                ("leases_granted", JsonValue::UInt(queue.leases_granted)),
                ("requeues", JsonValue::UInt(queue.requeues)),
            ]),
        ),
        (
            "store",
            JsonValue::obj([
                ("entries", JsonValue::UInt(store.entries)),
                ("bytes_on_disk", JsonValue::UInt(store.bytes_on_disk)),
                ("hits", JsonValue::UInt(store.hits)),
                ("misses", JsonValue::UInt(store.misses)),
                ("evictions", JsonValue::UInt(store.evictions)),
                ("bytes_written", JsonValue::UInt(store.bytes_written)),
                ("recovered_torn_frames", JsonValue::UInt(store.recovered_torn_frames)),
            ]),
        ),
        (
            "sweeps",
            JsonValue::obj([
                ("total", JsonValue::UInt(sweeps.len() as u64)),
                ("running", JsonValue::UInt(running)),
                ("done", JsonValue::UInt(done)),
                ("failed", JsonValue::UInt(failed)),
            ]),
        ),
        ("workers", JsonValue::Obj(workers)),
    ])
}

fn post_sweeps(state: &Arc<DaemonState>, req: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::bad_request("body is not UTF-8");
    };
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Response::bad_request(&format!("body is not JSON: {e}")),
    };
    let scale = doc.get("scale").and_then(JsonValue::as_f64).unwrap_or(1.0);
    if scale.is_nan() || scale <= 0.0 {
        return Response::bad_request("scale must be positive");
    }
    let priority = doc.get("priority").and_then(JsonValue::as_i64).unwrap_or(0);
    let skip = doc.get("skip").and_then(JsonValue::as_u64).unwrap_or(0);
    let warmup = doc.get("warmup").and_then(JsonValue::as_u64).unwrap_or(0);

    let sweep_id = if let Some(label) = doc.get("experiment").and_then(JsonValue::as_str) {
        let Some(experiment) = experiment_from_label(label, scale) else {
            return Response::bad_request(&format!("unknown experiment {label:?}"));
        };
        spawn_experiment_sweep(state, experiment, scale, priority, skip, warmup)
    } else if let Some(jobs) = doc.get("jobs").and_then(JsonValue::as_arr) {
        let specs = match parse_raw_jobs(jobs, scale) {
            Ok(specs) => specs,
            Err(e) => return Response::bad_request(&e),
        };
        spawn_raw_sweep(state, specs, scale, priority, skip, warmup)
    } else {
        return Response::bad_request("body needs an \"experiment\" label or a \"jobs\" array");
    };

    let label = lock(&state.sweeps).get(&sweep_id).map_or_else(String::new, |s| s.label.clone());
    let reply = JsonValue::obj([
        ("sweep", JsonValue::UInt(sweep_id)),
        ("experiment", JsonValue::Str(label)),
        ("scale", JsonValue::Num(scale)),
    ]);
    Response::json(reply.to_pretty())
}

/// Parses a raw job list: `[{"kernel": NAME, "iq": N, "reuse": BOOL}]`,
/// each compiled at the sweep's scale.
fn parse_raw_jobs(jobs: &[JsonValue], scale: f64) -> Result<Vec<JobSpec>, String> {
    if jobs.is_empty() {
        return Err("jobs array is empty".to_string());
    }
    let suite = riq_kernels::suite_scaled(scale);
    let mut programs: HashMap<String, Arc<Program>> = HashMap::new();
    let mut specs = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let kernel = job
            .get("kernel")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("jobs[{i}]: missing \"kernel\""))?;
        let iq = job.get("iq").and_then(JsonValue::as_u64).unwrap_or(64) as u32;
        if iq == 0 {
            return Err(format!("jobs[{i}]: iq must be positive"));
        }
        let reuse = job.get("reuse").and_then(JsonValue::as_bool).unwrap_or(false);
        let program = match programs.get(kernel) {
            Some(p) => Arc::clone(p),
            None => {
                let spec = suite
                    .iter()
                    .find(|k| k.name == kernel)
                    .ok_or_else(|| format!("jobs[{i}]: unknown kernel {kernel:?}"))?;
                let compiled =
                    riq_kernels::compile(spec).map_err(|e| format!("jobs[{i}]: {kernel}: {e}"))?;
                let p = Arc::new(compiled);
                programs.insert(kernel.to_string(), Arc::clone(&p));
                p
            }
        };
        let config = SimConfig::baseline().with_iq_size(iq).with_reuse(reuse);
        specs.push(JobSpec::new(kernel, &program, config));
    }
    Ok(specs)
}

fn get_sweep(state: &Arc<DaemonState>, rest: &str) -> Response {
    let (id_str, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    let Ok(sweep_id) = id_str.parse::<u64>() else {
        return Response::bad_request("sweep id is not a number");
    };
    let sweeps = lock(&state.sweeps);
    let Some(entry) = sweeps.get(&sweep_id) else {
        return Response::not_found("no such sweep");
    };
    match tail {
        "" => sweep_status(state, sweep_id, entry),
        "csv" => match (&entry.status, &entry.csv) {
            (SweepStatus::Failed(message), _) => {
                response_with_status(500, format!("sweep failed: {message}\n"))
            }
            (_, Some(csv)) => Response::text(csv.clone()),
            _ => response_with_status(409, "sweep is still running\n".to_string()),
        },
        "report" => match (&entry.status, &entry.report) {
            (SweepStatus::Failed(message), _) => {
                response_with_status(500, format!("sweep failed: {message}\n"))
            }
            (_, Some(report)) => Response::text(report.clone()),
            _ => response_with_status(409, "sweep is still running\n".to_string()),
        },
        _ => Response::not_found("no such sweep view"),
    }
}

fn sweep_status(state: &Arc<DaemonState>, sweep_id: u64, entry: &SweepEntry) -> Response {
    let mut jobs_done = 0usize;
    let mut jobs_failed = 0usize;
    for &id in &entry.job_ids {
        match state.queue.state(id) {
            Some(JobState::Done) => jobs_done += 1,
            Some(JobState::Failed { .. }) => jobs_failed += 1,
            _ => {}
        }
    }
    let done = entry.from_store + jobs_done;
    let remaining = entry.total.saturating_sub(done + jobs_failed) as u64;

    // ETA from the per-worker speed accounting: total completion-reported
    // wall time per completed job, divided across the workers currently
    // known. No completions yet means no estimate.
    let eta = {
        let perf = lock(&state.worker_perf);
        let completed: u64 = perf.values().map(|p| p.completed).sum();
        let wall_nanos: u64 = perf.values().map(|p| p.wall_nanos).sum();
        let workers = perf.len().max(1) as f64;
        if completed == 0 || remaining == 0 || entry.total == 0 {
            None
        } else {
            let per_job = wall_nanos as f64 / 1e9 / completed as f64;
            Some(remaining as f64 * per_job / workers)
        }
    };
    let doc = JsonValue::obj([
        ("sweep", JsonValue::UInt(sweep_id)),
        ("experiment", JsonValue::Str(entry.label.clone())),
        ("scale", JsonValue::Num(entry.scale)),
        ("status", JsonValue::Str(entry.status.label().to_string())),
        (
            "message",
            match &entry.status {
                SweepStatus::Failed(m) => JsonValue::Str(m.clone()),
                _ => JsonValue::Null,
            },
        ),
        ("total_points", JsonValue::UInt(entry.total as u64)),
        ("done_points", JsonValue::UInt(done as u64)),
        ("failed_points", JsonValue::UInt(jobs_failed as u64)),
        ("from_store", JsonValue::UInt(entry.from_store as u64)),
        ("eta_seconds", eta.map_or(JsonValue::Null, JsonValue::Num)),
    ]);
    Response::json(doc.to_pretty())
}

fn get_job(state: &Arc<DaemonState>, rest: &str) -> Response {
    let Ok(job_id) = rest.parse::<u64>() else {
        return Response::bad_request("job id is not a number");
    };
    let Some(job_state) = state.queue.state(job_id) else {
        return Response::not_found("no such job");
    };
    let (label, worker, attempt, message) = match job_state {
        JobState::Queued => ("queued", None, None, None),
        JobState::Leased { worker, attempt } => ("leased", Some(worker), Some(attempt), None),
        JobState::Done => ("done", None, None, None),
        JobState::Failed { message } => ("failed", None, None, Some(message)),
    };
    let doc = JsonValue::obj([
        ("job", JsonValue::UInt(job_id)),
        ("state", JsonValue::Str(label.to_string())),
        ("worker", worker.map_or(JsonValue::Null, JsonValue::Str)),
        ("attempt", attempt.map_or(JsonValue::Null, |a| JsonValue::UInt(u64::from(a)))),
        ("message", message.map_or(JsonValue::Null, JsonValue::Str)),
    ]);
    Response::json(doc.to_pretty())
}

fn post_lease(state: &Arc<DaemonState>, req: &Request) -> Response {
    let Some(worker) = req.query_param("worker") else {
        return Response::bad_request("lease needs ?worker=NAME");
    };
    let worker = worker.to_string();
    let Some(leased) = state.queue.lease(&worker) else {
        return Response::no_content();
    };
    let payload = {
        let payloads = lock(&state.payloads);
        match payloads.get(&leased.key) {
            Some(p) => JobBlob {
                job_id: leased.job_id,
                key: leased.key,
                kernel: p.kernel.clone(),
                skip: p.skip,
                warmup: p.warmup,
                program: (*p.program).clone(),
                config: p.config.clone(),
            },
            None => {
                drop(payloads);
                // A queued job the daemon cannot describe is a daemon
                // bug; fail it rather than leaving the worker spinning.
                state.queue.fail(leased.job_id, "payload missing for leased job");
                return Response::no_content();
            }
        }
    };
    let ordinal = state.worker_ordinal(&worker);
    state.emit(EventKind::JobLeased {
        job: leased.job_id,
        worker: ordinal,
        attempt: u64::from(leased.attempt),
    });
    Response::bytes(encode_job(&payload))
}

fn post_complete(state: &Arc<DaemonState>, req: &Request) -> Response {
    let Some(job_id) = req.query_param("job").and_then(|v| v.parse::<u64>().ok()) else {
        return Response::bad_request("complete needs ?job=ID");
    };
    let Some(worker) = req.query_param("worker").map(str::to_string) else {
        return Response::bad_request("complete needs ?worker=NAME");
    };
    let wall_nanos = req.query_param("wall_nanos").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    let Some(key) = state.queue.key_of(job_id) else {
        return Response::not_found("no such job");
    };
    // Validate before persisting: a worker shipping a corrupt or
    // truncated blob burns one of the job's attempts, not the store.
    let result = match decode_result(&req.body) {
        Ok(result) => result,
        Err(e) => {
            let attempt = match state.queue.state(job_id) {
                Some(JobState::Leased { attempt, .. }) => u64::from(attempt),
                _ => 0,
            };
            state.queue.fail(job_id, &format!("complete rejected: {e}"));
            emit_fail_event(state, job_id, attempt);
            return Response::bad_request(&format!("result blob rejected: {e}"));
        }
    };
    if let Err(e) = lock(&state.store).put_blob(key, req.body.clone()) {
        return response_with_status(500, format!("store write failed: {e}\n"));
    }
    state.queue.complete(job_id);
    state.emit(EventKind::JobCompleted { job: job_id, wall_nanos });
    {
        let mut perf = lock(&state.worker_perf);
        let entry = perf.entry(worker).or_default();
        entry.completed += 1;
        entry.sim_cycles += result.stats.cycles;
        entry.sim_insts += result.stats.committed;
        entry.wall_nanos += wall_nanos;
    }
    Response::no_content()
}

fn post_fail(state: &Arc<DaemonState>, req: &Request) -> Response {
    let Some(job_id) = req.query_param("job").and_then(|v| v.parse::<u64>().ok()) else {
        return Response::bad_request("fail needs ?job=ID");
    };
    if state.queue.key_of(job_id).is_none() {
        return Response::not_found("no such job");
    }
    let attempt = match state.queue.state(job_id) {
        Some(JobState::Leased { attempt, .. }) => u64::from(attempt),
        _ => 0,
    };
    let message = String::from_utf8_lossy(&req.body).into_owned();
    state.queue.fail(job_id, &message);
    emit_fail_event(state, job_id, attempt);
    Response::no_content()
}

/// After a `fail`, the job either went back to the queue (retry) or
/// exhausted its attempts; trace whichever happened.
fn emit_fail_event(state: &Arc<DaemonState>, job_id: u64, attempt: u64) {
    match state.queue.state(job_id) {
        Some(JobState::Queued) => {
            state.emit(EventKind::JobRequeued { job: job_id, attempts: attempt });
        }
        Some(JobState::Failed { .. }) => {
            state.emit(EventKind::JobFailed { job: job_id, attempts: attempt });
        }
        _ => {}
    }
}
