//! Machine-readable run reports: one JSON document per simulation,
//! bundling what was run (program, configuration) with everything the
//! simulator returned (statistics, memory/branch-predictor counters,
//! power, epoch samples).
//!
//! The document is versioned via `schema_version` so downstream tooling
//! can detect layout changes.

use riq_core::{IssuePolicyKind, RunResult};
use riq_metrics::PerfBlock;
use riq_trace::{JsonValue, ToJson};

/// Layout version of the report document.
///
/// Version history: 1 = initial layout; 2 = added the top-level
/// `wall_clock_seconds` field (host time spent simulating); 3 = added the
/// `run.checkpoint` provenance object (`null` for from-zero runs); 4 =
/// added the `perf` block (sim-speed accounting: instructions/sec,
/// cycles/sec, MIPS, sim KHz, peak RSS, optional stage shares) — the
/// top-level `wall_clock_seconds` is kept for compatibility and is now
/// *sourced from the perf block's clock*, so the two can never disagree;
/// 5 = added `run.policy` (the issue-scheduling policy label, `"oldest"`
/// unless the run selected another [`riq_core::IssuePolicyKind`]).
pub const REPORT_SCHEMA_VERSION: u64 = 5;

/// Provenance of a run that resumed from a checkpoint instead of
/// instruction zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointProvenance {
    /// [`riq_ckpt::Checkpoint::fingerprint`] of the snapshot resumed from.
    pub fingerprint: u64,
    /// Instructions fast-forwarded functionally before detailed
    /// simulation.
    pub skip: u64,
    /// Warm-window events replayed into caches/TLBs/predictor on resume.
    pub warmup: u64,
    /// Detailed-commit budget, when the run was a sample rather than
    /// run-to-halt.
    pub sample: Option<u64>,
}

impl ToJson for CheckpointProvenance {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("fingerprint", self.fingerprint.to_json()),
            ("skip", self.skip.to_json()),
            ("warmup", self.warmup.to_json()),
            ("sample", self.sample.to_json()),
        ])
    }
}

/// What was simulated — the inputs half of a report.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Program identifier (kernel name or assembly file path).
    pub program: String,
    /// Issue-queue size in entries.
    pub iq: u32,
    /// Whether the reuse mechanism was enabled.
    pub reuse: bool,
    /// Issue-scheduling policy the queue selected with.
    pub policy: IssuePolicyKind,
    /// Outer-trip-count scale factor applied to suite kernels.
    pub scale: f64,
    /// Epoch sampling period in cycles, if sampling was on.
    pub epoch: Option<u64>,
    /// Checkpoint provenance; `None` when the run started from
    /// instruction zero.
    pub checkpoint: Option<CheckpointProvenance>,
}

impl ToJson for RunSpec {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("program", self.program.to_json()),
            ("iq", self.iq.to_json()),
            ("reuse", self.reuse.to_json()),
            ("policy", self.policy.as_str().to_json()),
            ("scale", self.scale.to_json()),
            ("epoch", self.epoch.to_json()),
            ("checkpoint", self.checkpoint.to_json()),
        ])
    }
}

/// Assembles the full report document for one run. `perf` carries the
/// sim-speed accounting built from the caller's single wall-clock
/// measurement (`None` when the caller did not time the run); the legacy
/// top-level `wall_clock_seconds` is derived from it, never measured
/// separately. Simulated time lives in `result.stats.cycles`.
#[must_use]
pub fn report_json(spec: &RunSpec, result: &RunResult, perf: Option<&PerfBlock>) -> JsonValue {
    let wall_clock_seconds = perf.map(|p| p.wall_seconds);
    JsonValue::obj([
        ("schema_version", REPORT_SCHEMA_VERSION.to_json()),
        ("generator", "riq".to_json()),
        ("wall_clock_seconds", wall_clock_seconds.to_json()),
        ("perf", perf.map(ToJson::to_json).to_json()),
        ("run", spec.to_json()),
        ("result", result.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;
    use riq_core::{Processor, SimConfig};

    fn small_result() -> RunResult {
        let program =
            assemble("  li $r2, 40\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $zero, loop\n  halt\n")
                .expect("assemble");
        Processor::new(SimConfig::baseline().with_reuse(true)).run(&program).expect("run")
    }

    #[test]
    fn report_round_trips_and_has_headline_numbers() {
        let result = small_result();
        let spec = RunSpec {
            program: "countdown".into(),
            iq: 64,
            reuse: true,
            policy: IssuePolicyKind::Oldest,
            scale: 1.0,
            epoch: None,
            checkpoint: None,
        };
        let perf = PerfBlock::new(0.25, result.stats.committed, result.stats.cycles);
        let doc = report_json(&spec, &result, Some(&perf));
        let text = doc.to_pretty();
        let back = riq_trace::parse(&text).expect("report parses");
        assert_eq!(
            back.get("schema_version").and_then(JsonValue::as_u64),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(
            back.get("run").and_then(|r| r.get("program")).and_then(JsonValue::as_str),
            Some("countdown")
        );
        let stats = back.get("result").and_then(|r| r.get("stats")).expect("stats");
        assert_eq!(stats.get("cycles").and_then(JsonValue::as_u64), Some(result.stats.cycles));
        assert_eq!(
            stats.get("committed").and_then(JsonValue::as_u64),
            Some(result.stats.committed)
        );
        let digest = back.get("result").and_then(|r| r.get("mem_digest"));
        assert_eq!(digest.and_then(JsonValue::as_u64), Some(result.mem_digest));
        assert_eq!(back.get("wall_clock_seconds").and_then(JsonValue::as_f64), Some(0.25));
        // Schema v4: the perf block is present and derives from the same
        // clock as the legacy top-level field.
        let perf_json = back.get("perf").expect("perf block");
        assert_eq!(
            perf_json.get("wall_clock_seconds").and_then(JsonValue::as_f64),
            back.get("wall_clock_seconds").and_then(JsonValue::as_f64),
            "one clock feeds both surfaces"
        );
        assert_eq!(
            perf_json.get("sim_instructions").and_then(JsonValue::as_u64),
            Some(result.stats.committed)
        );
        assert_eq!(
            perf_json.get("sim_cycles").and_then(JsonValue::as_u64),
            Some(result.stats.cycles)
        );
        let ips = perf_json.get("instructions_per_second").and_then(JsonValue::as_f64).unwrap();
        assert!((ips - result.stats.committed as f64 / 0.25).abs() < 1e-6);
        assert!(perf_json.get("cycles_per_second").and_then(JsonValue::as_f64).is_some());
        assert!(
            matches!(back.get("run").and_then(|r| r.get("checkpoint")), Some(JsonValue::Null)),
            "from-zero runs report a null checkpoint"
        );
    }

    #[test]
    fn untimed_report_has_null_perf() {
        let result = small_result();
        let spec = RunSpec {
            program: "x".into(),
            iq: 64,
            reuse: false,
            policy: IssuePolicyKind::Oldest,
            scale: 1.0,
            epoch: None,
            checkpoint: None,
        };
        let doc = report_json(&spec, &result, None);
        assert!(matches!(doc.get("perf"), Some(JsonValue::Null)));
        assert!(matches!(doc.get("wall_clock_seconds"), Some(JsonValue::Null)));
    }

    #[test]
    fn checkpoint_provenance_is_recorded() {
        let result = small_result();
        let spec = RunSpec {
            program: "countdown".into(),
            iq: 64,
            reuse: true,
            policy: IssuePolicyKind::Oldest,
            scale: 1.0,
            epoch: None,
            checkpoint: Some(CheckpointProvenance {
                fingerprint: 0xdead_beef,
                skip: 10_000,
                warmup: 2_000,
                sample: Some(50_000),
            }),
        };
        let doc = report_json(&spec, &result, None);
        let text = doc.to_pretty();
        let back = riq_trace::parse(&text).expect("report parses");
        let ckpt = back.get("run").and_then(|r| r.get("checkpoint")).expect("checkpoint object");
        assert_eq!(ckpt.get("fingerprint").and_then(JsonValue::as_u64), Some(0xdead_beef));
        assert_eq!(ckpt.get("skip").and_then(JsonValue::as_u64), Some(10_000));
        assert_eq!(ckpt.get("warmup").and_then(JsonValue::as_u64), Some(2_000));
        assert_eq!(ckpt.get("sample").and_then(JsonValue::as_u64), Some(50_000));
    }

    #[test]
    fn report_includes_power_and_mem_sections() {
        let result = small_result();
        let spec = RunSpec {
            program: "x".into(),
            iq: 64,
            reuse: true,
            policy: IssuePolicyKind::LoadDelay,
            scale: 0.5,
            epoch: Some(100),
            checkpoint: None,
        };
        let doc = report_json(&spec, &result, None);
        let power = doc.get("result").and_then(|r| r.get("power")).expect("power section");
        assert!(power.get("total_energy").and_then(JsonValue::as_f64).unwrap_or(0.0) > 0.0);
        let mem = doc.get("result").and_then(|r| r.get("mem")).expect("mem section");
        assert!(mem.get("il1").is_some());
        let run = doc.get("run").expect("run");
        assert_eq!(run.get("epoch").and_then(JsonValue::as_u64), Some(100));
    }
}
