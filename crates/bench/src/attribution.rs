//! Corpus-scale attribution: drive fuzz-generated programs through the
//! deterministic bench engine and characterize measured reuse benefit
//! against the static predictor, bucketed by structural family.
//!
//! Every program runs twice — baseline and reuse at one queue capacity —
//! through [`run_jobs`], so the corpus inherits the engine's guarantees:
//! dedup, result caching, and byte-identical aggregates for any worker
//! count. The static side reuses `riq_analyze`'s predictor score; the
//! per-family table is what `riq-repro attribute --corpus` prints.

use crate::engine::{run_jobs, EngineOptions, ExperimentError, JobSpec};
use riq_analyze::{analyze, predict, program_score, ClassMix};
use riq_core::SimConfig;
use riq_fuzz::{generate, FAMILIES};
use riq_power::ClassEnergyProfile;
use riq_trace::JsonValue;
use std::fmt::Write as _;
use std::sync::Arc;

/// Version of the corpus-attribution JSON layout.
pub const CORPUS_SCHEMA_VERSION: u64 = 1;

/// One structural-family aggregate of the corpus.
#[derive(Debug, Clone)]
pub struct FamilyRow {
    /// Family label ([`riq_fuzz::TestProgram::family`]).
    pub family: &'static str,
    /// Programs in the bucket.
    pub programs: u64,
    /// Programs whose reuse leg promoted at least one loop.
    pub promoted: u64,
    /// Mean measured energy-saving fraction (reuse vs baseline).
    pub mean_savings: f64,
    /// Mean fraction of reuse-leg cycles with the front end gated.
    pub mean_gated: f64,
    /// Mean IPC delta (reuse − baseline).
    pub mean_ipc_delta: f64,
    /// Mean static predictor score ([`program_score`]).
    pub mean_predicted: f64,
    /// Mean dynamic revoke rate of started bufferings.
    pub mean_revoke_rate: f64,
}

/// The corpus-attribution report.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Queue capacity of the reuse legs.
    pub iq: u32,
    /// Programs characterized.
    pub programs: u64,
    /// Per-family aggregates, in [`FAMILIES`] priority order (empty
    /// buckets omitted).
    pub rows: Vec<FamilyRow>,
}

/// Runs the corpus: generates `seeds` fuzz programs, simulates each
/// baseline+reuse at capacity `iq` through the engine, scores each with
/// the static predictor, and aggregates by family.
///
/// # Errors
///
/// Returns the engine error of the lowest-indexed failing job, or a
/// `JobFailed` if a generated program fails to assemble (which would be a
/// generator bug).
pub fn run_attribution_corpus(
    seeds: u64,
    iq: u32,
    opts: &EngineOptions,
) -> Result<CorpusReport, ExperimentError> {
    let mut programs = Vec::with_capacity(seeds as usize);
    for seed in 0..seeds {
        let tp = generate(seed);
        let source = tp.render();
        let image = riq_asm::assemble(&source).map_err(|e| ExperimentError::JobFailed {
            kernel: format!("fuzz-{seed:#x}"),
            message: format!("generated program does not assemble: {e}"),
        })?;
        programs.push((tp.family(), Arc::new(image)));
    }

    let base_cfg = SimConfig::baseline().with_iq_size(iq);
    let reuse_cfg = SimConfig::baseline().with_iq_size(iq).with_reuse(true);
    let mut jobs = Vec::with_capacity(programs.len() * 2);
    for (seed, (_, program)) in programs.iter().enumerate() {
        jobs.push(JobSpec::new(format!("fuzz-{seed:#x}-base"), program, base_cfg.clone()));
        jobs.push(JobSpec::new(format!("fuzz-{seed:#x}-reuse"), program, reuse_cfg.clone()));
    }
    let results = run_jobs(&jobs, opts)?;

    #[derive(Default)]
    struct Acc {
        programs: u64,
        promoted: u64,
        savings: f64,
        gated: f64,
        ipc_delta: f64,
        predicted: f64,
        revoke_rate: f64,
    }
    let mut accs: Vec<Acc> = FAMILIES.iter().map(|_| Acc::default()).collect();
    for (i, (family, program)) in programs.iter().enumerate() {
        let base = &results[2 * i];
        let reuse = &results[2 * i + 1];
        let slot = FAMILIES.iter().position(|f| f == family).expect("family label in FAMILIES");
        let acc = &mut accs[slot];
        acc.programs += 1;
        if reuse.stats.reuse.code_reuse_entries > 0 {
            acc.promoted += 1;
        }
        let be = base.power.total_energy();
        if be > 0.0 {
            acc.savings += 1.0 - reuse.power.total_energy() / be;
        }
        acc.gated += reuse.stats.gated_rate();
        acc.ipc_delta += reuse.stats.ipc() - base.stats.ipc();
        acc.revoke_rate += reuse.stats.reuse.revoke_rate();
        acc.predicted += static_score(program, iq);
    }

    let rows = FAMILIES
        .iter()
        .zip(accs.iter())
        .filter(|(_, a)| a.programs > 0)
        .map(|(&family, a)| {
            let n = a.programs as f64;
            FamilyRow {
                family,
                programs: a.programs,
                promoted: a.promoted,
                mean_savings: a.savings / n,
                mean_gated: a.gated / n,
                mean_ipc_delta: a.ipc_delta / n,
                mean_predicted: a.predicted / n,
                mean_revoke_rate: a.revoke_rate / n,
            }
        })
        .collect();
    Ok(CorpusReport { iq, programs: seeds, rows })
}

/// Static predictor score of one program at capacity `iq`, computed
/// outside the precomputed capacity grid so any `--iq` works.
fn static_score(program: &riq_asm::Program, iq: u32) -> f64 {
    let a = analyze(program);
    let verdicts: Vec<Vec<_>> = a
        .loops
        .iter()
        .map(|s| vec![(iq, riq_analyze::classify(program, &a.cfg, &s.natural, iq))])
        .collect();
    let mix = ClassMix {
        loops: a.loops.iter().map(|s| s.mix.clone()).collect(),
        outside: a.outside_mix,
        program: a.program_mix,
    };
    let mems: Vec<_> = a.loops.iter().map(|s| s.mem.clone()).collect();
    let predictions = predict(&verdicts, &mix, &mems, &ClassEnergyProfile::default());
    program_score(&predictions, iq)
}

impl CorpusReport {
    /// Deterministic multi-line table for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8}",
            "family",
            "programs",
            "promoted",
            "savings",
            "gated",
            "ipc-delta",
            "predicted",
            "revoke"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>9} {:>8.4} {:>9.4} {:>10.4} {:>10.4} {:>8.4}",
                r.family,
                r.programs,
                r.promoted,
                r.mean_savings,
                r.mean_gated,
                r.mean_ipc_delta,
                r.mean_predicted,
                r.mean_revoke_rate,
            );
        }
        out
    }

    /// One-line machine-grepable summary (pinned by CI).
    #[must_use]
    pub fn summary_line(&self) -> String {
        let promoted: u64 = self.rows.iter().map(|r| r.promoted).sum();
        let mean_savings = if self.rows.is_empty() {
            0.0
        } else {
            let total: f64 = self.rows.iter().map(|r| r.mean_savings * r.programs as f64).sum();
            total / self.programs as f64
        };
        format!(
            "riq-attribute-corpus: programs={} iq={} families={} promoted={promoted} mean_savings={mean_savings:.4}",
            self.programs,
            self.iq,
            self.rows.len(),
        )
    }

    /// Versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::obj([
                    ("family", JsonValue::Str(r.family.to_string())),
                    ("programs", JsonValue::UInt(r.programs)),
                    ("promoted", JsonValue::UInt(r.promoted)),
                    ("mean_savings", JsonValue::Num(r.mean_savings)),
                    ("mean_gated", JsonValue::Num(r.mean_gated)),
                    ("mean_ipc_delta", JsonValue::Num(r.mean_ipc_delta)),
                    ("mean_predicted", JsonValue::Num(r.mean_predicted)),
                    ("mean_revoke_rate", JsonValue::Num(r.mean_revoke_rate)),
                ])
            })
            .collect();
        JsonValue::obj([
            ("schema_version", JsonValue::UInt(CORPUS_SCHEMA_VERSION)),
            ("iq", JsonValue::UInt(u64::from(self.iq))),
            ("programs", JsonValue::UInt(self.programs)),
            ("families", JsonValue::Arr(rows)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_is_deterministic_for_any_worker_count() {
        let serial = EngineOptions { jobs: 1, ..EngineOptions::default() };
        let threaded = EngineOptions { jobs: 4, ..EngineOptions::default() };
        let a = run_attribution_corpus(6, 64, &serial).unwrap();
        let b = run_attribution_corpus(6, 64, &threaded).unwrap();
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.summary_line(), b.summary_line());
        assert_eq!(a.programs, 6);
        assert!(!a.rows.is_empty());
        let bucketed: u64 = a.rows.iter().map(|r| r.programs).sum();
        assert_eq!(bucketed, 6, "every program lands in exactly one family");
    }

    #[test]
    fn corpus_rows_carry_measured_and_predicted_signal() {
        let opts = EngineOptions { jobs: 0, ..EngineOptions::default() };
        let r = run_attribution_corpus(8, 64, &opts).unwrap();
        for row in &r.rows {
            assert!(row.mean_gated >= 0.0 && row.mean_gated <= 1.0);
            assert!(row.mean_predicted >= 0.0);
        }
        // At least one generated program exercises the reuse queue.
        assert!(r.rows.iter().any(|row| row.promoted > 0), "{:?}", r.rows);
    }
}
