//! The parallel experiment engine.
//!
//! Every figure and ablation of the paper reduces to the same shape of
//! work: a flat list of *(program, configuration)* simulation points whose
//! results are then aggregated into a table. [`JobSpec`] is one such
//! point, [`run_jobs`] executes a batch of them across a pool of worker
//! threads (std-only: scoped threads pulling from a shared atomic cursor),
//! and [`ResultCache`] deduplicates identical points so a configuration
//! that several figures share — e.g. the 64-entry reuse point, which
//! appears in Figures 5/7/8, Figure 9's "original" column, and the
//! transform ablation's "original" row — is simulated exactly once.
//!
//! Results come back **by job index**, so aggregation order never depends
//! on thread scheduling: the output of a parallel run is bit-identical to
//! a serial one (`tests/engine_determinism.rs` proves it).
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_bench::{run_jobs, EngineOptions, JobSpec};
//! use riq_core::SimConfig;
//! use std::sync::Arc;
//!
//! let kernel = riq_kernels::by_name("wss").unwrap();
//! let program = Arc::new(riq_kernels::compile(&kernel)?);
//! let jobs: Vec<JobSpec> = [32, 64]
//!     .map(|iq| JobSpec::new("wss", &program, SimConfig::baseline().with_iq_size(iq)))
//!     .into();
//! let results = run_jobs(&jobs, &EngineOptions::default())?;
//! assert_eq!(results.len(), jobs.len());
//! # Ok(())
//! # }
//! ```

use riq_asm::Program;
use riq_core::{Processor, RunResult, SimConfig, SimError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

// The engine moves programs, configurations, and results across worker
// threads; keep that property from silently regressing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Processor>();
    assert_send_sync::<RunResult>();
};

/// Error running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// A kernel failed to compile.
    Compile(riq_kernels::CompileKernelError),
    /// A simulation point failed.
    Sim {
        /// The job's kernel label.
        kernel: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A sweep was asked for a (kernel, queue-size) point it never ran.
    MissingPoint {
        /// Requested benchmark name.
        kernel: String,
        /// Requested issue-queue size.
        iq: u32,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "kernel compilation failed: {e}"),
            ExperimentError::Sim { kernel, source } => {
                write!(f, "simulation of {kernel:?} failed: {source}")
            }
            ExperimentError::MissingPoint { kernel, iq } => {
                write!(f, "sweep holds no point for kernel {kernel:?} at IQ {iq}")
            }
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Compile(e) => Some(e),
            ExperimentError::Sim { source, .. } => Some(source),
            ExperimentError::MissingPoint { .. } => None,
        }
    }
}

impl From<riq_kernels::CompileKernelError> for ExperimentError {
    fn from(e: riq_kernels::CompileKernelError) -> Self {
        ExperimentError::Compile(e)
    }
}

/// One simulation point: a program under a configuration.
///
/// The program is held by [`Arc`] so a kernel compiled once can be shared
/// by every queue size, code version, and pipeline flavor that sweeps it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display label (benchmark name, possibly qualified by code version).
    pub kernel: String,
    /// The compiled program image, shared across jobs.
    pub program: Arc<Program>,
    /// The simulator configuration for this point.
    pub config: SimConfig,
}

/// A dedup key: `(program fingerprint, config fingerprint)`.
pub type JobKey = (u64, u64);

impl JobSpec {
    /// Creates a job.
    #[must_use]
    pub fn new(kernel: impl Into<String>, program: &Arc<Program>, config: SimConfig) -> JobSpec {
        JobSpec { kernel: kernel.into(), program: Arc::clone(program), config }
    }

    /// The job's dedup key. Two jobs with equal keys simulate the same
    /// program under the same configuration and therefore produce the same
    /// result (the simulator is deterministic), regardless of their
    /// `kernel` labels.
    #[must_use]
    pub fn key(&self) -> JobKey {
        (self.program.fingerprint(), self.config.fingerprint())
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: Mutex<HashMap<JobKey, Arc<RunResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A shared simulation-result cache keyed by [`JobSpec::key`].
///
/// Cloning the handle shares the underlying storage, so one cache can
/// deduplicate across experiments: pass the same [`EngineOptions`] (or a
/// clone) to every [`run_jobs`]/`run_experiment` call of a session and
/// points shared between figures run once. A *hit* is any job resolved
/// without a simulation — either found in the cache or a duplicate of
/// another job in the same batch; a *miss* is a job that actually ran.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    inner: Arc<CacheInner>,
}

impl ResultCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Jobs resolved without simulating (cache hits plus in-batch
    /// duplicates).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Jobs that were actually simulated.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct results stored.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread poisoned the cache lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.map.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no results.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: JobKey) -> Option<Arc<RunResult>> {
        self.inner.map.lock().expect("cache lock").get(&key).cloned()
    }

    fn store(&self, key: JobKey, result: Arc<RunResult>) {
        self.inner.map.lock().expect("cache lock").insert(key, result);
    }

    fn record(&self, hits: u64, misses: u64) {
        self.inner.hits.fetch_add(hits, Ordering::Relaxed);
        self.inner.misses.fetch_add(misses, Ordering::Relaxed);
    }
}

/// How the engine executes a batch of jobs.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` means one per available CPU, `1` runs inline on
    /// the calling thread.
    pub jobs: usize,
    /// The dedup cache. Clone one `EngineOptions` across experiments to
    /// share it; the default value is a fresh empty cache.
    pub cache: ResultCache,
}

impl EngineOptions {
    /// One worker on the calling thread (what the pre-engine harness did).
    #[must_use]
    pub fn serial() -> EngineOptions {
        EngineOptions { jobs: 1, cache: ResultCache::new() }
    }

    /// An explicit worker count (`0` = one per available CPU).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> EngineOptions {
        EngineOptions { jobs, cache: ResultCache::new() }
    }

    /// The resolved worker count for a batch of `pending` runnable jobs.
    #[must_use]
    pub fn worker_count(&self, pending: usize) -> usize {
        let requested = match self.jobs {
            0 => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        requested.min(pending).max(1)
    }
}

/// Executes a batch of jobs and returns one result per job, **in job
/// order**. Duplicate points (equal [`JobSpec::key`]) and points already
/// in `opts.cache` are simulated only once; because results are written
/// back by index and the simulator is deterministic, the returned vector
/// is identical whatever `opts.jobs` is.
///
/// # Errors
///
/// Returns the failure of the lowest-indexed failing job (every scheduled
/// job still runs to completion first, so the reported error does not
/// depend on thread timing).
pub fn run_jobs(
    jobs: &[JobSpec],
    opts: &EngineOptions,
) -> Result<Vec<Arc<RunResult>>, ExperimentError> {
    // Collapse the batch to unique keys, in first-appearance order.
    let mut key_to_unique: HashMap<JobKey, usize> = HashMap::new();
    let mut uniques: Vec<&JobSpec> = Vec::new();
    let mut job_unique: Vec<usize> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let next = uniques.len();
        let u = *key_to_unique.entry(job.key()).or_insert(next);
        if u == next {
            uniques.push(job);
        }
        job_unique.push(u);
    }

    // Resolve what the cache already knows; the rest is pending work.
    let mut resolved: Vec<Option<Arc<RunResult>>> = vec![None; uniques.len()];
    let mut pending: Vec<(usize, &JobSpec)> = Vec::new();
    for (u, spec) in uniques.iter().enumerate() {
        match opts.cache.lookup(spec.key()) {
            Some(hit) => resolved[u] = Some(hit),
            None => pending.push((u, spec)),
        }
    }
    let misses = pending.len() as u64;
    opts.cache.record(jobs.len() as u64 - misses, misses);

    // Simulate the pending points: workers pull the next index from a
    // shared cursor and write into their job's dedicated slot.
    let slots: Vec<Mutex<Option<Result<RunResult, SimError>>>> =
        pending.iter().map(|_| Mutex::new(None)).collect();
    let workers = opts.worker_count(pending.len());
    let execute = |i: usize| {
        let spec = pending[i].1;
        let result = Processor::new(spec.config.clone()).run(&spec.program);
        *slots[i].lock().expect("result slot lock") = Some(result);
    };
    if workers <= 1 {
        (0..pending.len()).for_each(execute);
    } else {
        let cursor = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= pending.len() {
                        break;
                    }
                    execute(i);
                });
            }
        });
    }

    // Harvest in enumeration order so the first error is deterministic.
    for ((u, spec), slot) in pending.iter().zip(slots) {
        let outcome = slot.into_inner().expect("result slot lock").expect("worker filled slot");
        match outcome {
            Ok(result) => {
                let result = Arc::new(result);
                opts.cache.store(spec.key(), Arc::clone(&result));
                resolved[*u] = Some(result);
            }
            Err(source) => {
                return Err(ExperimentError::Sim { kernel: spec.kernel.clone(), source });
            }
        }
    }

    Ok(job_unique
        .into_iter()
        .map(|u| resolved[u].clone().expect("every unique job resolved"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn tiny_program() -> Arc<Program> {
        Arc::new(
            assemble("  li $r2, 30\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $zero, loop\n  halt\n")
                .expect("assembles"),
        )
    }

    #[test]
    fn duplicate_jobs_simulate_once() {
        let program = tiny_program();
        let cfg = SimConfig::baseline();
        let jobs = vec![
            JobSpec::new("a", &program, cfg.clone()),
            JobSpec::new("b", &program, cfg.clone().with_reuse(true)),
            JobSpec::new("c", &program, cfg),
        ];
        let opts = EngineOptions::serial();
        let results = run_jobs(&jobs, &opts).expect("runs");
        assert!(Arc::ptr_eq(&results[0], &results[2]), "duplicate shares one result");
        assert!(!Arc::ptr_eq(&results[0], &results[1]));
        assert_eq!(opts.cache.misses(), 2, "two unique points simulated");
        assert_eq!(opts.cache.hits(), 1, "the in-batch duplicate was a hit");
        assert_eq!(opts.cache.len(), 2);
    }

    #[test]
    fn cache_carries_across_batches() {
        let program = tiny_program();
        let jobs = vec![JobSpec::new("a", &program, SimConfig::baseline())];
        let opts = EngineOptions::serial();
        run_jobs(&jobs, &opts).expect("first run");
        let again = run_jobs(&jobs, &opts).expect("second run");
        assert_eq!(opts.cache.hits(), 1);
        assert_eq!(opts.cache.misses(), 1);
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn first_failing_job_reported() {
        let program = tiny_program();
        let mut starved = SimConfig::baseline();
        starved.max_cycles = 2;
        let jobs = vec![
            JobSpec::new("fine", &program, SimConfig::baseline()),
            JobSpec::new("starved", &program, starved),
        ];
        let err = run_jobs(&jobs, &EngineOptions::with_jobs(2)).expect_err("must fail");
        match err {
            ExperimentError::Sim { kernel, .. } => assert_eq!(kernel, "starved"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn worker_count_is_clamped() {
        let opts = EngineOptions::with_jobs(8);
        assert_eq!(opts.worker_count(3), 3);
        assert_eq!(opts.worker_count(0), 1);
        assert!(EngineOptions::with_jobs(0).worker_count(64) >= 1);
    }
}
