//! The parallel experiment engine.
//!
//! Every figure and ablation of the paper reduces to the same shape of
//! work: a flat list of *(program, configuration)* simulation points whose
//! results are then aggregated into a table. [`JobSpec`] is one such
//! point, [`run_jobs`] executes a batch of them across a pool of worker
//! threads (std-only: scoped threads pulling from a shared atomic cursor),
//! and [`ResultCache`] deduplicates identical points so a configuration
//! that several figures share — e.g. the 64-entry reuse point, which
//! appears in Figures 5/7/8, Figure 9's "original" column, and the
//! transform ablation's "original" row — is simulated exactly once.
//!
//! Results come back **by job index**, so aggregation order never depends
//! on thread scheduling: the output of a parallel run is bit-identical to
//! a serial one (`tests/engine_determinism.rs` proves it).
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_bench::{run_jobs, EngineOptions, JobSpec};
//! use riq_core::SimConfig;
//! use std::sync::Arc;
//!
//! let kernel = riq_kernels::by_name("wss").unwrap();
//! let program = Arc::new(riq_kernels::compile(&kernel)?);
//! let jobs: Vec<JobSpec> = [32, 64]
//!     .map(|iq| JobSpec::new("wss", &program, SimConfig::baseline().with_iq_size(iq)))
//!     .into();
//! let results = run_jobs(&jobs, &EngineOptions::default())?;
//! assert_eq!(results.len(), jobs.len());
//! # Ok(())
//! # }
//! ```

use riq_asm::Program;
use riq_ckpt::{Checkpoint, CheckpointStore};
use riq_core::{Processor, RunResult, SimConfig, SimError};
use riq_metrics::{HostCounter, ProfileConfig, SharedRegistry, SimCounter};
use riq_trace::NullSink;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Instant;

// The engine moves programs, configurations, and results across worker
// threads; keep that property from silently regressing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Processor>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<Checkpoint>();
    assert_send_sync::<CheckpointStore>();
};

/// Error running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// A kernel failed to compile.
    Compile(riq_kernels::CompileKernelError),
    /// The functional fast-forward of a job faulted before producing a
    /// checkpoint.
    FastForward {
        /// The job's kernel label.
        kernel: String,
        /// The underlying emulator error.
        source: riq_emu::EmuError,
    },
    /// A simulation point failed.
    Sim {
        /// The job's kernel label.
        kernel: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A sweep was asked for a (kernel, queue-size) point it never ran.
    MissingPoint {
        /// Requested benchmark name.
        kernel: String,
        /// Requested issue-queue size.
        iq: u32,
    },
    /// A job died without producing a result: the worker simulating it
    /// panicked, was killed, or exhausted its retries. The sweep fails
    /// with this message instead of hanging or poisoning the queue.
    JobFailed {
        /// The job's kernel label.
        kernel: String,
        /// Human-readable failure description (panic payload, worker
        /// death, or retry exhaustion).
        message: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "kernel compilation failed: {e}"),
            ExperimentError::FastForward { kernel, source } => {
                write!(f, "fast-forward of {kernel:?} failed: {source}")
            }
            ExperimentError::Sim { kernel, source } => {
                write!(f, "simulation of {kernel:?} failed: {source}")
            }
            ExperimentError::MissingPoint { kernel, iq } => {
                write!(f, "sweep holds no point for kernel {kernel:?} at IQ {iq}")
            }
            ExperimentError::JobFailed { kernel, message } => {
                write!(f, "job for kernel {kernel:?} failed: {message}")
            }
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Compile(e) => Some(e),
            ExperimentError::FastForward { source, .. } => Some(source),
            ExperimentError::Sim { source, .. } => Some(source),
            ExperimentError::MissingPoint { .. } | ExperimentError::JobFailed { .. } => None,
        }
    }
}

impl From<riq_kernels::CompileKernelError> for ExperimentError {
    fn from(e: riq_kernels::CompileKernelError) -> Self {
        ExperimentError::Compile(e)
    }
}

/// One simulation point: a program under a configuration.
///
/// The program is held by [`Arc`] so a kernel compiled once can be shared
/// by every queue size, code version, and pipeline flavor that sweeps it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display label (benchmark name, possibly qualified by code version).
    pub kernel: String,
    /// The compiled program image, shared across jobs.
    pub program: Arc<Program>,
    /// The simulator configuration for this point.
    pub config: SimConfig,
}

/// A dedup key: `(program fingerprint, config fingerprint, skip, warmup)`.
/// From-zero runs always key with `(…, 0, 0)` so the same point simulated
/// with and without a (no-op) fast-forward request shares one cache entry.
pub type JobKey = (u64, u64, u64, u64);

impl JobSpec {
    /// Creates a job.
    #[must_use]
    pub fn new(kernel: impl Into<String>, program: &Arc<Program>, config: SimConfig) -> JobSpec {
        JobSpec { kernel: kernel.into(), program: Arc::clone(program), config }
    }

    /// The job's dedup key for a from-zero run. Two jobs with equal keys
    /// simulate the same program under the same configuration and
    /// therefore produce the same result (the simulator is deterministic),
    /// regardless of their `kernel` labels.
    #[must_use]
    pub fn key(&self) -> JobKey {
        self.key_with(0, 0)
    }

    /// The job's dedup key under a fast-forward request. A `skip` of zero
    /// normalizes the warm-up away: the run starts from instruction zero
    /// either way.
    #[must_use]
    pub fn key_with(&self, skip: u64, warmup: u64) -> JobKey {
        let (skip, warmup) = if skip == 0 { (0, 0) } else { (skip, warmup) };
        (self.program.fingerprint(), self.config.fingerprint(), skip, warmup)
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: Mutex<HashMap<JobKey, Arc<RunResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A shared simulation-result cache keyed by [`JobSpec::key`].
///
/// Cloning the handle shares the underlying storage, so one cache can
/// deduplicate across experiments: pass the same [`EngineOptions`] (or a
/// clone) to every [`run_jobs`]/`run_experiment` call of a session and
/// points shared between figures run once. A *hit* is any job resolved
/// without a simulation — either found in the cache or a duplicate of
/// another job in the same batch; a *miss* is a job that actually ran.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    inner: Arc<CacheInner>,
}

impl ResultCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Jobs resolved without simulating (cache hits plus in-batch
    /// duplicates).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Jobs that were actually simulated.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct results stored. Tolerates lock poisoning: a
    /// worker that panicked mid-`insert` leaves the map in a valid state
    /// (the `HashMap` either contains the entry or does not), so the
    /// poison flag is cleared rather than propagated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.map.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the cache holds no results.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: JobKey) -> Option<Arc<RunResult>> {
        self.inner.map.lock().unwrap_or_else(PoisonError::into_inner).get(&key).cloned()
    }

    fn store(&self, key: JobKey, result: Arc<RunResult>) {
        self.inner.map.lock().unwrap_or_else(PoisonError::into_inner).insert(key, result);
    }

    fn record(&self, hits: u64, misses: u64) {
        self.inner.hits.fetch_add(hits, Ordering::Relaxed);
        self.inner.misses.fetch_add(misses, Ordering::Relaxed);
    }
}

/// A pluggable backend that simulates the engine's deduplicated pending
/// jobs somewhere other than the calling process's thread pool — e.g. the
/// `riq-serve` daemon leasing them to worker processes.
///
/// The contract mirrors the in-process path exactly: `execute` receives
/// the pending jobs in deterministic (first-appearance) order and must
/// return one result per job, in the same order. Because the simulator is
/// deterministic and aggregation happens in the engine after this call,
/// any conforming executor yields byte-identical experiment output.
///
/// Executors are responsible for their own fast-forwarding: the engine
/// skips its serial checkpoint pre-pass when an executor is installed
/// (remote workers fast-forward themselves; the snapshot is deterministic
/// either way).
pub trait JobExecutor: Send + Sync {
    /// Simulates `jobs` with the given fast-forward request and returns
    /// one result per job, in order.
    ///
    /// # Errors
    ///
    /// Returns the failure of the lowest-indexed failing job.
    fn execute(
        &self,
        jobs: &[JobSpec],
        skip: u64,
        warmup: u64,
    ) -> Result<Vec<Arc<RunResult>>, ExperimentError>;
}

/// How the engine executes a batch of jobs.
#[derive(Clone, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` means one per available CPU, `1` runs inline on
    /// the calling thread.
    pub jobs: usize,
    /// The dedup cache. Clone one `EngineOptions` across experiments to
    /// share it; the default value is a fresh empty cache.
    pub cache: ResultCache,
    /// Instructions to fast-forward functionally before detailed
    /// simulation of each job; `0` (the default) runs every job from
    /// instruction zero.
    pub skip: u64,
    /// Warm-window size captured with each checkpoint and replayed into
    /// the detailed simulator on resume. Ignored when `skip` is `0`.
    pub warmup: u64,
    /// Checkpoint store shared across jobs and batches. `Some` amortizes
    /// one fast-forward per program across every configuration that sweeps
    /// it; `None` fast-forwards per job (results are identical — the
    /// fast-forward is deterministic — only wall clock differs).
    pub ckpt: Option<CheckpointStore>,
    /// The metrics hub batches report into. The default hub is disabled
    /// (zero cost); [`riq_metrics::HubMode::Speed`] accumulates sim-speed
    /// totals from the statistics every run already produces, and
    /// [`riq_metrics::HubMode::Profile`] additionally runs every simulated
    /// point with an enabled per-run registry (stage timers, visit
    /// counters) and merges the snapshots. Simulation-domain totals are
    /// accumulated **per returned job** (deduplicated jobs count the
    /// shared result once each), so they are a pure function of the job
    /// list — identical for any worker count or checkpoint store.
    pub metrics: SharedRegistry,
    /// Stage-timer sampling config used when the hub profiles.
    pub profile: ProfileConfig,
    /// Optional execution backend for pending jobs. `None` (the default)
    /// simulates on the calling process's thread pool; `Some` hands the
    /// deduplicated pending batch to the backend (e.g. a `riq-serve` job
    /// queue) and trusts it to return one result per job in order.
    pub executor: Option<Arc<dyn JobExecutor>>,
}

impl fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineOptions")
            .field("jobs", &self.jobs)
            .field("cache", &self.cache)
            .field("skip", &self.skip)
            .field("warmup", &self.warmup)
            .field("ckpt", &self.ckpt)
            .field("metrics", &self.metrics)
            .field("profile", &self.profile)
            .field("executor", &self.executor.as_ref().map(|_| "<dyn JobExecutor>"))
            .finish()
    }
}

impl EngineOptions {
    /// One worker on the calling thread (what the pre-engine harness did).
    #[must_use]
    pub fn serial() -> EngineOptions {
        EngineOptions { jobs: 1, ..EngineOptions::default() }
    }

    /// An explicit worker count (`0` = one per available CPU).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> EngineOptions {
        EngineOptions { jobs, ..EngineOptions::default() }
    }

    /// Requests a functional fast-forward of `skip` instructions with a
    /// `warmup`-instruction warm window before each detailed run, and
    /// attaches a fresh shared checkpoint store.
    #[must_use]
    pub fn with_fast_forward(mut self, skip: u64, warmup: u64) -> EngineOptions {
        self.skip = skip;
        self.warmup = warmup;
        if skip > 0 && self.ckpt.is_none() {
            self.ckpt = Some(CheckpointStore::new());
        }
        self
    }

    /// Attaches (or detaches) a checkpoint store.
    #[must_use]
    pub fn with_checkpoint_store(mut self, store: Option<CheckpointStore>) -> EngineOptions {
        self.ckpt = store;
        self
    }

    /// Attaches a metrics hub.
    #[must_use]
    pub fn with_metrics(mut self, hub: SharedRegistry) -> EngineOptions {
        self.metrics = hub;
        self
    }

    /// Attaches an execution backend for pending jobs.
    #[must_use]
    pub fn with_executor(mut self, executor: Arc<dyn JobExecutor>) -> EngineOptions {
        self.executor = Some(executor);
        self
    }

    /// The resolved worker count for a batch of `pending` runnable jobs.
    #[must_use]
    pub fn worker_count(&self, pending: usize) -> usize {
        let requested = match self.jobs {
            0 => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        requested.min(pending).max(1)
    }
}

/// Executes a batch of jobs and returns one result per job, **in job
/// order**. Duplicate points (equal [`JobSpec::key`]) and points already
/// in `opts.cache` are simulated only once; because results are written
/// back by index and the simulator is deterministic, the returned vector
/// is identical whatever `opts.jobs` is.
///
/// # Errors
///
/// Returns the failure of the lowest-indexed failing job (every scheduled
/// job still runs to completion first, so the reported error does not
/// depend on thread timing).
pub fn run_jobs(
    jobs: &[JobSpec],
    opts: &EngineOptions,
) -> Result<Vec<Arc<RunResult>>, ExperimentError> {
    let batch_start = Instant::now();
    // Collapse the batch to unique keys, in first-appearance order.
    let mut key_to_unique: HashMap<JobKey, usize> = HashMap::new();
    let mut uniques: Vec<&JobSpec> = Vec::new();
    let mut job_unique: Vec<usize> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let next = uniques.len();
        let u = *key_to_unique.entry(job.key_with(opts.skip, opts.warmup)).or_insert(next);
        if u == next {
            uniques.push(job);
        }
        job_unique.push(u);
    }

    // Resolve what the cache already knows; the rest is pending work.
    let mut resolved: Vec<Option<Arc<RunResult>>> = vec![None; uniques.len()];
    let mut pending: Vec<(usize, &JobSpec)> = Vec::new();
    for (u, spec) in uniques.iter().enumerate() {
        match opts.cache.lookup(spec.key_with(opts.skip, opts.warmup)) {
            Some(hit) => resolved[u] = Some(hit),
            None => pending.push((u, spec)),
        }
    }
    let misses = pending.len() as u64;
    opts.cache.record(jobs.len() as u64 - misses, misses);
    opts.metrics.add_host(HostCounter::JobsSimulated, misses);
    opts.metrics.add_host(HostCounter::JobsDeduplicated, jobs.len() as u64 - misses);
    opts.metrics.max_host(HostCounter::JobQueueDepthPeak, pending.len() as u64);

    if pending.is_empty() {
        // Everything resolved from the cache; skip both backends.
    } else if let Some(executor) = &opts.executor {
        // Pluggable backend: the deduplicated pending batch runs wherever
        // the executor decides (e.g. leased to riq-serve workers). The
        // backend fast-forwards on its side; results come back in order.
        let specs: Vec<JobSpec> = pending.iter().map(|(_, s)| (*s).clone()).collect();
        let results = executor.execute(&specs, opts.skip, opts.warmup)?;
        if results.len() != pending.len() {
            return Err(ExperimentError::JobFailed {
                kernel: pending.first().map_or_else(String::new, |(_, s)| s.kernel.clone()),
                message: format!(
                    "executor returned {} results for {} pending jobs",
                    results.len(),
                    pending.len()
                ),
            });
        }
        for ((u, spec), result) in pending.iter().zip(results) {
            opts.cache.store(spec.key_with(opts.skip, opts.warmup), Arc::clone(&result));
            resolved[*u] = Some(result);
        }
    } else {
        run_pending_local(&pending, opts, &mut resolved)?;
    }

    let out: Vec<Arc<RunResult>> = job_unique
        .into_iter()
        .map(|u| resolved[u].clone().expect("every unique job resolved"))
        .collect();

    // Per-job accumulation into the hub: a pure function of the job list
    // (dedup resolves identically for any worker count), so the merged
    // sim-domain totals are deterministic. Profiled results carry a full
    // snapshot; anything else (speed mode, or a cache hit from an
    // unprofiled batch) contributes its headline stats.
    if opts.metrics.is_enabled() {
        for r in &out {
            match r.metrics.as_ref() {
                Some(snap) => opts.metrics.merge_run(snap),
                None => {
                    opts.metrics.add_sim(SimCounter::Cycles, r.stats.cycles);
                    opts.metrics.add_sim(SimCounter::Committed, r.stats.committed);
                }
            }
        }
        opts.metrics
            .add_host(HostCounter::EngineWallNanos, batch_start.elapsed().as_nanos() as u64);
    }
    Ok(out)
}

/// Extracts a human-readable message from a worker panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Simulates the pending points on the calling process's thread pool:
/// workers pull the next index from a shared cursor and write into their
/// job's dedicated slot. A panicking job is caught and reported as
/// [`ExperimentError::JobFailed`] — it never poisons the batch or kills
/// the other workers' jobs.
fn run_pending_local(
    pending: &[(usize, &JobSpec)],
    opts: &EngineOptions,
    resolved: &mut [Option<Arc<RunResult>>],
) -> Result<(), ExperimentError> {
    // Fast-forward pre-pass (serial): with a store, every configuration of
    // a program shares one checkpoint; without one, each job fast-forwards
    // itself — same deterministic snapshot, no amortization.
    let ff_start = Instant::now();
    let checkpoints: Vec<Option<Arc<Checkpoint>>> = if opts.skip == 0 {
        vec![None; pending.len()]
    } else {
        pending
            .iter()
            .map(|(_, spec)| {
                let ckpt = match &opts.ckpt {
                    Some(store) => store.get_or_create(&spec.program, opts.skip, opts.warmup),
                    None => Checkpoint::fast_forward(&spec.program, opts.skip, opts.warmup)
                        .map(Arc::new),
                };
                ckpt.map(Some).map_err(|source| ExperimentError::FastForward {
                    kernel: spec.kernel.clone(),
                    source,
                })
            })
            .collect::<Result<_, _>>()?
    };
    if opts.skip > 0 {
        opts.metrics.add_host(HostCounter::FastForwardNanos, ff_start.elapsed().as_nanos() as u64);
    }

    let slots: Vec<Mutex<Option<Result<RunResult, ExperimentError>>>> =
        pending.iter().map(|_| Mutex::new(None)).collect();
    let workers = opts.worker_count(pending.len());
    let profiled = opts.metrics.wants_profile();
    let execute = |i: usize| {
        let spec = pending[i].1;
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
            let proc = Processor::new(spec.config.clone());
            match (&checkpoints[i], profiled) {
                (Some(ckpt), false) => proc.resume_from(&spec.program, ckpt, opts.warmup),
                (None, false) => proc.run(&spec.program),
                (Some(ckpt), true) => proc.resume_profiled(
                    &spec.program,
                    ckpt,
                    opts.warmup,
                    None,
                    &mut NullSink,
                    None,
                    opts.profile,
                ),
                (None, true) => proc.run_profiled(&spec.program, &mut NullSink, None, opts.profile),
            }
        }));
        let outcome = match attempt {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(source)) => Err(ExperimentError::Sim { kernel: spec.kernel.clone(), source }),
            Err(payload) => Err(ExperimentError::JobFailed {
                kernel: spec.kernel.clone(),
                message: format!("worker panicked: {}", panic_message(payload.as_ref())),
            }),
        };
        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
    };
    if workers <= 1 {
        (0..pending.len()).for_each(execute);
    } else {
        let cursor = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= pending.len() {
                        break;
                    }
                    execute(i);
                });
            }
        });
    }

    // Harvest in enumeration order so the first error is deterministic.
    for ((u, spec), slot) in pending.iter().zip(slots) {
        let outcome =
            slot.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or_else(|| {
                Err(ExperimentError::JobFailed {
                    kernel: spec.kernel.clone(),
                    message: "worker exited without filling the job's result slot".to_string(),
                })
            });
        match outcome {
            Ok(result) => {
                let result = Arc::new(result);
                opts.cache.store(spec.key_with(opts.skip, opts.warmup), Arc::clone(&result));
                resolved[*u] = Some(result);
            }
            Err(err) => return Err(err),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn tiny_program() -> Arc<Program> {
        Arc::new(
            assemble("  li $r2, 30\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $zero, loop\n  halt\n")
                .expect("assembles"),
        )
    }

    #[test]
    fn duplicate_jobs_simulate_once() {
        let program = tiny_program();
        let cfg = SimConfig::baseline();
        let jobs = vec![
            JobSpec::new("a", &program, cfg.clone()),
            JobSpec::new("b", &program, cfg.clone().with_reuse(true)),
            JobSpec::new("c", &program, cfg),
        ];
        let opts = EngineOptions::serial();
        let results = run_jobs(&jobs, &opts).expect("runs");
        assert!(Arc::ptr_eq(&results[0], &results[2]), "duplicate shares one result");
        assert!(!Arc::ptr_eq(&results[0], &results[1]));
        assert_eq!(opts.cache.misses(), 2, "two unique points simulated");
        assert_eq!(opts.cache.hits(), 1, "the in-batch duplicate was a hit");
        assert_eq!(opts.cache.len(), 2);
    }

    #[test]
    fn cache_carries_across_batches() {
        let program = tiny_program();
        let jobs = vec![JobSpec::new("a", &program, SimConfig::baseline())];
        let opts = EngineOptions::serial();
        run_jobs(&jobs, &opts).expect("first run");
        let again = run_jobs(&jobs, &opts).expect("second run");
        assert_eq!(opts.cache.hits(), 1);
        assert_eq!(opts.cache.misses(), 1);
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn first_failing_job_reported() {
        let program = tiny_program();
        let mut starved = SimConfig::baseline();
        starved.max_cycles = 2;
        let jobs = vec![
            JobSpec::new("fine", &program, SimConfig::baseline()),
            JobSpec::new("starved", &program, starved),
        ];
        let err = run_jobs(&jobs, &EngineOptions::with_jobs(2)).expect_err("must fail");
        match err {
            ExperimentError::Sim { kernel, .. } => assert_eq!(kernel, "starved"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn fast_forwarded_batch_matches_from_zero_and_amortizes() {
        let program = tiny_program();
        let jobs = vec![
            JobSpec::new("base", &program, SimConfig::baseline()),
            JobSpec::new("reuse", &program, SimConfig::baseline().with_reuse(true)),
        ];
        let from_zero = run_jobs(&jobs, &EngineOptions::serial()).expect("from-zero");

        let opts = EngineOptions::serial().with_fast_forward(40, 16);
        let store = opts.ckpt.clone().expect("with_fast_forward attaches a store");
        let resumed = run_jobs(&jobs, &opts).expect("resumed");
        assert_eq!(store.created(), 1, "one program, one fast-forward");
        assert_eq!(store.reused(), 1, "second configuration reuses it");
        for (z, r) in from_zero.iter().zip(&resumed) {
            assert_eq!(z.arch_state, r.arch_state, "final state is skip-independent");
            assert_eq!(z.mem_digest, r.mem_digest);
        }

        // Without a store, results are identical — only amortization is lost.
        let solo = run_jobs(
            &jobs,
            &EngineOptions::serial().with_fast_forward(40, 16).with_checkpoint_store(None),
        )
        .expect("storeless");
        for (r, s) in resumed.iter().zip(&solo) {
            assert_eq!(r.stats.cycles, s.stats.cycles, "store on/off is bit-identical");
            assert_eq!(r.arch_state, s.arch_state);
        }
    }

    #[test]
    fn skip_zero_normalizes_the_cache_key() {
        let program = tiny_program();
        let jobs = vec![JobSpec::new("a", &program, SimConfig::baseline())];
        let opts = EngineOptions::serial();
        run_jobs(&jobs, &opts).expect("plain run");
        // A skip-0 "fast-forward" request is the same work and must hit.
        let aliased =
            EngineOptions { jobs: 1, cache: opts.cache.clone(), ..EngineOptions::default() }
                .with_fast_forward(0, 64);
        run_jobs(&jobs, &aliased).expect("aliased run");
        assert_eq!(opts.cache.misses(), 1);
        assert_eq!(opts.cache.hits(), 1);
    }

    #[test]
    fn metrics_hub_accumulates_deterministically() {
        use riq_metrics::HubMode;
        let program = tiny_program();
        let jobs = vec![
            JobSpec::new("a", &program, SimConfig::baseline()),
            JobSpec::new("b", &program, SimConfig::baseline().with_reuse(true)),
            JobSpec::new("dup", &program, SimConfig::baseline()),
        ];
        let run_with = |jobs_n: usize, mode: HubMode| {
            let hub = SharedRegistry::new(mode);
            let opts =
                EngineOptions { jobs: jobs_n, ..Default::default() }.with_metrics(hub.clone());
            run_jobs(&jobs, &opts).expect("runs");
            hub.snapshot()
        };
        let serial = run_with(1, HubMode::Speed);
        let parallel = run_with(3, HubMode::Speed);
        assert_eq!(serial.sim, parallel.sim, "sim totals are worker-count independent");
        assert!(serial.sim(SimCounter::Cycles) > 0);
        assert_eq!(serial.host(HostCounter::JobsSimulated), 2);
        assert_eq!(serial.host(HostCounter::JobsDeduplicated), 1);
        // Profiling reports the same headline totals plus visit counters.
        let profiled = run_with(2, HubMode::Profile);
        assert_eq!(profiled.sim(SimCounter::Cycles), serial.sim(SimCounter::Cycles));
        assert_eq!(profiled.sim(SimCounter::Committed), serial.sim(SimCounter::Committed));
        assert!(profiled.sim(SimCounter::IqScanVisits) > 0);
        // The disabled default records nothing.
        let opts = EngineOptions::serial();
        run_jobs(&jobs, &opts).expect("runs");
        assert_eq!(opts.metrics.snapshot().sim(SimCounter::Cycles), 0);
    }

    #[test]
    fn worker_count_is_clamped() {
        let opts = EngineOptions::with_jobs(8);
        assert_eq!(opts.worker_count(3), 3);
        assert_eq!(opts.worker_count(0), 1);
        assert!(EngineOptions::with_jobs(0).worker_count(64) >= 1);
    }

    // Debug-only: the panic is an arithmetic overflow, which release
    // builds wrap instead of trapping.
    #[cfg(debug_assertions)]
    #[test]
    fn panicking_job_fails_batch_without_poisoning() {
        let program = tiny_program();
        let mut bad = SimConfig::baseline();
        // Passes validation but overflows `now + latency` on the first
        // issued ALU op, panicking inside the worker.
        bad.latency.int_alu = u64::MAX;
        let jobs = vec![
            JobSpec::new("fine", &program, SimConfig::baseline()),
            JobSpec::new("explodes", &program, bad),
        ];
        let opts = EngineOptions::with_jobs(2);
        let err = run_jobs(&jobs, &opts).expect_err("panicking job must fail the batch");
        match err {
            ExperimentError::JobFailed { kernel, message } => {
                assert_eq!(kernel, "explodes");
                assert!(message.contains("panicked"), "message carries the panic: {message}");
            }
            other => panic!("unexpected error {other}"),
        }
        // The shared cache survives unpoisoned with the good job stored.
        assert_eq!(opts.cache.len(), 1);
        let ok = run_jobs(&jobs[..1], &opts).expect("the surviving job still resolves");
        assert_eq!(ok.len(), 1);
    }

    /// An executor that simulates in-process — the conformance baseline.
    struct InProcessExecutor;

    impl JobExecutor for InProcessExecutor {
        fn execute(
            &self,
            jobs: &[JobSpec],
            skip: u64,
            warmup: u64,
        ) -> Result<Vec<Arc<RunResult>>, ExperimentError> {
            run_jobs(jobs, &EngineOptions { jobs: 1, skip, warmup, ..Default::default() })
        }
    }

    #[test]
    fn executor_backend_is_bit_identical() {
        let program = tiny_program();
        let jobs = vec![
            JobSpec::new("a", &program, SimConfig::baseline()),
            JobSpec::new("b", &program, SimConfig::baseline().with_reuse(true)),
            JobSpec::new("dup", &program, SimConfig::baseline()),
        ];
        let local = run_jobs(&jobs, &EngineOptions::serial()).expect("local");
        let opts = EngineOptions::default().with_executor(Arc::new(InProcessExecutor));
        let routed = run_jobs(&jobs, &opts).expect("routed");
        assert_eq!(local.len(), routed.len());
        for (l, r) in local.iter().zip(&routed) {
            assert_eq!(l.stats, r.stats, "executor path is bit-identical");
            assert_eq!(l.arch_state, r.arch_state);
            assert_eq!(l.mem_digest, r.mem_digest);
        }
        assert!(Arc::ptr_eq(&routed[0], &routed[2]), "dedup still applies around the executor");
    }

    /// An executor that loses results.
    struct ShortExecutor;

    impl JobExecutor for ShortExecutor {
        fn execute(
            &self,
            _jobs: &[JobSpec],
            _skip: u64,
            _warmup: u64,
        ) -> Result<Vec<Arc<RunResult>>, ExperimentError> {
            Ok(Vec::new())
        }
    }

    #[test]
    fn executor_result_count_mismatch_is_a_job_failure() {
        let program = tiny_program();
        let jobs = vec![JobSpec::new("a", &program, SimConfig::baseline())];
        let opts = EngineOptions::default().with_executor(Arc::new(ShortExecutor));
        let err = run_jobs(&jobs, &opts).expect_err("short executor must fail");
        match err {
            ExperimentError::JobFailed { message, .. } => {
                assert!(message.contains("0 results"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
