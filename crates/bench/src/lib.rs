//! # riq-bench — experiment harness for the DATE 2004 reproduction
//!
//! Regenerates every table and figure of *Scheduling Reusable Instructions
//! for Power Reduction* through a single parallel experiment engine:
//!
//! * [`Experiment`] names each figure/ablation of the evaluation and
//!   [`run_experiment`] is the one entry point that runs any of them;
//! * each experiment enumerates its simulation points as flat
//!   [`JobSpec`] `{ kernel, program, config }` lists, executed by
//!   [`run_jobs`] across [`EngineOptions::jobs`] worker threads (std-only
//!   scoped threads pulling from a shared atomic cursor);
//! * a [`ResultCache`] keyed by `(program fingerprint, config
//!   fingerprint)` deduplicates points shared between experiments —
//!   share one [`EngineOptions`] across calls and e.g. Figure 9's
//!   "original" column reuses the Figure 5–8 sweep's 64-entry runs;
//! * results are aggregated **by job index**, so parallel output is
//!   bit-identical to serial output (`tests/engine_determinism.rs`).
//!
//! | experiment | API | binary command |
//! |------------|-----|----------------|
//! | Table 1 (baseline config) | [`table1`] | `riq-repro table1` |
//! | Table 2 (benchmarks) | [`table2`] | `riq-repro table2` |
//! | Figures 5–8 (sweep) | [`Experiment::Fig5_8`] | `riq-repro fig5`…`fig8` |
//! | Figure 9 (loop distribution) | [`Experiment::Fig9`] | `riq-repro fig9` |
//! | §3 NBLT claim | [`Experiment::NbltAblation`] | `riq-repro nblt` |
//! | §2.2.1 strategies | [`Experiment::StrategyAblation`] | `riq-repro strategy` |
//! | predictor ablation | [`Experiment::BpredAblation`] | `riq-repro bpred` |
//! | loop transforms | [`Experiment::TransformAblation`] | `riq-repro transforms` |
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_bench::{run_experiment, EngineOptions, Experiment, Sweep};
//!
//! // One experiment, all CPUs, per-figure views of the stacked table:
//! let opts = EngineOptions::default();
//! let t = run_experiment(&Experiment::Fig5_8 { scale: 1.0 }, &opts)?;
//! println!("{}", t.sub_table("fig5", "benchmark"));
//!
//! // Or keep the point-level sweep for custom analysis:
//! let sweep = Sweep::run_with(1.0, &opts)?; // cache makes this free now
//! println!("{}", sweep.fig7()?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attribution;
mod bench_cmd;
mod engine;
mod experiment;
mod harness;
mod report;
mod service;
mod tables;

pub use attribution::{run_attribution_corpus, CorpusReport, FamilyRow, CORPUS_SCHEMA_VERSION};
pub use bench_cmd::{
    append_record, matrix_jobs, run_bench, run_bench_with_store, validate_bench_doc, BenchRun,
    BENCH_IQ_SIZES, BENCH_SCHEMA_VERSION, QUICK_SCALE,
};
pub use engine::{
    run_jobs, EngineOptions, ExperimentError, JobExecutor, JobKey, JobSpec, ResultCache,
};
pub use experiment::{run_experiment, Experiment};
pub use harness::{
    fig9_points, fig9_table, run_pair, Fig9Point, FigTable, PairResult, Sweep, IQ_SIZES,
    POLICY_IQ_SIZES,
};
pub use report::{report_json, CheckpointProvenance, RunSpec, REPORT_SCHEMA_VERSION};
pub use riq_ckpt::CheckpointStore;
pub use service::{experiment_from_label, start_daemon, Daemon, DaemonOptions};
pub use tables::{table1, table2};
