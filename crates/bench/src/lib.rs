//! # riq-bench — experiment harness for the DATE 2004 reproduction
//!
//! Regenerates every table and figure of *Scheduling Reusable Instructions
//! for Power Reduction*:
//!
//! | experiment | entry point | binary command |
//! |------------|-------------|----------------|
//! | Table 1 (baseline config) | [`table1`] | `riq-repro table1` |
//! | Table 2 (benchmarks) | [`table2`] | `riq-repro table2` |
//! | Figure 5 (gated cycles) | [`Sweep::fig5`] | `riq-repro fig5` |
//! | Figure 6 (component power) | [`Sweep::fig6`] | `riq-repro fig6` |
//! | Figure 7 (overall power) | [`Sweep::fig7`] | `riq-repro fig7` |
//! | Figure 8 (IPC impact) | [`Sweep::fig8`] | `riq-repro fig8` |
//! | Figure 9 (loop distribution) | [`fig9`] | `riq-repro fig9` |
//! | §3 NBLT claim | [`nblt_ablation`] | `riq-repro nblt` |
//! | §2.2.1 strategies | [`strategy_ablation`] | `riq-repro strategy` |
//! | predictor ablation | [`bpred_ablation`] | `riq-repro bpred` |
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_bench::Sweep;
//! let sweep = Sweep::run(1.0)?; // the full evaluation
//! println!("{}", sweep.fig5());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod harness;
mod report;
mod tables;

pub use harness::{
    bpred_ablation, fig9, fig9_table, nblt_ablation, run_pair, strategy_ablation,
    transform_ablation, ExperimentError, Fig9Point, FigTable, PairResult, Sweep, IQ_SIZES,
};
pub use report::{report_json, RunSpec, REPORT_SCHEMA_VERSION};
pub use tables::{table1, table2};
