//! Tables 1 and 2 of the paper, rendered from the live configuration.

use riq_core::SimConfig;
use riq_kernels::{inner_loop_span, suite};
use std::fmt::Write as _;

/// Renders the paper's Table 1 from the *actual* baseline [`SimConfig`]
/// (so the printed table can never drift from what the simulator runs).
#[must_use]
pub fn table1() -> String {
    let c = SimConfig::baseline();
    let mut s = String::new();
    let mut row = |k: &str, v: String| {
        let _ = writeln!(s, "{k:<22}{v}");
    };
    row("Issue Queue", format!("{} entries", c.iq_entries));
    row("Load/Store Queue", format!("{} entries", c.lsq_entries));
    row("ROB", format!("{} entries", c.rob_entries));
    row("Fetch Queue", format!("{} entries", c.fetch_queue));
    row("Fetch/Decode Width", format!("{} inst. per cycle", c.fetch_width));
    row("Issue/Commit Width", format!("{} inst. per cycle", c.issue_width));
    row(
        "Function Units",
        format!(
            "{} IALU, {} IMULT, {} FPALU, {} FPMULT, {} mem ports",
            c.fu.int_alu, c.fu.int_mult, c.fu.fp_alu, c.fu.fp_mult, c.fu.mem_ports
        ),
    );
    row("Branch Predictor", format!("bimod, 2048 entries, RAS {} entries", c.bpred.ras_entries));
    row("BTB", format!("{} set {} way assoc.", c.bpred.btb_sets, c.bpred.btb_ways));
    let cache = |cc: riq_mem::CacheConfig| {
        format!(
            "{}KB, {} way, {} cycle{}",
            cc.capacity() / 1024,
            cc.ways,
            cc.hit_latency,
            if cc.hit_latency == 1 { "" } else { "s" }
        )
    };
    row("L1 ICache", cache(c.mem.il1));
    row("L1 DCache", cache(c.mem.dl1));
    row("L2 UCache", cache(c.mem.l2));
    row(
        "TLB",
        format!(
            "ITLB: {} set {} way, DTLB: {} set {} way, {} cycle penalty",
            c.mem.itlb.sets,
            c.mem.itlb.ways,
            c.mem.dtlb.sets,
            c.mem.dtlb.ways,
            c.mem.itlb.miss_penalty
        ),
    );
    row(
        "Memory",
        format!(
            "{} cycles for first chunk, {} cycles the rest",
            c.mem.memory.first_chunk, c.mem.memory.inter_chunk
        ),
    );
    s
}

/// Renders the paper's Table 2 (benchmark list) with the synthetic
/// kernels' measured innermost spans.
#[must_use]
pub fn table2() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<10}{:<16}{:>20}", "Name", "Source", "innermost span");
    for k in suite() {
        let span = inner_loop_span(&k.nests[0].inners[0]);
        let _ = writeln!(s, "{:<10}{:<16}{:>14} insts", k.name, k.source, span);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_the_paper_values() {
        let t = table1();
        for needle in [
            "64 entries",
            "32 entries",
            "4 inst. per cycle",
            "4 IALU, 1 IMULT, 4 FPALU, 1 FPMULT",
            "bimod, 2048 entries, RAS 8 entries",
            "512 set 4 way assoc.",
            "32KB, 2 way, 1 cycle",
            "32KB, 4 way, 1 cycle",
            "256KB, 4 way, 8 cycles",
            "ITLB: 16 set 4 way, DTLB: 32 set 4 way, 30 cycle penalty",
            "80 cycles for first chunk, 8 cycles the rest",
        ] {
            assert!(t.contains(needle), "table1 missing {needle:?}:\n{t}");
        }
    }

    #[test]
    fn table2_lists_all_eight() {
        let t = table2();
        for name in ["adi", "aps", "btrix", "eflux", "tomcat", "tsf", "vpenta", "wss"] {
            assert!(t.contains(name), "{t}");
        }
        assert!(t.contains("Livermore"));
        assert!(t.contains("Perfect Club"));
        assert!(t.contains("Spec95"));
        assert!(t.contains("Spec92/NASA"));
    }
}
