//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here is just a deterministic
/// sampler — there is no value tree and no shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or the weights sum to zero.
    #[must_use]
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.variants {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("pick below total weight")
    }
}

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the tests use.
pub trait ArbitraryValue {
    /// Draws a uniformly distributed value of the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for a primitive type: `any::<u32>()`.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (<$wide>::from(self.end) - <$wide>::from(self.start)) as u64;
                let off = rng.below(span);
                (<$wide>::from(self.start) + off as $wide) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8 => u64, u16 => u64, u32 => u64, i8 => i64, i16 => i64, i32 => i64);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
