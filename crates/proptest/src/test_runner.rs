//! Run configuration (`ProptestConfig`).

/// Per-test configuration; only `cases` is honoured by this offline shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Why a single generated case did not pass, mirroring the upstream type so
/// test bodies can `return Ok(())` / `Err(TestCaseError::reject(..))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected (e.g. by an input filter); not a failure.
    Reject(String),
    /// The property failed for this case.
    Fail(String),
}

impl TestCaseError {
    /// Rejects the current case without failing the test.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }

    /// Fails the test with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
        }
    }
}
