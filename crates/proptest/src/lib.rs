//! # riq-proptest — an offline, drop-in subset of [proptest]
//!
//! The workspace's property tests were written against the real `proptest`
//! crate, but the build environment has no network access to crates.io.
//! This crate implements exactly the API subset those tests use — the
//! [`Strategy`] trait with [`Strategy::prop_map`], [`Just`], [`any`],
//! integer/float range strategies, tuple composition, weighted
//! [`prop_oneof!`], [`collection::vec`], the [`proptest!`] test macro and
//! the `prop_assert*` family — so the test files compile unchanged.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated values in
//!   the assertion message; generation is deterministic (a fixed seed mixed
//!   with the test name), so failures reproduce exactly.
//! * **No persistence.** `.proptest-regressions` files are ignored.
//! * **No forking, timeouts, or custom `TestRunner` plumbing.**
//!
//! Set the `RIQ_PROPTEST_SEED` environment variable to an integer to run
//! every test with a different deterministic seed stream.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Splitmix64-based deterministic generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Creates the deterministic generator for one named test, honouring
    /// the `RIQ_PROPTEST_SEED` override.
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("RIQ_PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h = h.wrapping_add(extra.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            }
        }
        TestRng::from_seed(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping is fine for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the real crate's `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs one or more property tests: `proptest! { #![proptest_config(..)]
/// #[test] fn name(x in strategy, ..) { body } .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // Mirror upstream: the body runs as a fallible closure so it
                // may `return Ok(())` early or reject a case without failing.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!("{e}"),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted or unweighted union of strategies producing the same value
/// type: `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..2000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::generate(&(-5i32..6), &mut rng);
            assert!((-5..6).contains(&s));
            let f = Strategy::generate(&(0.25f64..4.0), &mut rng);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn oneof_weights_skew_distribution() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| Strategy::generate(&s, &mut rng)).count();
        assert!(hits > 800, "expected ~900 true, got {hits}");
    }

    #[test]
    fn vec_sizes_and_maps() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let w = Strategy::generate(&prop::collection::vec(any::<bool>(), 4), &mut rng);
            assert_eq!(w.len(), 4);
        }
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(Strategy::generate(&doubled, &mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_form_works(a in any::<u8>(), (x, y) in (0u32..4, any::<bool>())) {
            prop_assert!(u32::from(a) < 256);
            prop_assert!(x < 4);
            prop_assert_eq!(y, y);
        }
    }
}
