//! Replays every checked-in fuzz corpus program against the full
//! differential matrix: the emulator oracle, reuse at several IQ sizes,
//! and checkpoint-resume legs must all agree.
//!
//! The corpus under `tests/corpus/` holds one hand-picked generator
//! output per structural family (nested loops, an IQ-overflowing body, a
//! data-dependent exit, FP edge values, bounded recursion) plus any
//! minimized repro a past fuzzing run shipped. A program that regresses
//! here is a bug in the core, not in the corpus: fix the core.

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus")
}

#[test]
fn every_corpus_program_replays_green() {
    let matrix = riq::fuzz::default_matrix();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 5,
        "the corpus seeds one exemplar per generator family; found {}",
        entries.len()
    );
    for path in entries {
        let source = std::fs::read_to_string(&path).expect("corpus file readable");
        let report = riq::fuzz::check_source(&source, &matrix);
        assert!(report.passed(), "{} diverged: {:?}", path.display(), report.failures);
    }
}

#[test]
fn corpus_covers_each_family() {
    let expected =
        ["nested-loop.s", "iq-overflow.s", "data-dep-exit.s", "fp-edge.s", "recursion.s"];
    for name in expected {
        assert!(
            corpus_dir().join(name).is_file(),
            "family exemplar {name} missing from tests/corpus/"
        );
    }
}
