//! Property-based validation of the Section 4 loop-distribution pass:
//! for random legal loop bodies, the distributed kernel must leave the
//! same array contents as the original (checked via the functional
//! emulator), and the pieces must respect the dependence partial order.

use proptest::prelude::*;
use riq::emu::Machine;
use riq::kernels::{
    compile, dependence_edges, distribute_kernel, distribute_loop, BinOp, Expr, InnerLoop, Kernel,
    Stmt, GUARD_ELEMS,
};

const ARRAYS: usize = 5;
const TRIP: u32 = 24;

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    // target, target offset, two reads (array, offset), op pair
    (
        0..ARRAYS,
        -2i32..3,
        (0..ARRAYS, -2i32..3),
        (0..ARRAYS, -2i32..3),
        prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)],
        prop_oneof![Just(BinOp::Add), Just(BinOp::Mul)],
        0.25f64..4.0,
    )
        .prop_map(|(t, toff, (a1, o1), (a2, o2), op1, op2, lit)| {
            Stmt::new(
                t,
                toff,
                Expr::bin(op1, Expr::bin(op2, Expr::a(a1, o1), Expr::Lit(lit)), Expr::a(a2, o2)),
            )
        })
}

fn kernel_from(stmts: Vec<Stmt>) -> Kernel {
    let mut k = Kernel::new("prop", "synthetic");
    for i in 0..ARRAYS {
        k.array(format!("a{i}"), TRIP + 2 * GUARD_ELEMS);
    }
    k.nest(2, vec![InnerLoop::new(TRIP, stmts)]);
    k
}

fn array_contents(kernel: &Kernel) -> Vec<Vec<u64>> {
    let program = compile(kernel).expect("compiles");
    let mut m = Machine::new(&program);
    m.run(50_000_000).expect("halts");
    kernel
        .arrays
        .iter()
        .map(|decl| {
            let base =
                program.symbol(&format!("{}_{}", kernel.name, decl.name)).expect("array symbol")
                    + GUARD_ELEMS * 8;
            (0..decl.len).map(|i| m.memory().load_u64(base + 8 * i).expect("aligned")).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn distribution_preserves_array_contents(
        stmts in prop::collection::vec(stmt_strategy(), 2..7)
    ) {
        let original = kernel_from(stmts);
        let optimized = distribute_kernel(&original);
        prop_assert!(optimized.validate().is_ok());
        let before = array_contents(&original);
        let after = array_contents(&optimized);
        prop_assert_eq!(before, after, "distribution changed semantics");
    }

    #[test]
    fn pieces_respect_the_dependence_order(
        raw in prop::collection::vec(stmt_strategy(), 2..7)
    ) {
        // Make statements structurally unique (literals carry the index)
        // so `piece_of` below is unambiguous; literals never create
        // dependences, so the graph is unchanged.
        let stmts: Vec<Stmt> = raw
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let tag = Expr::Lit(1.0 + i as f64 * 1e-6);
                Stmt::new(s.target, s.offset, Expr::bin(BinOp::Add, s.rhs, tag))
            })
            .collect();
        let edges = dependence_edges(&stmts);
        let l = InnerLoop::new(TRIP, stmts.clone());
        let pieces = distribute_loop(&l);
        // Map each statement (by structural identity) to its piece index.
        let piece_of = |s: &Stmt| -> usize {
            pieces
                .iter()
                .position(|p| p.stmts.iter().any(|q| q == s))
                .expect("every statement lands in exactly one piece")
        };
        for e in &edges {
            let pf = piece_of(&stmts[e.from]);
            let pt = piece_of(&stmts[e.to]);
            prop_assert!(
                pf <= pt,
                "edge S{} -> S{} violated: piece {} after piece {}",
                e.from, e.to, pf, pt
            );
        }
        // Statement multiset is preserved.
        let total: usize = pieces.iter().map(|p| p.stmts.len()).sum();
        prop_assert_eq!(total, stmts.len());
    }
}
