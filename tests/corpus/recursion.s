# riq-fuzz corpus: recursion family (generator seed 1005)
# Replayed by tests/corpus_replay.rs against the full differential matrix.
# riq-fuzz generated program, seed=0x3ed
.data
buf:
    .space 256
vals:
    .word 0xa00d9f0a, 0xd89ad29f, 0x2c812c4f, 0xe2c7b423
    .word 0xff62c156, 0xeab565dc, 0x4fbdea36, 0x4ce6ef2f
    .word 0x7e8c0852, 0xe65fa35f, 0x4949d6ff, 0x522bb73a
    .word 0xedb02118, 0x22b210ea, 0xb7b9f51f, 0xd279ff8e
fpt:
    .word 0x0, 0x7ff80000
    .word 0x0, 0x7ff00000
    .word 0x0, 0xfff00000
    .word 0x1, 0x0
    .word 0x0, 0x80000000
    .word 0x0, 0x3ff80000
    .word 0x8800759c, 0x7e37e43c
    .word 0xc2f8f359, 0x1a56e1f
.text
    la $r14, buf
    la $r15, buf
    addi $r15, $r15, 16
    la $r19, fpt
    la $r20, vals
    li $r3, 0xdfd00283
    li $r4, 0x6eb43963
    li $r5, 0xd4e755a0
    li $r6, 0x4d9b342c
    li $r7, 0x223550e
    li $r8, 0x1e379c9
    li $r9, 0x157778e7
    li $r16, 0x63d099f7
    l.d $f5, 168($r14)
    sw $r7, 100($r15)
    c.le.d $r16, $f1, $f2
    mfc1 $r3, $f0
    move $r7, $r0
    div.d $f5, $f0, $f6
    li $r10, 2
L1:
    rem $r8, $r5, $r17
    l.d $f3, 16($r19)
    xor $r16, $r7, $r8
    addi $r10, $r10, -1
    bgtz $r10, L1
    mul.d $f0, $f0, $f7
    slt $r7, $r3, $r3
    li $r10, 4
L2:
    li $r11, 4
L3:
    srav $r3, $r6, $r9
    li $r2, 2
    jal rec
    mtc1 $r5, $f2
    l.d $f4, 8($r15)
    and $r4, $r17, $r5
    lw $r7, 80($r15)
    c.eq.d $r9, $f0, $f2
    slti $r6, $r16, -316
    lw $r9, 60($r15)
    addi $r3, $r0, 1256
    jal leaf
    li $r12, 5
L4:
    li $r13, 3
L5:
    rem $r8, $r17, $r4
    lw $r3, 216($r15)
    add.d $f1, $f3, $f6
    mfc1 $r4, $f0
    andi $r16, $r2, 9428
    and $r16, $r0, $r4
    c.le.d $r6, $f2, $f1
    s.d $f7, 152($r14)
    xor $r16, $r2, $r2
    andi $r7, $r16, 856
    srl $r3, $r0, 24
    c.lt.d $r16, $f4, $f0
    sub.d $f4, $f4, $f3
    l.d $f1, 184($r14)
    srl $r9, $r8, 18
    andi $r9, $r9, 15012
    mul.d $f0, $f3, $f0
    sub.d $f5, $f3, $f4
    mov.d $f6, $f2
    lw $r3, 200($r14)
    mtc1 $r3, $f4
    mtc1 $r16, $f5
    or $r7, $r3, $r9
    lw $r4, 72($r14)
    sll $r3, $r6, 15
    ori $r7, $r3, 31349
    c.lt.d $r16, $f2, $f1
    add $r5, $r17, $r16
    add $r8, $r3, $r5
    l.d $f0, 8($r19)
    mov.d $f2, $f7
    xori $r6, $r4, 26724
    sqrt.d $f0, $f2
    mfc1 $r7, $f3
    ori $r9, $r9, 4216
    sra $r5, $r3, 24
    slt $r3, $r17, $r0
    sltu $r16, $r0, $r5
    sll $r8, $r4, 18
    mov.d $f6, $f2
    xori $r5, $r6, 14075
    rem $r6, $r6, $r16
    lw $r7, 60($r14)
    cvt.w.d $f5, $f3
    srlv $r9, $r3, $r6
    sub $r3, $r7, $r17
    addi $r8, $r17, -566
    lw $r16, 148($r14)
    s.d $f2, 8($r15)
    sqrt.d $f0, $f7
    sub.d $f5, $f0, $f1
    sltiu $r3, $r0, 1764
    slti $r8, $r3, 824
    mfc1 $r5, $f2
    lw $r8, 48($r20)
    mul $r3, $r4, $r17
    add $r6, $r5, $r3
    srl $r3, $r8, 14
    lui $r16, 0x3323
    addi $r16, $r17, 537
    andi $r3, $r9, 25916
    sub $r5, $r8, $r5
    neg $r4, $r5
    addi $r13, $r13, -1
    bgtz $r13, L5
    addi $r12, $r12, -1
    bgtz $r12, L4
    addi $r11, $r11, -1
    bgtz $r11, L3
    addi $r10, $r10, -1
    bgtz $r10, L2
    andi $r18, $r16, 4
    beq $r18, $r0, S6
    slti $r7, $r9, -1971
    cvt.d.w $f2, $f0
    li $r10, 1
L7:
    sltiu $r6, $r4, 1277
    andi $r18, $r16, 2
    beq $r18, $r0, S8
    or $r8, $r9, $r8
    li $r11, 1
L9:
    mul.d $f7, $f0, $f1
    l.d $f7, 40($r19)
    lui $r8, 0x6ce0
    lw $r8, 32($r20)
    lui $r5, 0xd0b6
    move $r9, $r9
    andi $r3, $r17, 27044
    lw $r5, 52($r20)
    sllv $r6, $r17, $r2
    sub $r5, $r3, $r9
    sra $r9, $r8, 19
    sw $r6, 12($r14)
    l.d $f2, 184($r14)
    l.d $f0, 16($r15)
    srl $r6, $r3, 13
    lw $r5, 212($r15)
    xori $r9, $r8, 27593
    or $r5, $r17, $r0
    s.d $f1, 88($r14)
    srlv $r9, $r8, $r4
    cvt.w.d $f5, $f5
    srl $r8, $r6, 24
    s.d $f6, 72($r14)
    xori $r16, $r17, 6366
    srl $r16, $r4, 21
    s.d $f6, 168($r15)
    c.lt.d $r8, $f7, $f2
    neg $r16, $r0
    neg $r6, $r8
    mul $r6, $r4, $r17
    nor $r16, $r6, $r7
    xor $r5, $r0, $r3
    or $r9, $r0, $r3
    move $r8, $r3
    cvt.d.w $f7, $f1
    cvt.d.w $f3, $f3
    mul $r8, $r9, $r4
    sltu $r4, $r2, $r8
    xor $r16, $r2, $r2
    lw $r5, 52($r20)
    srav $r3, $r17, $r7
    neg $r9, $r4
    add.d $f7, $f3, $f4
    mtc1 $r2, $f0
    sltiu $r8, $r17, 990
    addi $r16, $r3, 2030
    slti $r6, $r0, 1599
    or $r9, $r6, $r8
    cvt.d.w $f4, $f0
    sltiu $r4, $r8, -502
    l.d $f2, 8($r19)
    c.lt.d $r16, $f5, $f6
    c.eq.d $r3, $f0, $f5
    div $r5, $r0, $r17
    slti $r9, $r8, 1799
    s.d $f2, 72($r15)
    c.lt.d $r4, $f2, $f1
    c.eq.d $r5, $f5, $f0
    sub.d $f0, $f4, $f6
    addi $r9, $r6, 958
    add.d $f6, $f4, $f3
    sub $r8, $r16, $r6
    add.d $f5, $f7, $f2
    addi $r11, $r11, -1
    bgtz $r11, L9
    li $r11, 4
L10:
    sllv $r4, $r2, $r3
    sll $r7, $r9, 27
    lui $r3, 0x38ac
    sub.d $f5, $f0, $f6
    sra $r16, $r6, 14
    sub $r8, $r5, $r6
    lui $r16, 0x5f0c
    l.d $f3, 0($r19)
    sltu $r9, $r4, $r9
    srlv $r5, $r8, $r17
    lw $r7, 40($r20)
    cvt.w.d $f5, $f6
    sw $r7, 192($r14)
    mul $r6, $r9, $r7
    addi $r11, $r11, -1
    bgtz $r11, L10
    srav $r7, $r2, $r8
    andi $r18, $r16, 4
    beq $r18, $r0, S11
    sw $r16, 116($r15)
    sw $r9, 116($r14)
    andi $r9, $r4, 11039
    div.d $f1, $f1, $f2
    add $r7, $r7, $r9
    slt $r6, $r2, $r16
    l.d $f3, 24($r19)
    lw $r16, 48($r20)
    c.eq.d $r16, $f4, $f6
    div $r16, $r0, $r7
    xori $r16, $r0, 24596
    slt $r4, $r4, $r5
S11:
    li $r11, 6
L12:
    srlv $r7, $r2, $r7
    addi $r6, $r7, 1878
    c.eq.d $r3, $f0, $f6
    c.lt.d $r3, $f5, $f1
    neg.d $f4, $f4
    and $r5, $r4, $r8
    sub.d $f6, $f4, $f7
    l.d $f2, 24($r19)
    c.eq.d $r7, $f4, $f3
    lw $r5, 40($r20)
    slt $r6, $r2, $r6
    lw $r16, 220($r14)
    mul.d $f7, $f6, $f6
    sub.d $f1, $f6, $f5
    srav $r4, $r17, $r16
    div $r9, $r5, $r5
    mul.d $f4, $f3, $f3
    add $r16, $r16, $r0
    srlv $r3, $r0, $r0
    sltiu $r7, $r0, 1180
    lw $r6, 28($r20)
    lw $r5, 32($r20)
    xori $r4, $r3, 27202
    sltiu $r8, $r4, -1613
    c.lt.d $r9, $f3, $f7
    sw $r5, 56($r15)
    sllv $r3, $r16, $r4
    add $r3, $r4, $r2
    slt $r4, $r0, $r3
    lw $r3, 164($r15)
    addi $r11, $r11, -1
    bgtz $r11, L12
    jal leaf
    li $r11, 6
L13:
    c.eq.d $r16, $f4, $f1
    slt $r3, $r7, $r3
    mfc1 $r9, $f5
    sra $r6, $r2, 1
    sub $r5, $r17, $r0
    nor $r6, $r2, $r3
    mov.d $f2, $f1
    l.d $f3, 16($r19)
    nor $r4, $r6, $r8
    andi $r8, $r9, 5153
    lw $r8, 112($r14)
    l.d $f5, 16($r14)
    sw $r8, 180($r15)
    sub $r16, $r0, $r7
    addi $r11, $r11, -1
    bgtz $r11, L13
    andi $r18, $r16, 2
    beq $r18, $r0, S14
    mul $r3, $r9, $r4
    xori $r16, $r17, 31976
    move $r5, $r9
    c.eq.d $r5, $f3, $f2
    rem $r6, $r16, $r2
    div.d $f5, $f2, $f5
    l.d $f6, 24($r19)
    l.d $f0, 0($r19)
    div.d $f0, $f0, $f3
    sll $r6, $r6, 21
    neg.d $f6, $f6
    slti $r6, $r7, 1544
    rem $r9, $r9, $r5
    mul $r9, $r2, $r16
    lw $r7, 20($r20)
    lw $r6, 116($r15)
    cvt.d.w $f0, $f3
S14:
    mul.d $f5, $f7, $f6
    sw $r2, 200($r14)
    lui $r7, 0xbc8c
    li $r17, 0xc7c39347
    li $r11, 5
L15:
    andi $r6, $r4, 24535
    cvt.w.d $f4, $f6
    lui $r4, 0xa4f8
    add $r3, $r16, $r4
    sub.d $f4, $f5, $f4
    neg $r8, $r2
    and $r4, $r9, $r17
    sw $r5, 72($r14)
    addi $r8, $r6, -92
    move $r9, $r3
    srlv $r3, $r7, $r4
    mfc1 $r3, $f3
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 1
    beq $r18, $r0, E15
    addi $r11, $r11, -1
    bgtz $r11, L15
E15:
    lw $r5, 76($r14)
    li $r17, 0xdbc4ac53
    li $r11, 8
L16:
    l.d $f1, 24($r19)
    andi $r4, $r4, 3900
    s.d $f5, 96($r14)
    l.d $f5, 0($r19)
    move $r3, $r5
    or $r7, $r8, $r0
    lw $r6, 24($r20)
    add.d $f3, $f0, $f6
    lui $r4, 0x1ea5
    and $r9, $r2, $r8
    mul $r6, $r8, $r9
    cvt.w.d $f6, $f1
    s.d $f7, 16($r15)
    sub.d $f3, $f3, $f4
    sltu $r9, $r7, $r8
    neg $r7, $r0
    sub.d $f0, $f3, $f7
    srav $r6, $r9, $r6
    l.d $f6, 176($r14)
    lui $r7, 0x8f1
    andi $r4, $r8, 20447
    div.d $f0, $f4, $f5
    mul.d $f2, $f7, $f6
    xori $r3, $r0, 4611
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 1
    beq $r18, $r0, E16
    addi $r11, $r11, -1
    bgtz $r11, L16
E16:
    ori $r3, $r17, 31674
    li $r11, 5
L17:
    or $r8, $r7, $r4
    sltu $r4, $r16, $r3
    move $r16, $r0
    mfc1 $r6, $f6
    sub $r6, $r2, $r2
    sllv $r7, $r7, $r16
    add $r4, $r5, $r7
    lw $r3, 40($r20)
    srav $r16, $r7, $r6
    sub $r7, $r7, $r2
    sltiu $r8, $r7, 862
    nor $r4, $r9, $r4
    move $r5, $r0
    sllv $r4, $r4, $r0
    mul $r5, $r4, $r9
    l.d $f2, 48($r15)
    addi $r7, $r6, -226
    or $r9, $r7, $r9
    move $r5, $r7
    mul $r3, $r0, $r8
    l.d $f5, 160($r14)
    div.d $f7, $f5, $f7
    mul.d $f2, $f2, $f3
    slti $r7, $r6, 57
    mtc1 $r6, $f2
    lw $r5, 20($r14)
    srlv $r4, $r7, $r7
    sltu $r6, $r0, $r9
    c.lt.d $r9, $f7, $f0
    s.d $f0, 136($r15)
    rem $r7, $r4, $r6
    xor $r7, $r3, $r9
    div.d $f4, $f1, $f1
    addi $r11, $r11, -1
    bgtz $r11, L17
    srl $r3, $r4, 9
    andi $r5, $r4, 7317
    li $r11, 1
L18:
    sra $r6, $r9, 1
    c.le.d $r16, $f0, $f3
    sra $r4, $r17, 20
    rem $r9, $r16, $r2
    add.d $f7, $f0, $f5
    slti $r3, $r3, -1623
    sub.d $f7, $f7, $f7
    rem $r8, $r4, $r6
    or $r4, $r2, $r3
    cvt.d.w $f2, $f6
    andi $r9, $r4, 18216
    div.d $f3, $f6, $f4
    add $r8, $r6, $r4
    lui $r3, 0x405f
    srlv $r8, $r16, $r4
    ori $r6, $r6, 13828
    xori $r5, $r7, 4812
    srav $r7, $r16, $r17
    lui $r9, 0x52b0
    add $r5, $r2, $r6
    div $r8, $r9, $r8
    xori $r9, $r7, 25584
    add.d $f2, $f5, $f1
    slti $r8, $r16, -902
    mul $r8, $r6, $r2
    addi $r7, $r9, 1089
    rem $r4, $r4, $r8
    nor $r3, $r8, $r6
    lui $r16, 0x9187
    add.d $f0, $f5, $f2
    s.d $f2, 192($r14)
    addi $r7, $r0, 1833
    sub $r6, $r8, $r16
    addi $r11, $r11, -1
    bgtz $r11, L18
S8:
    addi $r10, $r10, -1
    bgtz $r10, L7
S6:
    halt
leaf:
    xor $r5, $r5, $r7
    addi $r16, $r16, 3
    sw $r16, 96($r14)
    jr $ra
rec:
    addi $sp, $sp, -8
    sw $ra, 0($sp)
    sw $r2, 4($sp)
    addi $r2, $r2, -1
    blez $r2, Rdone
    jal rec
Rdone:
    lw $r2, 4($sp)
    lw $ra, 0($sp)
    add $r16, $r16, $r2
    addi $sp, $sp, 8
    jr $ra
