# riq-fuzz corpus: nested-loop family (generator seed 1000)
# Replayed by tests/corpus_replay.rs against the full differential matrix.
# riq-fuzz generated program, seed=0x3e8
.data
buf:
    .space 256
    .space 8
fpt:
    .word 0x0, 0x7ff80000
    .word 0x0, 0x7ff00000
    .word 0x0, 0xfff00000
    .word 0x1, 0x0
    .word 0x0, 0x80000000
    .word 0x0, 0x3ff80000
    .word 0x8800759c, 0x7e37e43c
    .word 0xc2f8f359, 0x1a56e1f
vals:
    .word 0x2b1e818a, 0xf179c7a6, 0xfefacee9, 0xd74e787a
    .word 0x2757d71f, 0x63c455d3, 0x9f408049, 0xed835ba3
    .word 0x958d8ed, 0x7d24e85, 0x796784b4, 0x635e6e90
    .word 0xef9650ee, 0x3525e7f9, 0xcc2947ac, 0x4923b556
.text
    la $r14, buf
    la $r15, buf
    addi $r15, $r15, 16
    la $r19, fpt
    la $r20, vals
    li $r3, 0x4dccc148
    li $r4, 0xd4f4bbaf
    li $r5, 0x2fc9b651
    li $r6, 0xe14fcfa7
    li $r7, 0x8df0a49f
    li $r8, 0x3b720062
    li $r9, 0xe4f700f4
    li $r16, 0x26c1e177
    andi $r18, $r16, 4
    beq $r18, $r0, S1
    jal leaf
    l.d $f4, 152($r14)
    li $r10, 2
L2:
    lw $r3, 40($r20)
    slt $r4, $r17, $r16
    li $r11, 32
L3:
    sub.d $f1, $f3, $f7
    li $r12, 1
L4:
    lw $r6, 184($r14)
    addi $r7, $r8, -434
    c.eq.d $r9, $f4, $f5
    l.d $f5, 104($r15)
    lui $r6, 0x87f9
    s.d $f5, 184($r14)
    lw $r9, 36($r20)
    ori $r9, $r2, 5672
    addi $r12, $r12, -1
    bgtz $r12, L4
    l.d $f6, 0($r19)
    srlv $r7, $r5, $r5
    andi $r18, $r16, 1
    beq $r18, $r0, S5
    mul.d $f2, $f7, $f0
    c.le.d $r7, $f0, $f4
    sra $r8, $r2, 14
    xor $r8, $r8, $r17
    addi $r7, $r0, 421
S5:
    neg $r7, $r17
    or $r8, $r2, $r9
    add $r4, $r6, $r7
    sltiu $r6, $r16, -97
    or $r9, $r17, $r8
    c.le.d $r3, $f5, $f4
    li $r12, 32
L6:
    rem $r16, $r8, $r2
    sra $r3, $r6, 21
    neg $r3, $r3
    addi $r12, $r12, -1
    bgtz $r12, L6
    sltiu $r8, $r4, 1127
    jal leaf
    slt $r7, $r17, $r5
    lw $r9, 208($r15)
    li $r2, 2
    jal rec
    andi $r18, $r16, 1
    beq $r18, $r0, S7
    sqrt.d $f0, $f4
    srl $r5, $r9, 1
    l.d $f5, 24($r19)
    s.d $f1, 96($r15)
    div.d $f3, $f7, $f5
    ori $r4, $r0, 3728
    mul.d $f1, $f6, $f5
    and $r3, $r4, $r3
    xori $r3, $r4, 12085
    s.d $f0, 168($r14)
    c.eq.d $r5, $f3, $f5
    sra $r5, $r0, 13
    slti $r8, $r17, -147
    mfc1 $r16, $f1
    c.lt.d $r4, $f2, $f4
    add $r6, $r2, $r4
    nor $r8, $r6, $r17
    lui $r4, 0xc81c
    addi $r5, $r16, -1095
    addi $r9, $r8, -1338
    s.d $f7, 120($r14)
    neg $r16, $r2
    mov.d $f5, $f5
    srlv $r5, $r9, $r7
    lui $r7, 0x5887
    cvt.w.d $f1, $f5
    lw $r7, 80($r15)
    nor $r7, $r7, $r7
    add $r6, $r5, $r5
    mul.d $f6, $f7, $f2
    xor $r9, $r6, $r17
    and $r6, $r2, $r0
    and $r3, $r8, $r8
    c.eq.d $r5, $f7, $f5
    c.eq.d $r8, $f2, $f7
    sltiu $r3, $r17, 1134
    add.d $f2, $f5, $f3
    cvt.d.w $f1, $f7
    xori $r16, $r0, 4221
    mul $r8, $r0, $r5
    xor $r8, $r17, $r4
    sltu $r5, $r9, $r6
    add $r5, $r8, $r17
    l.d $f1, 16($r19)
    s.d $f0, 72($r15)
    sll $r16, $r17, 22
    mul.d $f0, $f6, $f5
    move $r5, $r7
    cvt.d.w $f2, $f4
    l.d $f4, 32($r19)
    mov.d $f4, $f7
    sw $r7, 196($r14)
    cvt.d.w $f3, $f0
    add.d $f7, $f5, $f3
    xori $r5, $r9, 10421
    l.d $f1, 0($r19)
    rem $r5, $r8, $r4
    xori $r6, $r2, 27008
    l.d $f0, 56($r14)
    sub $r3, $r0, $r9
    mfc1 $r8, $f4
    sltu $r3, $r3, $r8
    mul $r9, $r0, $r9
    rem $r5, $r2, $r17
    lw $r7, 216($r14)
    rem $r9, $r5, $r2
S7:
    div.d $f2, $f4, $f2
    li $r12, 10
L8:
    lw $r8, 84($r14)
    div $r16, $r5, $r0
    lui $r4, 0x9d24
    nor $r4, $r2, $r3
    lw $r5, 152($r14)
    rem $r4, $r8, $r0
    xori $r5, $r0, 28621
    neg $r8, $r16
    addi $r6, $r8, -1131
    mfc1 $r5, $f6
    add.d $f6, $f1, $f4
    neg $r7, $r7
    addi $r12, $r12, -1
    bgtz $r12, L8
    sllv $r5, $r9, $r6
    addi $r11, $r11, -1
    bgtz $r11, L3
    addi $r10, $r10, -1
    bgtz $r10, L2
    li $r10, 1
L9:
    li $r11, 1
L10:
    mul.d $f6, $f5, $f4
    l.d $f4, 16($r19)
    sra $r16, $r2, 27
    andi $r18, $r11, 2
    beq $r18, $r0, S11
    sw $r0, 136($r14)
    sll $r9, $r17, 25
    sltu $r6, $r9, $r17
    s.d $f0, 80($r14)
    mul $r3, $r7, $r4
    addi $r6, $r7, 1554
    sqrt.d $f1, $f0
    and $r3, $r0, $r6
S11:
    lw $r8, 28($r20)
    li $r17, 0x66013b27
    li $r12, 8
L12:
    srlv $r3, $r2, $r4
    or $r9, $r9, $r3
    nor $r5, $r0, $r6
    sltiu $r6, $r3, 187
    sw $r3, 136($r15)
    sqrt.d $f2, $f3
    rem $r5, $r17, $r9
    addi $r5, $r6, -1223
    sll $r4, $r6, 5
    c.le.d $r16, $f3, $f3
    neg $r5, $r3
    mov.d $f3, $f4
    and $r5, $r4, $r4
    sub.d $f4, $f1, $f4
    andi $r4, $r9, 8186
    lw $r4, 24($r20)
    sra $r16, $r5, 5
    add.d $f1, $f3, $f6
    addi $r8, $r0, -1563
    c.le.d $r7, $f6, $f5
    andi $r8, $r3, 24602
    sw $r7, 104($r14)
    sltiu $r4, $r6, -1755
    div.d $f6, $f6, $f4
    mov.d $f5, $f4
    ori $r7, $r7, 5575
    sltu $r6, $r3, $r16
    xori $r6, $r16, 16435
    lw $r3, 28($r20)
    lw $r16, 224($r15)
    srav $r6, $r4, $r16
    lw $r4, 48($r20)
    lw $r16, 32($r14)
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 7
    beq $r18, $r0, E12
    addi $r12, $r12, -1
    bgtz $r12, L12
E12:
    li $r17, 0xb89ca3b
    li $r12, 16
L13:
    l.d $f0, 40($r19)
    slti $r8, $r4, 1726
    or $r8, $r0, $r4
    xori $r3, $r7, 17047
    l.d $f6, 48($r19)
    andi $r5, $r9, 27411
    div $r4, $r2, $r9
    mul.d $f7, $f7, $f5
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 7
    beq $r18, $r0, E13
    addi $r12, $r12, -1
    bgtz $r12, L13
E13:
    addi $r11, $r11, -1
    bgtz $r11, L10
    lw $r6, 16($r15)
    jal leaf
    sqrt.d $f3, $f4
    andi $r18, $r10, 2
    beq $r18, $r0, S14
    rem $r6, $r6, $r9
    li $r11, 25
L15:
    sub $r5, $r8, $r7
    add $r4, $r8, $r17
    add.d $f6, $f2, $f3
    sllv $r3, $r3, $r5
    slti $r8, $r6, -686
    srav $r6, $r4, $r2
    add $r8, $r17, $r4
    lw $r16, 16($r20)
    addi $r11, $r11, -1
    bgtz $r11, L15
S14:
    addi $r10, $r10, -1
    bgtz $r10, L9
S1:
    halt
leaf:
    xor $r5, $r5, $r7
    addi $r16, $r16, 3
    sw $r16, 96($r14)
    jr $ra
rec:
    addi $sp, $sp, -8
    sw $ra, 0($sp)
    sw $r2, 4($sp)
    addi $r2, $r2, -1
    blez $r2, Rdone
    jal rec
Rdone:
    lw $r2, 4($sp)
    lw $ra, 0($sp)
    add $r16, $r16, $r2
    addi $sp, $sp, 8
    jr $ra
