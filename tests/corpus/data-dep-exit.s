# riq-fuzz corpus: data-dep-exit family (generator seed 1002)
# Replayed by tests/corpus_replay.rs against the full differential matrix.
# riq-fuzz generated program, seed=0x3ea
.data
vals:
    .word 0x28256e60, 0x242b682a, 0x81035015, 0x521bb04d
    .word 0xd920e581, 0xe3cabf9a, 0x2c315be5, 0x852ca93d
    .word 0x461deb5b, 0x58f9117b, 0x38de5d68, 0x2471ca4e
    .word 0xff5a20a1, 0x868c0232, 0xbca30fc, 0xe54d3ca5
fpt:
    .word 0x0, 0x7ff80000
    .word 0x0, 0x7ff00000
    .word 0x0, 0xfff00000
    .word 0x1, 0x0
    .word 0x0, 0x80000000
    .word 0x0, 0x3ff80000
    .word 0x8800759c, 0x7e37e43c
    .word 0xc2f8f359, 0x1a56e1f
buf:
    .space 256
.text
    la $r14, buf
    la $r15, buf
    addi $r15, $r15, 16
    la $r19, fpt
    la $r20, vals
    li $r3, 0xac7ab8fd
    li $r4, 0xdf53a60a
    li $r5, 0xf4e3cec0
    li $r6, 0x192e4bcb
    li $r7, 0xc0ccd7a0
    li $r8, 0x656fc4b7
    li $r9, 0x7eb906e2
    li $r16, 0xc7fd6e3
    li $r2, 11
    jal rec
    jal leaf
    xor $r9, $r7, $r9
    li $r10, 1
L1:
    sltiu $r3, $r9, 1141
    jal leaf
    lui $r7, 0x45f
    srlv $r7, $r8, $r3
    andi $r18, $r10, 4
    beq $r18, $r0, S2
    li $r2, 1
    jal rec
    slti $r5, $r16, 1339
    li $r17, 0x10ae2fbd
    li $r11, 1
L3:
    li $r12, 2
L4:
    l.d $f3, 24($r19)
    lw $r6, 36($r20)
    s.d $f6, 40($r15)
    slti $r9, $r4, -375
    or $r4, $r4, $r5
    lw $r16, 196($r15)
    lw $r4, 144($r15)
    l.d $f2, 32($r15)
    sw $r17, 200($r14)
    l.d $f4, 0($r19)
    and $r3, $r8, $r9
    l.d $f7, 120($r14)
    andi $r9, $r0, 6736
    ori $r7, $r5, 16042
    addi $r12, $r12, -1
    bgtz $r12, L4
    jal leaf
    c.eq.d $r9, $f5, $f3
    rem $r7, $r3, $r5
    addi $r6, $r17, 540
    li $r12, 13
L5:
    lw $r6, 192($r14)
    sll $r9, $r2, 1
    mul.d $f3, $f5, $f1
    sw $r4, 204($r15)
    lw $r6, 88($r14)
    div $r3, $r5, $r7
    andi $r8, $r16, 21827
    slti $r3, $r2, 1508
    mul $r5, $r5, $r3
    or $r3, $r4, $r3
    l.d $f2, 56($r19)
    sw $r0, 140($r15)
    slti $r16, $r17, -1764
    mfc1 $r3, $f0
    sllv $r4, $r2, $r4
    l.d $f1, 8($r19)
    s.d $f7, 160($r14)
    l.d $f6, 16($r19)
    mfc1 $r3, $f2
    l.d $f2, 48($r19)
    slti $r6, $r4, -1576
    sw $r16, 176($r14)
    mov.d $f0, $f6
    nor $r5, $r3, $r6
    slt $r4, $r9, $r17
    s.d $f6, 8($r15)
    c.le.d $r3, $f2, $f4
    rem $r3, $r17, $r5
    sltiu $r8, $r17, 1187
    sllv $r8, $r4, $r8
    addi $r12, $r12, -1
    bgtz $r12, L5
    mul $r7, $r0, $r4
    or $r6, $r2, $r3
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 1
    beq $r18, $r0, E3
    addi $r11, $r11, -1
    bgtz $r11, L3
E3:
    c.le.d $r5, $f3, $f6
    s.d $f0, 128($r14)
    jal leaf
    sra $r8, $r16, 29
    c.eq.d $r5, $f7, $f1
    li $r11, 3
L6:
    andi $r18, $r16, 1
    beq $r18, $r0, S7
    and $r16, $r4, $r9
    lw $r16, 48($r20)
    l.d $f6, 40($r19)
    sra $r6, $r3, 25
    mul.d $f5, $f3, $f1
    xori $r7, $r8, 1353
    or $r7, $r16, $r7
    lw $r8, 44($r20)
    srl $r3, $r9, 1
    s.d $f4, 16($r15)
    sub.d $f7, $f3, $f5
    sw $r3, 64($r14)
    slti $r4, $r2, 861
    l.d $f5, 120($r14)
    srav $r9, $r4, $r16
    mfc1 $r9, $f2
    mov.d $f4, $f2
    srav $r8, $r2, $r4
    lui $r16, 0xf9ef
    l.d $f0, 0($r19)
    xor $r16, $r3, $r5
    sltiu $r7, $r5, -178
    sltiu $r4, $r2, 1691
    lui $r4, 0xf9f7
    xori $r8, $r17, 21416
    and $r9, $r16, $r6
    sub.d $f3, $f1, $f3
    div $r4, $r8, $r0
    xori $r3, $r9, 10447
    c.lt.d $r9, $f0, $f6
S7:
    li $r2, 9
    jal rec
    andi $r18, $r16, 1
    beq $r18, $r0, S8
    c.lt.d $r7, $f3, $f6
    mul $r4, $r16, $r17
    add.d $f6, $f5, $f1
    sub.d $f4, $f2, $f7
    ori $r6, $r2, 29945
    add $r9, $r17, $r3
    c.eq.d $r16, $f1, $f4
    sltiu $r9, $r2, 181
    mul $r5, $r6, $r9
    lw $r4, 24($r20)
    mov.d $f5, $f0
    mfc1 $r5, $f0
    srl $r4, $r17, 20
    sltu $r6, $r7, $r16
    sllv $r4, $r16, $r17
    sll $r16, $r6, 16
    sub $r3, $r17, $r3
S8:
    jal leaf
    nor $r8, $r7, $r9
    srlv $r7, $r6, $r17
    li $r17, 0x57733cf3
    li $r12, 48
L9:
    mul $r5, $r4, $r0
    add.d $f2, $f0, $f6
    xori $r7, $r4, 32239
    move $r4, $r6
    slti $r7, $r0, 361
    mfc1 $r3, $f1
    lw $r6, 28($r20)
    srav $r7, $r3, $r16
    mov.d $f6, $f2
    l.d $f3, 16($r15)
    neg.d $f6, $f4
    addi $r16, $r7, 704
    c.lt.d $r6, $f6, $f1
    lui $r5, 0xf39
    srl $r7, $r5, 22
    sltiu $r16, $r2, 1664
    srlv $r7, $r9, $r4
    c.lt.d $r7, $f3, $f7
    neg $r5, $r8
    sub $r9, $r4, $r6
    c.eq.d $r8, $f7, $f1
    srlv $r4, $r5, $r6
    sw $r8, 56($r15)
    or $r5, $r16, $r16
    slt $r7, $r5, $r6
    and $r16, $r3, $r3
    lui $r9, 0xea57
    l.d $f1, 40($r19)
    s.d $f0, 64($r14)
    sw $r5, 92($r14)
    lui $r4, 0x6687
    sllv $r3, $r0, $r9
    ori $r6, $r5, 26179
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 3
    beq $r18, $r0, E9
    addi $r12, $r12, -1
    bgtz $r12, L9
E9:
    sw $r5, 36($r14)
    slti $r5, $r2, -1984
    sll $r3, $r7, 5
    li $r17, 0x6d857565
    li $r12, 13
L10:
    xor $r8, $r4, $r9
    c.eq.d $r7, $f5, $f7
    lui $r7, 0x69eb
    sub.d $f3, $f3, $f1
    sub.d $f3, $f5, $f7
    lui $r9, 0xd43d
    sub.d $f4, $f4, $f7
    cvt.w.d $f3, $f7
    div $r3, $r7, $r4
    andi $r7, $r9, 16870
    slti $r7, $r16, -937
    and $r4, $r5, $r3
    or $r9, $r8, $r7
    or $r6, $r8, $r8
    mul $r16, $r9, $r9
    l.d $f1, 104($r15)
    s.d $f4, 192($r14)
    slt $r9, $r4, $r16
    add $r3, $r17, $r9
    ori $r16, $r17, 1375
    ori $r8, $r3, 162
    xori $r7, $r0, 8904
    xor $r9, $r7, $r2
    add.d $f0, $f1, $f4
    sll $r9, $r16, 16
    ori $r5, $r17, 30060
    c.lt.d $r16, $f4, $f7
    s.d $f1, 88($r15)
    cvt.w.d $f4, $f5
    l.d $f4, 24($r19)
    sltu $r8, $r5, $r7
    srav $r5, $r5, $r0
    lw $r7, 24($r15)
    and $r7, $r4, $r4
    s.d $f3, 48($r14)
    andi $r8, $r7, 6555
    lw $r4, 36($r20)
    srl $r9, $r8, 26
    mfc1 $r4, $f6
    add $r8, $r6, $r5
    add $r16, $r9, $r4
    slt $r8, $r17, $r4
    lw $r7, 84($r14)
    nor $r5, $r4, $r7
    l.d $f0, 184($r14)
    sqrt.d $f5, $f2
    l.d $f4, 152($r14)
    lw $r9, 24($r20)
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 15
    beq $r18, $r0, E10
    addi $r12, $r12, -1
    bgtz $r12, L10
E10:
    lw $r6, 212($r15)
    li $r12, 16
L11:
    sub.d $f6, $f6, $f3
    xor $r16, $r6, $r9
    neg $r6, $r6
    mul.d $f4, $f1, $f1
    sra $r3, $r0, 17
    xori $r5, $r16, 14737
    lw $r16, 4($r15)
    andi $r3, $r6, 23724
    sltiu $r7, $r0, -1734
    sllv $r5, $r5, $r6
    srav $r5, $r4, $r0
    xor $r9, $r16, $r8
    lw $r6, 52($r20)
    sub.d $f2, $f0, $f0
    mov.d $f0, $f3
    cvt.d.w $f2, $f4
    addi $r12, $r12, -1
    bgtz $r12, L11
    lw $r16, 40($r20)
    srav $r7, $r17, $r0
    l.d $f0, 160($r15)
    li $r12, 6
L12:
    xori $r5, $r16, 18045
    s.d $f0, 160($r15)
    div.d $f5, $f5, $f5
    add.d $f5, $f3, $f3
    sltiu $r16, $r4, 1916
    andi $r7, $r7, 5123
    mfc1 $r8, $f5
    neg $r5, $r16
    s.d $f0, 152($r15)
    s.d $f1, 144($r14)
    andi $r4, $r3, 13323
    c.eq.d $r3, $f4, $f7
    addi $r12, $r12, -1
    bgtz $r12, L12
    div.d $f2, $f1, $f7
    lw $r6, 148($r15)
    li $r12, 3
L13:
    srlv $r8, $r7, $r16
    l.d $f0, 40($r15)
    mul $r4, $r3, $r7
    l.d $f5, 48($r15)
    addi $r7, $r3, 746
    c.le.d $r5, $f6, $f4
    sll $r8, $r2, 25
    sltiu $r9, $r17, -863
    lw $r9, 4($r20)
    nor $r8, $r0, $r6
    or $r4, $r6, $r6
    srlv $r4, $r0, $r8
    srav $r5, $r4, $r2
    mov.d $f1, $f3
    div $r4, $r0, $r17
    nor $r9, $r9, $r17
    mul.d $f3, $f2, $f0
    ori $r6, $r16, 8515
    sllv $r6, $r6, $r17
    div $r6, $r6, $r8
    l.d $f4, 88($r15)
    l.d $f3, 24($r19)
    sllv $r5, $r2, $r3
    c.lt.d $r5, $f2, $f0
    addi $r12, $r12, -1
    bgtz $r12, L13
    li $r12, 48
L14:
    mul $r8, $r3, $r8
    neg $r3, $r3
    sub.d $f3, $f6, $f4
    sllv $r8, $r17, $r17
    lw $r4, 128($r15)
    add.d $f5, $f3, $f2
    or $r7, $r8, $r5
    or $r6, $r7, $r9
    l.d $f2, 8($r14)
    sw $r8, 76($r15)
    sub $r5, $r3, $r7
    sltu $r7, $r17, $r0
    sltu $r16, $r0, $r17
    s.d $f1, 48($r14)
    add $r3, $r9, $r2
    move $r3, $r6
    addi $r12, $r12, -1
    bgtz $r12, L14
    sub.d $f1, $f4, $f1
    add $r9, $r17, $r9
    li $r12, 1
L15:
    mov.d $f1, $f4
    nor $r16, $r0, $r16
    s.d $f3, 0($r15)
    xori $r5, $r9, 6295
    move $r8, $r6
    sltiu $r8, $r0, 145
    neg.d $f1, $f6
    sra $r8, $r17, 0
    l.d $f4, 56($r19)
    move $r6, $r16
    lw $r6, 56($r20)
    sltiu $r4, $r9, 1367
    lw $r8, 32($r20)
    c.eq.d $r7, $f4, $f7
    rem $r7, $r7, $r6
    add $r5, $r5, $r3
    l.d $f6, 48($r19)
    addi $r12, $r12, -1
    bgtz $r12, L15
    li $r2, 7
    jal rec
    div $r6, $r2, $r6
    li $r12, 10
L16:
    srlv $r3, $r3, $r5
    sra $r7, $r17, 10
    lui $r6, 0x52e
    srav $r9, $r2, $r3
    sw $r0, 8($r14)
    xori $r9, $r17, 19644
    lw $r7, 56($r20)
    div $r8, $r0, $r9
    srl $r16, $r0, 21
    c.le.d $r7, $f5, $f4
    srl $r4, $r6, 29
    lw $r9, 36($r20)
    c.lt.d $r7, $f0, $f0
    slt $r6, $r7, $r6
    mov.d $f6, $f2
    div.d $f2, $f3, $f2
    lw $r9, 200($r15)
    addi $r12, $r12, -1
    bgtz $r12, L16
    lui $r8, 0x640f
    sub.d $f1, $f0, $f7
    s.d $f0, 72($r15)
    s.d $f1, 128($r15)
    li $r12, 16
L17:
    l.d $f4, 24($r19)
    mfc1 $r5, $f6
    mul $r4, $r17, $r7
    sll $r7, $r7, 6
    l.d $f4, 56($r15)
    srl $r4, $r3, 9
    sw $r9, 80($r14)
    div.d $f2, $f0, $f5
    sllv $r6, $r6, $r5
    s.d $f5, 80($r14)
    srl $r3, $r3, 15
    sltu $r9, $r2, $r16
    div.d $f3, $f3, $f2
    mul $r4, $r8, $r16
    addi $r3, $r8, -1526
    add.d $f7, $f6, $f5
    sqrt.d $f6, $f6
    addi $r12, $r12, -1
    bgtz $r12, L17
    addi $r11, $r11, -1
    bgtz $r11, L6
    cvt.d.w $f4, $f6
    li $r11, 1
L18:
    neg $r8, $r17
    addi $r9, $r7, 477
    li $r12, 8
L19:
    lw $r7, 20($r20)
    s.d $f3, 128($r15)
    sub.d $f4, $f5, $f0
    mtc1 $r5, $f4
    div.d $f4, $f2, $f3
    srl $r8, $r2, 26
    sltu $r4, $r6, $r5
    lw $r5, 12($r20)
    c.eq.d $r9, $f6, $f7
    slti $r7, $r8, -328
    sub.d $f4, $f7, $f3
    and $r16, $r8, $r2
    lw $r3, 44($r15)
    div.d $f4, $f7, $f2
    srl $r9, $r2, 3
    rem $r7, $r17, $r2
    addi $r12, $r12, -1
    bgtz $r12, L19
    andi $r18, $r11, 4
    beq $r18, $r0, S20
    srlv $r7, $r0, $r8
    mul $r8, $r0, $r0
    div $r6, $r3, $r3
    mul $r7, $r16, $r6
    sw $r2, 88($r15)
    div $r3, $r0, $r3
    slt $r5, $r5, $r8
    sub.d $f0, $f2, $f5
    lw $r9, 68($r14)
    s.d $f5, 176($r15)
    add $r16, $r5, $r5
    move $r16, $r6
    mfc1 $r7, $f0
    add $r3, $r7, $r5
    move $r3, $r4
    l.d $f5, 40($r19)
    andi $r16, $r4, 18331
    ori $r5, $r5, 11427
    ori $r5, $r6, 19808
    slti $r9, $r6, 1447
    l.d $f7, 112($r14)
    slt $r4, $r17, $r2
    sub.d $f5, $f4, $f4
    l.d $f3, 0($r19)
    add.d $f7, $f3, $f4
    c.lt.d $r3, $f2, $f6
    rem $r4, $r6, $r0
    add $r3, $r9, $r3
    sll $r6, $r2, 14
    srlv $r7, $r9, $r2
    addi $r3, $r5, -1360
    lui $r9, 0x44ac
    s.d $f0, 168($r15)
    xor $r3, $r9, $r0
    mul $r4, $r3, $r3
    sltiu $r6, $r6, 1297
    neg $r3, $r8
    move $r3, $r7
    lw $r6, 48($r20)
    slt $r6, $r8, $r5
    sw $r0, 204($r14)
    andi $r7, $r6, 7426
    or $r3, $r3, $r4
    sw $r8, 204($r14)
    or $r9, $r7, $r6
    neg $r6, $r17
    slt $r3, $r0, $r4
    xor $r6, $r0, $r2
    rem $r5, $r3, $r17
    and $r5, $r3, $r0
    sltiu $r5, $r9, 1356
    lui $r3, 0x2a01
    sra $r16, $r2, 6
    addi $r8, $r2, 1470
    div $r5, $r2, $r6
    add.d $f0, $f1, $f6
    srlv $r8, $r3, $r9
    lui $r9, 0x72b7
    sltiu $r4, $r17, 1521
    sltu $r3, $r6, $r9
    c.lt.d $r3, $f7, $f0
    sqrt.d $f6, $f0
    add.d $f2, $f5, $f2
    srav $r8, $r5, $r4
    div $r16, $r3, $r3
    cvt.d.w $f2, $f4
S20:
    li $r17, 0x69212a73
    li $r12, 8
L21:
    lw $r16, 104($r15)
    l.d $f1, 176($r15)
    move $r5, $r5
    div.d $f7, $f7, $f2
    mov.d $f6, $f2
    neg.d $f0, $f1
    c.lt.d $r5, $f0, $f0
    add $r7, $r6, $r4
    lui $r3, 0x9832
    s.d $f3, 80($r14)
    addi $r7, $r16, 24
    lw $r4, 8($r20)
    c.eq.d $r9, $f3, $f1
    mul $r7, $r0, $r9
    add.d $f5, $f6, $f7
    sra $r6, $r6, 28
    cvt.w.d $f0, $f1
    l.d $f6, 0($r19)
    nor $r4, $r0, $r8
    neg $r6, $r6
    l.d $f3, 0($r15)
    div.d $f0, $f2, $f5
    l.d $f3, 88($r14)
    l.d $f5, 24($r15)
    mfc1 $r6, $f1
    mfc1 $r3, $f4
    c.eq.d $r5, $f0, $f5
    xor $r3, $r16, $r6
    mfc1 $r7, $f1
    s.d $f1, 0($r15)
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 7
    beq $r18, $r0, E21
    addi $r12, $r12, -1
    bgtz $r12, L21
E21:
    addi $r11, $r11, -1
    bgtz $r11, L18
S2:
    addi $r10, $r10, -1
    bgtz $r10, L1
    halt
leaf:
    xor $r5, $r5, $r7
    addi $r16, $r16, 3
    sw $r16, 96($r14)
    jr $ra
rec:
    addi $sp, $sp, -8
    sw $ra, 0($sp)
    sw $r2, 4($sp)
    addi $r2, $r2, -1
    blez $r2, Rdone
    jal rec
Rdone:
    lw $r2, 4($sp)
    lw $ra, 0($sp)
    add $r16, $r16, $r2
    addi $sp, $sp, 8
    jr $ra
