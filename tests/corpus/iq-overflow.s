# riq-fuzz corpus: iq-overflow family (generator seed 1001)
# Replayed by tests/corpus_replay.rs against the full differential matrix.
# riq-fuzz generated program, seed=0x3e9
.data
fpt:
    .word 0x0, 0x7ff80000
    .word 0x0, 0x7ff00000
    .word 0x0, 0xfff00000
    .word 0x1, 0x0
    .word 0x0, 0x80000000
    .word 0x0, 0x3ff80000
    .word 0x8800759c, 0x7e37e43c
    .word 0xc2f8f359, 0x1a56e1f
    .space 16
vals:
    .word 0x89fa0862, 0x19d0ab27, 0x9b27fcb5, 0xe9a7ab87
    .word 0x238da22a, 0x77d5403a, 0x6bb4f072, 0x6b7128d4
    .word 0x6fbf509f, 0x51f01758, 0xbada5d37, 0xa5be336b
    .word 0xde027c55, 0x4706871a, 0xed23559, 0x440fcec
buf:
    .space 256
.text
    la $r14, buf
    la $r15, buf
    addi $r15, $r15, 16
    la $r19, fpt
    la $r20, vals
    li $r3, 0xf3c606d4
    li $r4, 0x4710ce58
    li $r5, 0xc6beafb1
    li $r6, 0x16231f2f
    li $r7, 0xf434d5ab
    li $r8, 0x993d4fb9
    li $r9, 0xbbe6cf58
    li $r16, 0x43338428
    jal leaf
    lw $r4, 56($r20)
    andi $r18, $r16, 4
    beq $r18, $r0, S1
    li $r2, 10
    jal rec
    slti $r4, $r6, 963
S1:
    andi $r18, $r16, 4
    beq $r18, $r0, S2
    c.le.d $r4, $f1, $f6
    xor $r3, $r8, $r7
    li $r10, 3
L3:
    sltu $r7, $r5, $r9
    li $r11, 21
L4:
    l.d $f0, 56($r19)
    andi $r18, $r16, 1
    beq $r18, $r0, S5
    l.d $f6, 120($r15)
    move $r5, $r4
    s.d $f5, 32($r14)
    lw $r3, 80($r15)
    l.d $f2, 88($r14)
    c.le.d $r8, $f4, $f4
    sub.d $f0, $f5, $f1
    sll $r5, $r3, 3
    andi $r7, $r9, 10088
    sub.d $f4, $f7, $f3
    l.d $f4, 56($r19)
    c.le.d $r16, $f3, $f3
    lw $r5, 212($r14)
    neg.d $f7, $f4
    sw $r7, 192($r15)
    mtc1 $r0, $f7
    sll $r9, $r4, 6
    sltiu $r3, $r9, -1292
    mov.d $f3, $f6
    sllv $r3, $r0, $r17
    sub.d $f6, $f6, $f7
    add $r5, $r0, $r7
    add.d $f5, $f5, $f5
    sltiu $r7, $r16, -1536
    lw $r16, 208($r14)
    slti $r6, $r7, -1957
    c.eq.d $r4, $f6, $f5
    s.d $f3, 40($r14)
    srlv $r4, $r2, $r6
    sll $r9, $r0, 31
    sltiu $r5, $r2, 1617
    sll $r3, $r16, 15
    l.d $f5, 24($r15)
    srav $r9, $r4, $r7
    l.d $f1, 24($r19)
    sltu $r6, $r4, $r0
    div.d $f5, $f1, $f3
    lw $r8, 36($r20)
    sltiu $r5, $r2, 1350
    l.d $f0, 0($r19)
    or $r9, $r4, $r5
    xor $r4, $r9, $r6
    s.d $f4, 48($r14)
    sra $r9, $r6, 4
    mul $r3, $r8, $r4
    and $r6, $r6, $r2
    addi $r4, $r4, 301
    l.d $f0, 96($r15)
S5:
    sub $r6, $r4, $r4
    div.d $f4, $f0, $f0
    lw $r16, 96($r15)
    sqrt.d $f4, $f1
    mul.d $f6, $f4, $f6
    andi $r18, $r16, 2
    beq $r18, $r0, S6
    lw $r16, 56($r20)
    l.d $f7, 48($r19)
    or $r7, $r17, $r16
    add $r16, $r17, $r9
    mul $r5, $r4, $r7
    addi $r8, $r8, -534
    neg $r3, $r17
    sltu $r4, $r7, $r7
    lw $r3, 60($r20)
    c.eq.d $r7, $f3, $f4
    move $r9, $r4
    mul $r3, $r17, $r8
    sub $r9, $r16, $r0
    l.d $f2, 152($r14)
    lui $r16, 0x8edc
S6:
    li $r2, 12
    jal rec
    jal leaf
    slt $r5, $r5, $r17
    jal leaf
    srl $r7, $r0, 21
    sub.d $f7, $f5, $f2
    li $r12, 3
L7:
    andi $r9, $r0, 10984
    l.d $f2, 136($r14)
    c.lt.d $r16, $f7, $f6
    lw $r5, 104($r14)
    slti $r4, $r5, 1681
    c.le.d $r8, $f1, $f3
    slti $r16, $r17, -78
    xor $r5, $r16, $r9
    cvt.w.d $f1, $f0
    slti $r5, $r0, 832
    slti $r8, $r7, -1633
    xor $r5, $r8, $r4
    mul $r6, $r17, $r7
    neg $r7, $r16
    addi $r4, $r17, -1798
    addi $r12, $r12, -1
    bgtz $r12, L7
    li $r12, 1
L8:
    rem $r3, $r9, $r16
    mul.d $f3, $f1, $f7
    lw $r16, 176($r15)
    xor $r8, $r8, $r17
    nor $r7, $r6, $r0
    slti $r5, $r16, 751
    sllv $r8, $r16, $r5
    div $r16, $r9, $r3
    cvt.w.d $f5, $f1
    mul.d $f5, $f3, $f0
    lw $r4, 188($r15)
    add.d $f7, $f4, $f1
    l.d $f0, 56($r19)
    c.eq.d $r16, $f0, $f6
    mfc1 $r7, $f6
    sw $r8, 80($r14)
    mul.d $f2, $f0, $f4
    l.d $f3, 32($r19)
    l.d $f7, 88($r15)
    xor $r3, $r16, $r8
    l.d $f4, 48($r14)
    andi $r5, $r5, 2626
    add.d $f4, $f7, $f1
    slt $r16, $r3, $r17
    lw $r4, 44($r20)
    sltiu $r5, $r6, 1033
    div.d $f4, $f7, $f4
    sllv $r16, $r0, $r9
    sll $r4, $r17, 24
    ori $r8, $r16, 8548
    addi $r16, $r9, -1369
    or $r8, $r4, $r17
    ori $r8, $r2, 13455
    lw $r6, 32($r20)
    mov.d $f4, $f4
    sw $r17, 224($r15)
    sub.d $f7, $f1, $f6
    div $r3, $r0, $r5
    lw $r16, 60($r20)
    ori $r6, $r17, 18533
    mul.d $f3, $f5, $f5
    andi $r4, $r17, 25471
    sqrt.d $f7, $f4
    xori $r7, $r16, 26085
    xori $r3, $r9, 19047
    mfc1 $r9, $f3
    sltiu $r3, $r17, 1615
    sll $r6, $r4, 6
    ori $r3, $r4, 29116
    nor $r6, $r16, $r17
    or $r3, $r16, $r9
    sltiu $r6, $r9, -1391
    cvt.d.w $f7, $f3
    l.d $f5, 128($r14)
    srl $r5, $r6, 5
    sub.d $f5, $f2, $f4
    addi $r8, $r5, 1939
    lw $r3, 128($r15)
    ori $r6, $r8, 18462
    sub.d $f2, $f0, $f6
    ori $r7, $r0, 22206
    or $r6, $r9, $r8
    and $r16, $r7, $r8
    add $r5, $r0, $r8
    slti $r6, $r2, 237
    xori $r3, $r17, 19040
    addi $r12, $r12, -1
    bgtz $r12, L8
    addi $r11, $r11, -1
    bgtz $r11, L4
    sll $r16, $r9, 7
    l.d $f3, 104($r15)
    sra $r5, $r0, 26
    srlv $r3, $r16, $r6
    andi $r4, $r0, 22385
    jal leaf
    andi $r18, $r10, 2
    beq $r18, $r0, S9
    xori $r4, $r16, 13349
    lw $r4, 224($r15)
    mov.d $f7, $f1
    andi $r18, $r10, 4
    beq $r18, $r0, S10
    mul.d $f4, $f1, $f1
    lui $r16, 0x7e9f
    cvt.d.w $f1, $f0
S10:
    li $r17, 0xdf4ca70b
    li $r11, 3
L11:
    sltiu $r6, $r4, 1350
    c.le.d $r3, $f3, $f3
    sllv $r16, $r5, $r3
    l.d $f7, 16($r19)
    div.d $f5, $f5, $f7
    div.d $f6, $f2, $f0
    slti $r6, $r7, 1174
    nor $r4, $r0, $r8
    div $r9, $r5, $r9
    srav $r16, $r8, $r17
    slti $r9, $r16, 764
    mfc1 $r8, $f3
    lw $r3, 84($r15)
    slt $r6, $r17, $r8
    lw $r6, 60($r20)
    neg $r16, $r9
    slti $r5, $r5, -233
    div.d $f7, $f4, $f0
    add.d $f2, $f7, $f2
    sub.d $f2, $f0, $f7
    rem $r4, $r3, $r9
    sltiu $r3, $r3, 138
    div $r5, $r16, $r16
    neg $r7, $r4
    addi $r3, $r3, -711
    div $r9, $r0, $r7
    cvt.w.d $f5, $f4
    and $r3, $r7, $r9
    s.d $f7, 104($r15)
    div.d $f4, $f7, $f5
    rem $r16, $r5, $r9
    andi $r3, $r17, 7291
    move $r6, $r16
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 3
    beq $r18, $r0, E11
    addi $r11, $r11, -1
    bgtz $r11, L11
E11:
S9:
    addi $r10, $r10, -1
    bgtz $r10, L3
    cvt.w.d $f6, $f4
    sltiu $r9, $r16, 673
    li $r10, 1
L12:
    sra $r8, $r5, 3
    andi $r18, $r10, 4
    beq $r18, $r0, S13
    addi $r8, $r5, -1590
    ori $r8, $r3, 27759
    nor $r6, $r7, $r2
    l.d $f6, 8($r15)
    add.d $f3, $f2, $f3
    ori $r9, $r2, 15279
    andi $r18, $r16, 1
    beq $r18, $r0, S14
    s.d $f0, 112($r14)
    add.d $f6, $f5, $f6
    andi $r3, $r7, 18348
    srav $r9, $r3, $r7
    slt $r4, $r9, $r5
    l.d $f7, 0($r15)
    c.eq.d $r4, $f3, $f1
    c.lt.d $r6, $f2, $f5
    slti $r3, $r2, 1816
    or $r4, $r4, $r9
    slti $r4, $r17, -185
    l.d $f5, 48($r19)
    sub $r5, $r17, $r0
    lw $r5, 32($r15)
    slt $r4, $r0, $r17
    srlv $r16, $r17, $r8
S14:
    andi $r18, $r16, 4
    beq $r18, $r0, S15
    sltiu $r3, $r7, 556
    srav $r3, $r5, $r17
    ori $r9, $r0, 5719
    c.lt.d $r4, $f6, $f0
    cvt.w.d $f7, $f2
    mul $r7, $r16, $r8
    c.eq.d $r3, $f0, $f1
    s.d $f5, 72($r15)
    sltu $r4, $r0, $r4
    lw $r9, 8($r15)
    mfc1 $r7, $f3
    rem $r4, $r16, $r7
    lw $r7, 20($r20)
    add $r4, $r3, $r8
    lui $r4, 0x710d
S15:
    li $r17, 0x84bb79c7
    li $r11, 30
L16:
    sltiu $r8, $r8, 488
    or $r9, $r5, $r16
    mul $r4, $r0, $r2
    sltiu $r8, $r9, 3
    add.d $f1, $f3, $f1
    add.d $f6, $f4, $f2
    andi $r3, $r4, 32311
    c.eq.d $r7, $f3, $f6
    xori $r8, $r17, 30591
    sltu $r5, $r8, $r6
    div.d $f4, $f5, $f1
    neg.d $f4, $f2
    cvt.w.d $f1, $f7
    addi $r9, $r16, 160
    and $r5, $r16, $r7
    cvt.d.w $f5, $f5
    c.lt.d $r16, $f4, $f3
    add $r9, $r4, $r4
    lw $r6, 16($r20)
    xori $r3, $r5, 26915
    lw $r6, 80($r14)
    addi $r9, $r7, 234
    lw $r5, 116($r14)
    lw $r7, 24($r20)
    xor $r16, $r9, $r8
    addi $r8, $r9, 471
    nor $r8, $r7, $r8
    mul.d $f6, $f6, $f7
    sltiu $r4, $r5, 118
    lw $r5, 48($r14)
    slti $r9, $r0, 1684
    nor $r16, $r6, $r0
    mtc1 $r17, $f6
    mul $r3, $r7, $r17
    sll $r7, $r7, 16
    mfc1 $r4, $f3
    xori $r16, $r6, 21120
    sqrt.d $f4, $f4
    addi $r4, $r6, -52
    neg $r16, $r3
    sub.d $f3, $f3, $f6
    mul.d $f7, $f0, $f6
    cvt.d.w $f6, $f3
    mul $r6, $r5, $r7
    c.eq.d $r5, $f5, $f0
    slti $r8, $r0, -773
    sw $r16, 64($r15)
    sra $r6, $r7, 8
    sw $r4, 60($r14)
    sllv $r4, $r16, $r4
    mov.d $f5, $f7
    or $r8, $r6, $r6
    l.d $f2, 168($r14)
    slti $r6, $r5, -912
    sltu $r8, $r3, $r0
    add.d $f1, $f7, $f3
    xor $r6, $r7, $r16
    mul.d $f5, $f3, $f1
    sllv $r3, $r3, $r2
    andi $r9, $r9, 20887
    rem $r5, $r5, $r2
    ori $r7, $r4, 22902
    and $r7, $r0, $r0
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 15
    beq $r18, $r0, E16
    addi $r11, $r11, -1
    bgtz $r11, L16
E16:
    mfc1 $r8, $f5
    lw $r16, 80($r15)
    sub.d $f4, $f4, $f2
    andi $r18, $r10, 2
    beq $r18, $r0, S17
    sra $r8, $r5, 18
    sltiu $r5, $r2, 865
    slt $r6, $r3, $r6
    div $r6, $r5, $r2
    l.d $f2, 48($r19)
S17:
S13:
    addi $r10, $r10, -1
    bgtz $r10, L12
S2:
    halt
leaf:
    xor $r5, $r5, $r7
    addi $r16, $r16, 3
    sw $r16, 96($r14)
    jr $ra
rec:
    addi $sp, $sp, -8
    sw $ra, 0($sp)
    sw $r2, 4($sp)
    addi $r2, $r2, -1
    blez $r2, Rdone
    jal rec
Rdone:
    lw $r2, 4($sp)
    lw $ra, 0($sp)
    add $r16, $r16, $r2
    addi $sp, $sp, 8
    jr $ra
