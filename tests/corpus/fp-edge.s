# riq-fuzz corpus: fp-edge family (generator seed 1003)
# Replayed by tests/corpus_replay.rs against the full differential matrix.
# riq-fuzz generated program, seed=0x3eb
.data
buf:
    .space 256
    .space 16
fpt:
    .word 0x0, 0x7ff80000
    .word 0x0, 0x7ff00000
    .word 0x0, 0xfff00000
    .word 0x1, 0x0
    .word 0x0, 0x80000000
    .word 0x0, 0x3ff80000
    .word 0x8800759c, 0x7e37e43c
    .word 0xc2f8f359, 0x1a56e1f
vals:
    .word 0x9fa27fad, 0x3a1a6bf6, 0x9c361677, 0x228955d8
    .word 0x942a62be, 0x33673d0d, 0xc7b95d04, 0x63432a4
    .word 0x9d0a6f1e, 0x5437788b, 0x6392ab99, 0xea0f7253
    .word 0x1868dd15, 0xc0a5673a, 0xf2a8f387, 0xb6e6a78e
.text
    la $r14, buf
    la $r15, buf
    addi $r15, $r15, 16
    la $r19, fpt
    la $r20, vals
    li $r3, 0x446679b8
    li $r4, 0x8fa0f82e
    li $r5, 0x829f65ec
    li $r6, 0xb0e9f770
    li $r7, 0x43811211
    li $r8, 0x9f762636
    li $r9, 0x92049ccf
    li $r16, 0x9feb32cf
    neg $r6, $r2
    l.d $f5, 8($r19)
    div $r6, $r17, $r5
    li $r10, 5
L1:
    ori $r8, $r16, 6821
    jal leaf
    div $r3, $r2, $r2
    addi $r10, $r10, -1
    bgtz $r10, L1
    sll $r16, $r17, 12
    addi $r7, $r3, -1827
    rem $r4, $r7, $r0
    l.d $f7, 24($r19)
    sub $r3, $r8, $r16
    slti $r9, $r8, 86
    xor $r3, $r2, $r9
    s.d $f7, 136($r14)
    and $r6, $r0, $r3
    slt $r5, $r0, $r17
    sra $r3, $r16, 24
    andi $r18, $r16, 1
    beq $r18, $r0, S2
    sw $r5, 100($r15)
    add.d $f2, $f2, $f3
    li $r10, 4
L3:
    srlv $r6, $r17, $r9
    mul.d $f5, $f5, $f6
    andi $r8, $r2, 13159
    slti $r4, $r17, 716
    nor $r16, $r3, $r0
    srlv $r3, $r17, $r2
    li $r17, 0x63984087
    li $r11, 5
L4:
    mov.d $f2, $f4
    andi $r18, $r16, 4
    beq $r18, $r0, S5
    addi $r9, $r16, 1182
    div.d $f1, $f5, $f6
    lw $r6, 28($r20)
    lw $r3, 116($r14)
    xor $r3, $r8, $r8
    andi $r7, $r6, 22420
    srlv $r7, $r16, $r16
    andi $r5, $r4, 27279
    sw $r17, 84($r14)
    l.d $f0, 16($r19)
    andi $r16, $r16, 29889
    l.d $f2, 32($r19)
    lw $r4, 36($r20)
    mfc1 $r9, $f4
    slti $r16, $r6, 1686
    addi $r4, $r6, 136
S5:
    lw $r6, 104($r14)
    lw $r5, 108($r15)
    li $r2, 5
    jal rec
    li $r12, 16
L6:
    sll $r8, $r6, 25
    srl $r3, $r5, 12
    slti $r9, $r17, -1982
    neg $r7, $r4
    ori $r8, $r17, 28772
    lui $r4, 0x5743
    mul.d $f5, $f2, $f5
    andi $r7, $r7, 11726
    addi $r12, $r12, -1
    bgtz $r12, L6
    sw $r16, 144($r14)
    ori $r6, $r4, 28990
    li $r12, 32
L7:
    xori $r3, $r3, 6317
    neg $r4, $r16
    addi $r9, $r4, 1625
    rem $r5, $r7, $r16
    add.d $f4, $f0, $f0
    ori $r9, $r8, 25174
    nor $r3, $r0, $r2
    l.d $f1, 168($r15)
    lw $r9, 116($r14)
    addi $r4, $r17, 1687
    add.d $f2, $f7, $f2
    s.d $f6, 80($r14)
    sub.d $f4, $f3, $f5
    div.d $f1, $f2, $f7
    ori $r8, $r0, 21952
    add $r3, $r4, $r3
    sub $r4, $r0, $r16
    srlv $r7, $r17, $r16
    ori $r5, $r9, 11064
    neg $r9, $r0
    l.d $f3, 48($r19)
    lw $r4, 16($r15)
    rem $r16, $r9, $r7
    sw $r5, 84($r15)
    sub $r5, $r2, $r16
    s.d $f4, 24($r15)
    xori $r5, $r4, 7752
    srav $r5, $r0, $r2
    div $r8, $r2, $r3
    lw $r4, 128($r14)
    or $r6, $r5, $r6
    sw $r2, 20($r15)
    sltiu $r6, $r6, 20
    addi $r12, $r12, -1
    bgtz $r12, L7
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 15
    beq $r18, $r0, E4
    addi $r11, $r11, -1
    bgtz $r11, L4
E4:
    addi $r10, $r10, -1
    bgtz $r10, L3
    lw $r3, 204($r15)
    move $r4, $r7
    li $r17, 0x49adc4d9
    li $r10, 1
L8:
    sub $r4, $r4, $r4
    move $r7, $r4
    l.d $f7, 72($r15)
    div $r4, $r4, $r8
    div.d $f4, $f5, $f4
    xori $r6, $r6, 16466
    li $r11, 7
L9:
    andi $r18, $r11, 4
    beq $r18, $r0, S10
    div.d $f5, $f4, $f4
    sub.d $f6, $f1, $f0
    slt $r16, $r0, $r5
    sw $r2, 208($r15)
    l.d $f0, 16($r19)
    mov.d $f4, $f3
    addi $r16, $r7, 907
    c.lt.d $r3, $f7, $f5
    c.lt.d $r16, $f7, $f5
    sub.d $f2, $f7, $f4
    lw $r16, 16($r20)
    xor $r7, $r9, $r6
    c.lt.d $r8, $f4, $f3
    mul $r9, $r4, $r4
    andi $r7, $r7, 9269
    lw $r8, 32($r20)
    neg $r8, $r7
    div.d $f0, $f0, $f3
    mov.d $f5, $f4
    xori $r16, $r8, 2483
    cvt.d.w $f0, $f3
    sllv $r5, $r9, $r5
    addi $r6, $r8, 600
    l.d $f4, 16($r19)
    move $r16, $r17
    div $r6, $r17, $r17
    sllv $r3, $r7, $r9
    mtc1 $r16, $f2
    sw $r6, 0($r15)
    xori $r16, $r17, 25619
    lw $r7, 16($r15)
    sub $r3, $r6, $r6
    mfc1 $r4, $f3
    andi $r7, $r5, 26887
    sll $r8, $r3, 18
    add.d $f7, $f2, $f7
    sltiu $r8, $r8, -244
    sw $r0, 120($r15)
    srav $r6, $r7, $r16
    sll $r6, $r6, 3
    lw $r4, 148($r15)
    s.d $f3, 80($r15)
    slti $r5, $r0, 38
    srlv $r3, $r3, $r7
    div.d $f5, $f6, $f7
    lui $r9, 0x2257
    srav $r3, $r0, $r8
    sllv $r8, $r7, $r16
S10:
    li $r2, 7
    jal rec
    andi $r18, $r11, 4
    beq $r18, $r0, S11
    addi $r4, $r7, 1543
    slti $r5, $r16, -397
    mfc1 $r7, $f6
    addi $r3, $r4, 1829
    srl $r9, $r9, 29
    add $r9, $r5, $r4
    ori $r3, $r16, 25995
    srl $r7, $r9, 4
S11:
    li $r12, 10
L12:
    neg $r7, $r6
    div $r8, $r5, $r2
    srav $r4, $r9, $r5
    mul.d $f6, $f0, $f1
    nor $r9, $r17, $r17
    and $r5, $r9, $r3
    div.d $f7, $f6, $f4
    sqrt.d $f0, $f0
    addi $r12, $r12, -1
    bgtz $r12, L12
    li $r12, 5
L13:
    sllv $r9, $r7, $r8
    srl $r7, $r6, 9
    s.d $f5, 136($r14)
    l.d $f7, 56($r19)
    c.lt.d $r9, $f2, $f3
    sltu $r8, $r0, $r2
    lw $r9, 36($r20)
    slti $r9, $r8, -1391
    xori $r8, $r16, 19232
    sllv $r3, $r6, $r2
    slti $r6, $r7, -1809
    add $r5, $r2, $r3
    andi $r16, $r2, 309
    lw $r7, 84($r15)
    cvt.d.w $f7, $f1
    slt $r5, $r9, $r5
    sw $r6, 184($r14)
    sw $r9, 120($r15)
    cvt.w.d $f2, $f4
    and $r3, $r16, $r8
    slt $r5, $r9, $r9
    add.d $f4, $f0, $f2
    mul.d $f3, $f3, $f6
    div.d $f6, $f7, $f1
    sqrt.d $f3, $f1
    lw $r16, 16($r20)
    sub $r16, $r17, $r7
    or $r3, $r0, $r9
    sub $r3, $r2, $r7
    andi $r8, $r17, 12248
    lw $r4, 44($r20)
    lw $r8, 24($r20)
    slt $r3, $r0, $r17
    srl $r5, $r7, 24
    s.d $f4, 128($r14)
    l.d $f2, 32($r19)
    sltu $r16, $r0, $r16
    lw $r6, 112($r14)
    srlv $r4, $r7, $r7
    neg $r16, $r8
    mtc1 $r17, $f6
    slt $r6, $r6, $r4
    lw $r9, 148($r14)
    sra $r7, $r3, 5
    s.d $f6, 72($r14)
    c.eq.d $r5, $f0, $f2
    div $r9, $r4, $r8
    srl $r8, $r9, 14
    rem $r7, $r8, $r2
    lw $r16, 68($r14)
    sub $r3, $r9, $r3
    sltiu $r3, $r7, 2040
    xori $r8, $r17, 26152
    lw $r3, 60($r20)
    ori $r9, $r6, 4772
    lui $r16, 0x73cd
    mov.d $f5, $f6
    cvt.w.d $f5, $f1
    add.d $f5, $f1, $f1
    c.lt.d $r8, $f1, $f2
    c.le.d $r9, $f7, $f2
    or $r3, $r3, $r7
    sw $r16, 216($r14)
    addi $r12, $r12, -1
    bgtz $r12, L13
    addi $r11, $r11, -1
    bgtz $r11, L9
    sltiu $r9, $r16, 613
    cvt.w.d $f0, $f6
    ori $r16, $r7, 7000
    lw $r3, 8($r20)
    andi $r18, $r16, 4
    beq $r18, $r0, S14
    c.lt.d $r9, $f4, $f4
    rem $r5, $r8, $r9
    li $r17, 0xc676ef77
    li $r11, 13
L15:
    ori $r4, $r0, 16085
    sw $r16, 68($r14)
    sltiu $r5, $r4, 1947
    mtc1 $r17, $f1
    sll $r4, $r16, 28
    sra $r8, $r3, 13
    srl $r6, $r8, 6
    lw $r9, 20($r20)
    lw $r7, 124($r15)
    sub $r9, $r8, $r17
    slt $r5, $r17, $r4
    sub.d $f1, $f0, $f2
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 15
    beq $r18, $r0, E15
    addi $r11, $r11, -1
    bgtz $r11, L15
E15:
    lui $r8, 0xf872
    li $r11, 6
L16:
    c.lt.d $r16, $f0, $f4
    move $r3, $r4
    addi $r9, $r7, -1627
    mfc1 $r6, $f0
    lw $r4, 76($r15)
    lw $r8, 60($r20)
    neg $r6, $r3
    add.d $f4, $f6, $f1
    sw $r8, 88($r15)
    mfc1 $r7, $f1
    lw $r3, 144($r14)
    move $r8, $r9
    srav $r16, $r17, $r2
    or $r3, $r0, $r16
    lw $r6, 192($r14)
    slt $r16, $r0, $r17
    addi $r11, $r11, -1
    bgtz $r11, L16
S14:
    sll $r18, $r17, 13
    xor $r17, $r17, $r18
    srl $r18, $r17, 17
    xor $r17, $r17, $r18
    sll $r18, $r17, 5
    xor $r17, $r17, $r18
    andi $r18, $r17, 7
    beq $r18, $r0, E8
    addi $r10, $r10, -1
    bgtz $r10, L8
E8:
S2:
    halt
leaf:
    xor $r5, $r5, $r7
    addi $r16, $r16, 3
    sw $r16, 96($r14)
    jr $ra
rec:
    addi $sp, $sp, -8
    sw $ra, 0($sp)
    sw $r2, 4($sp)
    addi $r2, $r2, -1
    blez $r2, Rdone
    jal rec
Rdone:
    lw $r2, 4($sp)
    lw $ra, 0($sp)
    add $r16, $r16, $r2
    addi $sp, $sp, 8
    jr $ra
