//! Shape regression tests for the reproduced evaluation: a reduced-scale
//! sweep must exhibit the paper's qualitative claims. These are the
//! assertions that protect the reproduction itself — if a refactor breaks
//! any headline trend, this file fails.

use riq_bench::{fig9_points, run_experiment, EngineOptions, Experiment, Sweep};
use riq_power::ComponentGroup;

/// One shared reduced-scale sweep (the sweep costs seconds; the assertions
/// are cheap).
fn sweep() -> &'static Sweep {
    use std::sync::OnceLock;
    static SWEEP: OnceLock<Sweep> = OnceLock::new();
    SWEEP.get_or_init(|| {
        // One worker per CPU: identical results, faster test suite.
        Sweep::run_with(0.15, &EngineOptions::default()).expect("sweep runs")
    })
}

#[test]
fn fig5_small_loops_gate_everywhere() {
    let s = sweep();
    for k in ["aps", "tsf", "wss"] {
        for iq in [32, 64, 128, 256] {
            let g = s.point(k, iq).unwrap().gated_rate();
            assert!(g > 0.75, "{k} at IQ {iq}: gated {g:.2}");
        }
    }
}

#[test]
fn fig5_large_loops_need_large_queues() {
    let s = sweep();
    // eflux needs 64; adi/btrix/tomcat need 128; vpenta needs 256.
    // Thresholds are loose low-side because the constant-size array
    // initialization loops gate a little even when the main loop cannot.
    let gate = |k: &str, iq| s.point(k, iq).unwrap().gated_rate();
    assert!(gate("eflux", 32) < 0.25, "eflux at IQ-32: {:.2}", gate("eflux", 32));
    assert!(gate("eflux", 64) > 0.8);
    for k in ["adi", "btrix", "tomcat"] {
        assert!(gate(k, 64) < 0.25, "{k} must not fit IQ-64");
        assert!(gate(k, 128) > 0.8, "{k} must fit IQ-128");
    }
    assert!(gate("vpenta", 128) < 0.25);
    assert!(gate("vpenta", 256) > 0.8);
}

#[test]
fn fig5_average_grows_with_queue_size() {
    let t = sweep().fig5().expect("full sweep");
    let avg: Vec<f64> = (0..4).map(|c| t.value("average", c).unwrap()).collect();
    assert!(avg[0] < avg[1] && avg[1] < avg[2] && avg[2] < avg[3], "{avg:?}");
    // Paper: 42% at IQ-32 growing to 82% at IQ-256.
    assert!(avg[0] > 0.25 && avg[0] < 0.55, "IQ-32 average {:.2}", avg[0]);
    assert!(avg[3] > 0.75, "IQ-256 average {:.2}", avg[3]);
}

#[test]
fn fig5_multi_iteration_buffering_delays_small_loops() {
    // Paper: "increasing issue queue size does not always improve the
    // ability to perform pipeline gating (e.g., see tsf and wss)".
    let s = sweep();
    for k in ["tsf", "aps"] {
        let g32 = s.point(k, 32).unwrap().gated_rate();
        let g256 = s.point(k, 256).unwrap().gated_rate();
        assert!(g256 < g32, "{k}: gating should dip at large queues ({g32:.2} -> {g256:.2})");
    }
}

#[test]
fn fig6_component_reductions_grow_and_rank_correctly() {
    let t = sweep().fig6();
    for row in ["Icache", "Bpred", "IssueQueue"] {
        let v: Vec<f64> = (0..4).map(|c| t.value(row, c).unwrap()).collect();
        assert!(v[3] > v[0], "{row} reduction must grow with IQ size: {v:?}");
        assert!(v.iter().all(|&x| x > 0.0), "{row} always saves power: {v:?}");
    }
    // Ranking at the largest queue: icache saves most, then bpred, then IQ.
    let at = |row: &str| t.value(row, 3).unwrap();
    assert!(at("Icache") > at("IssueQueue"));
    assert!(at("Bpred") > at("IssueQueue"));
    // Overhead stays small (paper: a few percent at most).
    for c in 0..4 {
        let o = t.value("Overhead", c).unwrap();
        assert!(o < 0.06, "overhead share {o:.3} too large");
    }
}

#[test]
fn fig7_overall_savings_positive_on_average() {
    let t = sweep().fig7().expect("full sweep");
    for c in 0..4 {
        let avg = t.value("average", c).unwrap();
        assert!(avg > 0.02, "average power reduction at column {c}: {avg:.3}");
    }
    // Paper: savings at IQ-256 exceed IQ-32 on average (8% -> 12%).
    assert!(t.value("average", 3).unwrap() > t.value("average", 0).unwrap());
}

#[test]
fn fig8_ipc_impact_is_bounded() {
    let t = sweep().fig8().expect("full sweep");
    for (name, vals) in t.rows() {
        for (c, v) in vals.iter().enumerate() {
            assert!(
                (-0.2..=0.35).contains(v),
                "{name} IPC delta at column {c} out of family: {v:.3}"
            );
        }
    }
}

#[test]
fn fig9_distribution_unlocks_the_64_entry_queue() {
    let points = fig9_points(0.15, &EngineOptions::default()).expect("fig9 runs");
    let by = |k: &str| points.iter().find(|p| p.kernel == k).unwrap();
    // The fat kernels cannot gate at IQ-64 originally but can after
    // distribution (paper: average gated 48% -> 86%).
    for k in ["adi", "btrix", "tomcat", "vpenta"] {
        let p = by(k);
        assert!(p.original.gated_rate() < 0.1, "{k} original gates {:.2}", p.original.gated_rate());
        assert!(
            p.optimized.gated_rate() > 0.8,
            "{k} optimized gates {:.2}",
            p.optimized.gated_rate()
        );
        assert!(
            p.optimized.overall_power_reduction() > p.original.overall_power_reduction(),
            "{k}: distribution must increase power savings"
        );
    }
    let avg_orig: f64 =
        points.iter().map(|p| p.original.gated_rate()).sum::<f64>() / points.len() as f64;
    let avg_opt: f64 =
        points.iter().map(|p| p.optimized.gated_rate()).sum::<f64>() / points.len() as f64;
    assert!(avg_opt > avg_orig + 0.3, "gated average {avg_orig:.2} -> {avg_opt:.2}");
}

#[test]
fn nblt_reduces_revoke_rate_below_ten_percent() {
    // Paper §3: "an eight-entry NBLT ... helps reduce the buffering revoke
    // rate from around 40% to 10% below."
    let t = run_experiment(&Experiment::NbltAblation { scale: 0.15 }, &EngineOptions::default())
        .expect("ablation runs");
    let without = t.value("average", 0).unwrap();
    let with = t.value("average", 1).unwrap();
    assert!(with < 0.10, "with NBLT: {with:.3}");
    assert!(without > with * 2.0, "NBLT must cut the revoke rate ({without:.3} -> {with:.3})");
    // The small-loop benchmarks show the paper's ~40% figure directly.
    for k in ["aps", "tsf", "wss"] {
        let w = t.value(k, 0).unwrap();
        assert!(w > 0.25, "{k} without NBLT: {w:.3}");
    }
}

#[test]
fn reuse_never_touches_icache_while_gated() {
    // Indirect but strong: with gating ~always on for a tight loop, the
    // reuse run must fetch at least an order of magnitude less.
    let s = sweep();
    let p = s.point("aps", 64).unwrap();
    assert!(p.reuse.stats.fetched * 5 < p.baseline.stats.fetched);
    let icache_red = p.group_power_reduction(ComponentGroup::Icache);
    assert!(icache_red > 0.5, "icache power reduction {icache_red:.2}");
}
