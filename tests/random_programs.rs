//! Property-based differential testing: thousands of random structured
//! programs (arithmetic, memory, bounded loops, forward branches, leaf
//! calls) must produce identical architectural state on the functional
//! emulator and on the cycle simulator with and without the reuse issue
//! queue.

use proptest::prelude::*;
use riq::asm::{Program, ProgramBuilder};
use riq::core::{Processor, SimConfig};
use riq::emu::Machine;
use riq::isa::{AluImmOp, AluOp, FpAluOp, FpReg, FpUnaryOp, Inst, IntReg};

/// One element of a random program.
#[derive(Debug, Clone)]
enum Block {
    /// A run of register arithmetic.
    Alu(Vec<(AluOp, u8, u8, u8)>),
    /// An immediate operation.
    Imm(AluImmOp, u8, u8, i16),
    /// Store then load within the scratch buffer (word offsets).
    MemRoundTrip { src: u8, dst: u8, word: u8 },
    /// FP traffic seeded from an integer register.
    Fp { seed: u8, a: u8, b: u8, op: FpAluOp },
    /// A counted loop whose body adds into an accumulator.
    Loop { trips: u8, body_adds: u8 },
    /// A forward branch skipping one instruction.
    SkipIf { reg: u8, eq: bool },
    /// A call to the shared leaf procedure.
    Call,
}

/// Working registers the generator may freely clobber ($r2..$r12).
fn reg(n: u8) -> IntReg {
    IntReg::new(2 + n % 11)
}
fn fpr(n: u8) -> FpReg {
    FpReg::new(n % 8)
}

const SCRATCH: u8 = 20; // $r20 holds the scratch-buffer base
const LOOP_CTR: u8 = 21; // $r21 is the loop counter
const ACC: u8 = 22; // $r22 accumulates in loops

fn block_strategy() -> impl Strategy<Value = Block> {
    prop_oneof![
        prop::collection::vec(
            (
                prop_oneof![
                    Just(AluOp::Add),
                    Just(AluOp::Sub),
                    Just(AluOp::Mul),
                    Just(AluOp::Div),
                    Just(AluOp::And),
                    Just(AluOp::Or),
                    Just(AluOp::Xor),
                    Just(AluOp::Slt),
                    Just(AluOp::Sltu),
                    Just(AluOp::Srav),
                ],
                any::<u8>(),
                any::<u8>(),
                any::<u8>()
            ),
            1..5
        )
        .prop_map(Block::Alu),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Andi),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Xori),
                Just(AluImmOp::Slti),
            ],
            any::<u8>(),
            any::<u8>(),
            any::<i16>()
        )
            .prop_map(|(op, rt, rs, imm)| Block::Imm(op, rt, rs, imm)),
        (any::<u8>(), any::<u8>(), 0u8..32).prop_map(|(src, dst, word)| Block::MemRoundTrip {
            src,
            dst,
            word
        }),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            prop_oneof![Just(FpAluOp::AddD), Just(FpAluOp::SubD), Just(FpAluOp::MulD)]
        )
            .prop_map(|(seed, a, b, op)| Block::Fp { seed, a, b, op }),
        (1u8..7, 1u8..4).prop_map(|(trips, body_adds)| Block::Loop { trips, body_adds }),
        (any::<u8>(), any::<bool>()).prop_map(|(reg, eq)| Block::SkipIf { reg, eq }),
        Just(Block::Call),
    ]
}

/// Assembles a block list into a runnable program.
fn build(blocks: &[Block]) -> Program {
    let mut b = ProgramBuilder::new();
    b.reserve_data("scratch", 512);
    b.entry("main");

    // Shared leaf procedure: doubles $r22.
    b.label("leaf");
    b.push(Inst::Alu {
        op: AluOp::Add,
        rd: IntReg::new(ACC),
        rs: IntReg::new(ACC),
        rt: IntReg::new(ACC),
    });
    b.push(Inst::Jr { rs: IntReg::RA });

    b.label("main");
    // Seed registers deterministically and point $r20 at the scratch area.
    let scratch = b.data_addr("scratch").expect("reserved");
    b.push(Inst::Lui { rt: IntReg::new(SCRATCH), imm: (scratch >> 16) as u16 });
    b.push(Inst::AluImm {
        op: AluImmOp::Ori,
        rt: IntReg::new(SCRATCH),
        rs: IntReg::new(SCRATCH),
        imm: (scratch & 0xffff) as i16,
    });
    for n in 0..11u8 {
        b.push(Inst::AluImm {
            op: AluImmOp::Addi,
            rt: reg(n),
            rs: IntReg::ZERO,
            imm: i16::from(n) * 37 + 5,
        });
    }

    let mut label = 0u32;
    for blk in blocks {
        match blk {
            Block::Alu(ops) => {
                for &(op, rd, rs, rt) in ops {
                    b.push(Inst::Alu { op, rd: reg(rd), rs: reg(rs), rt: reg(rt) });
                }
            }
            Block::Imm(op, rt, rs, imm) => {
                b.push(Inst::AluImm { op: *op, rt: reg(*rt), rs: reg(*rs), imm: *imm });
            }
            Block::MemRoundTrip { src, dst, word } => {
                let off = i16::from(*word) * 4;
                b.push(Inst::Sw { rt: reg(*src), base: IntReg::new(SCRATCH), off });
                b.push(Inst::Lw { rt: reg(*dst), base: IntReg::new(SCRATCH), off });
            }
            Block::Fp { seed, a, b: fb, op } => {
                b.push(Inst::Mtc1 { rs: reg(*seed), fd: fpr(*a) });
                b.push(Inst::FpUnary { op: FpUnaryOp::CvtDW, fd: fpr(*a), fs: fpr(*a) });
                b.push(Inst::FpOp { op: *op, fd: fpr(*fb), fs: fpr(*a), ft: fpr(*fb) });
                // Round-trip a digest back into the integer file so FP
                // results are architecturally observable.
                b.push(Inst::FpUnary { op: FpUnaryOp::CvtWD, fd: fpr(*fb), fs: fpr(*fb) });
                b.push(Inst::Mfc1 { rd: reg(seed.wrapping_add(1)), fs: fpr(*fb) });
            }
            Block::Loop { trips, body_adds } => {
                label += 1;
                let top = format!("L{label}");
                b.push(Inst::AluImm {
                    op: AluImmOp::Addi,
                    rt: IntReg::new(LOOP_CTR),
                    rs: IntReg::ZERO,
                    imm: i16::from(*trips),
                });
                b.label(top.clone());
                for n in 0..*body_adds {
                    b.push(Inst::Alu {
                        op: AluOp::Add,
                        rd: IntReg::new(ACC),
                        rs: IntReg::new(ACC),
                        rt: reg(n),
                    });
                }
                b.push(Inst::AluImm {
                    op: AluImmOp::Addi,
                    rt: IntReg::new(LOOP_CTR),
                    rs: IntReg::new(LOOP_CTR),
                    imm: -1,
                });
                b.bne(IntReg::new(LOOP_CTR), IntReg::ZERO, top);
            }
            Block::SkipIf { reg: r, eq } => {
                label += 1;
                let skip = format!("S{label}");
                if *eq {
                    b.beq(reg(*r), IntReg::ZERO, skip.clone());
                } else {
                    b.bne(reg(*r), IntReg::ZERO, skip.clone());
                }
                b.push(Inst::AluImm {
                    op: AluImmOp::Addi,
                    rt: IntReg::new(ACC),
                    rs: IntReg::new(ACC),
                    imm: 13,
                });
                b.label(skip);
            }
            Block::Call => {
                b.call("leaf");
            }
        }
    }
    b.push(Inst::Halt);
    b.finish().expect("generated program builds")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 160, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_agree_across_engines(
        blocks in prop::collection::vec(block_strategy(), 1..14)
    ) {
        let program = build(&blocks);
        let mut oracle = Machine::new(&program);
        oracle.run(5_000_000).expect("oracle halts");
        for (mode, cfg) in [
            ("baseline", SimConfig::baseline()),
            ("reuse", SimConfig::baseline().with_reuse(true)),
            ("reuse-iq32", SimConfig::baseline().with_iq_size(32).with_reuse(true)),
        ] {
            let r = Processor::new(cfg).run(&program)
                .unwrap_or_else(|e| panic!("{mode}: {e}\nblocks: {blocks:?}"));
            prop_assert_eq!(
                &r.arch_state, oracle.state(),
                "{} register state diverged; blocks: {:?}", mode, &blocks
            );
            prop_assert_eq!(
                r.mem_digest, oracle.memory().content_digest(),
                "{} memory diverged; blocks: {:?}", mode, &blocks
            );
            prop_assert_eq!(r.stats.committed, oracle.retired());
        }
    }
}
