//! Scores the static eligibility verdicts against what the reuse issue
//! queue actually does: every kernel is simulated once at the 64-entry
//! baseline with reuse enabled, the reuse-FSM trace events are replayed,
//! and the static predictions must reach high recall of the dynamic
//! promotions — with every disagreement carrying a known classification,
//! never an unexplained one.

use riq::analyze::{agreement, analyze};
use riq::core::{Processor, SimConfig};
use riq::trace::VecSink;

const IQ: u32 = 64;

/// Classifications [`agreement`] may attach to a loop. Anything outside
/// this vocabulary is a bug in the classifier, not a new insight.
const KNOWN_CLASSES: &[&str] = &[
    "agree",
    "never_detected",
    "insufficient_iterations",
    "nblt_suppressed",
    "exited_while_buffering",
    "queue_full",
    "revoked_by_recovery",
    "inner_loop_dynamic",
    "unpaired_return_dynamic",
    "unknown_to_static",
    "static_not_backward",
    "static_too_large",
    "static_inner_loop",
    "static_does_not_fit",
    "static_unpaired_return",
    "static_indirect_call",
    "static_recursion",
];

#[test]
fn static_eligibility_recalls_dynamic_promotions_on_the_suite() {
    let mut total_promoted = 0u32;
    for kernel in riq::kernels::suite() {
        let image = riq::kernels::compile(&kernel).unwrap();
        let analysis = analyze(&image);
        let mut sink = VecSink::new();
        Processor::new(SimConfig::baseline().with_iq_size(IQ).with_reuse(true))
            .run_observed(&image, &mut sink, None)
            .unwrap();
        let g = agreement(&image, &analysis, &sink.events, IQ);
        assert!(
            g.recall >= 0.9,
            "{}: recall {:.3} below 0.9 ({} promoted, {} predicted eligible)\nloops: {:#?}",
            kernel.name,
            g.recall,
            g.promoted_loops,
            g.eligible_loops,
            g.loops
        );
        for l in &g.loops {
            assert!(
                KNOWN_CLASSES.contains(&l.class.as_str()),
                "{}: loop {:#x}..{:#x} carries unknown class {:?}",
                kernel.name,
                l.head,
                l.tail,
                l.class
            );
            // A promoted loop the static side called eligible must agree.
            if l.statically_eligible && l.promotions > 0 {
                assert_eq!(l.class, "agree", "{}: {:#x}..{:#x}", kernel.name, l.head, l.tail);
            }
        }
        total_promoted += g.promoted_loops;
    }
    assert!(total_promoted >= 8, "the suite promotes loops dynamically ({total_promoted})");
}

#[test]
fn precision_misses_are_classified_dynamically() {
    // Precision can legitimately fall below 1.0 (a statically eligible
    // loop may iterate too few times to promote); every such miss must be
    // explained by a dynamic classification, not left as "agree".
    for kernel in riq::kernels::suite() {
        let image = riq::kernels::compile(&kernel).unwrap();
        let analysis = analyze(&image);
        let mut sink = VecSink::new();
        Processor::new(SimConfig::baseline().with_iq_size(IQ).with_reuse(true))
            .run_observed(&image, &mut sink, None)
            .unwrap();
        let g = agreement(&image, &analysis, &sink.events, IQ);
        for l in &g.loops {
            if l.statically_eligible && l.promotions == 0 {
                assert_ne!(
                    l.class, "agree",
                    "{}: unpromoted eligible loop {:#x}..{:#x} must carry an explanation",
                    kernel.name, l.head, l.tail
                );
            }
        }
    }
}
