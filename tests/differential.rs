//! Differential tests: the cycle simulator (baseline *and* reuse pipeline)
//! must be architecturally identical to the functional emulator on every
//! workload — final register files and memory digests equal. This is the
//! central correctness property of the reproduction: the reuse issue queue
//! is purely microarchitectural.

use riq::asm::{assemble, Program};
use riq::core::{Processor, SimConfig};
use riq::emu::Machine;
use riq::kernels::{compile, distribute_kernel, suite_scaled};

fn check_program(program: &Program, label: &str) {
    let mut oracle = Machine::new(program);
    oracle.run(100_000_000).expect("oracle halts");
    for (mode, cfg) in [
        ("baseline", SimConfig::baseline()),
        ("reuse", SimConfig::baseline().with_reuse(true)),
        ("reuse-iq32", SimConfig::baseline().with_iq_size(32).with_reuse(true)),
        ("reuse-iq256", SimConfig::baseline().with_iq_size(256).with_reuse(true)),
    ] {
        let r = Processor::new(cfg).run(program).unwrap_or_else(|e| {
            panic!("{label}/{mode}: simulation failed: {e}");
        });
        assert_eq!(
            &r.arch_state,
            oracle.state(),
            "{label}/{mode}: architectural register mismatch"
        );
        assert_eq!(
            r.mem_digest,
            oracle.memory().content_digest(),
            "{label}/{mode}: memory digest mismatch"
        );
        assert_eq!(
            r.stats.committed,
            oracle.retired(),
            "{label}/{mode}: committed count must equal dynamic instruction count"
        );
    }
}

#[test]
fn whole_suite_is_architecturally_invisible() {
    for k in suite_scaled(0.08) {
        let program = compile(&k).expect("kernel compiles");
        check_program(&program, &k.name);
    }
}

#[test]
fn distributed_suite_matches_too() {
    for k in suite_scaled(0.08) {
        let opt = distribute_kernel(&k);
        let program = compile(&opt).expect("distributed kernel compiles");
        check_program(&program, &format!("{}-distributed", k.name));
    }
}

#[test]
fn distribution_preserves_semantics() {
    // Original and distributed kernels must leave identical memory.
    for k in suite_scaled(0.08) {
        let p1 = compile(&k).unwrap();
        let p2 = compile(&distribute_kernel(&k)).unwrap();
        let mut m1 = Machine::new(&p1);
        let mut m2 = Machine::new(&p2);
        m1.run(100_000_000).unwrap();
        m2.run(100_000_000).unwrap();
        // Compare array contents (data segment region), not the digests of
        // whole memory: text segments legitimately differ.
        for (decl_idx, decl) in k.arrays.iter().enumerate() {
            let name = format!("{}_{}", k.name, decl.name);
            let a1 = p1.symbol(&name).unwrap();
            let a2 = p2.symbol(&name).unwrap();
            for i in 0..decl.len {
                let v1 = m1.memory().load_u64(a1 + 64 + 8 * i).unwrap();
                let v2 = m2.memory().load_u64(a2 + 64 + 8 * i).unwrap();
                assert_eq!(
                    f64::from_bits(v1),
                    f64::from_bits(v2),
                    "{}: array {decl_idx} ({}) element {i} diverged",
                    k.name,
                    decl.name
                );
            }
        }
    }
}

#[test]
fn hand_written_control_flow_corpus() {
    let corpus: &[(&str, &str)] = &[
        (
            "nested-loops",
            r#"
                li $r2, 9
            outer:
                li $r3, 17
            inner:
                add $r4, $r4, $r3
                addi $r3, $r3, -1
                bne $r3, $r0, inner
                addi $r2, $r2, -1
                bne $r2, $r0, outer
                halt
            "#,
        ),
        (
            "call-in-loop",
            r#"
                .entry main
            twice:
                add $r4, $r4, $r4
                jr $ra
            main:
                li $r4, 1
                li $r2, 5
            loop:
                jal twice
                addi $r2, $r2, -1
                bne $r2, $r0, loop
                halt
            "#,
        ),
        (
            "data-dependent-branches",
            r#"
                li $r2, 50
                li $r5, 0
            loop:
                andi $r6, $r2, 3
                bne $r6, $r0, skip
                addi $r5, $r5, 100
            skip:
                addi $r5, $r5, 1
                addi $r2, $r2, -1
                bne $r2, $r0, loop
                halt
            "#,
        ),
        (
            "memory-recurrence",
            r#"
                .data
                buf: .space 256
                .text
                la $r8, buf
                li $r2, 30
                li $r3, 7
                sw $r3, 0($r8)
            loop:
                lw $r4, 0($r8)
                add $r4, $r4, $r2
                sw $r4, 4($r8)
                addi $r8, $r8, 4
                addi $r2, $r2, -1
                bne $r2, $r0, loop
                halt
            "#,
        ),
        (
            "fp-heavy-loop",
            r#"
                li $r3, 3
                mtc1 $r3, $f1
                cvt.d.w $f1, $f1
                li $r2, 40
            loop:
                add.d $f2, $f2, $f1
                mul.d $f3, $f2, $f1
                sub.d $f4, $f3, $f2
                div.d $f5, $f3, $f1
                addi $r2, $r2, -1
                bne $r2, $r0, loop
                c.lt.d $r6, $f2, $f3
                halt
            "#,
        ),
        (
            "one-instruction-loop",
            r#"
                li $r2, 20
            loop:
                bgtz $r2, dec
                halt
            dec:
                addi $r2, $r2, -1
                b loop
            "#,
        ),
        (
            "stack-discipline",
            r#"
                .entry main
            leaf:
                addi $sp, $sp, -8
                sw $r9, 0($sp)
                li $r9, 42
                add $r10, $r10, $r9
                lw $r9, 0($sp)
                addi $sp, $sp, 8
                jr $ra
            main:
                li $r9, 7
                li $r2, 6
            loop:
                jal leaf
                addi $r2, $r2, -1
                bne $r2, $r0, loop
                add $r11, $r9, $r10
                halt
            "#,
        ),
    ];
    for (name, src) in corpus {
        let program = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_program(&program, name);
    }
}
