//! Stress differential testing over the seeded workload generator: random
//! kernels (beyond the fixed suite) must agree across the emulator and
//! both pipelines, and survive every compiler transform.

use riq::core::{Processor, SimConfig};
use riq::emu::Machine;
use riq::kernels::{
    compile, distribute_kernel, fuse_kernel, random_kernel, unroll_kernel, GeneratorParams,
};

#[test]
fn random_kernels_agree_across_engines() {
    let params = GeneratorParams::default();
    for seed in 0..24 {
        let kernel = random_kernel(seed, params);
        let program = compile(&kernel).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut oracle = Machine::new(&program);
        oracle.run(50_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (mode, cfg) in
            [("baseline", SimConfig::baseline()), ("reuse", SimConfig::baseline().with_reuse(true))]
        {
            let r = Processor::new(cfg)
                .run(&program)
                .unwrap_or_else(|e| panic!("seed {seed}/{mode}: {e}"));
            assert_eq!(&r.arch_state, oracle.state(), "seed {seed}/{mode}");
            assert_eq!(r.mem_digest, oracle.memory().content_digest(), "seed {seed}/{mode}");
        }
    }
}

#[test]
fn transforms_survive_random_kernels() {
    // Every transform of every random kernel must stay valid, compile,
    // and produce the same final array state on the emulator.
    let params = GeneratorParams { allow_calls: false, ..GeneratorParams::default() };
    for seed in 0..16 {
        let kernel = random_kernel(seed, params);
        let reference = array_state(&kernel);
        for (name, t) in [
            ("distributed", distribute_kernel(&kernel)),
            ("unrolled", unroll_kernel(&kernel, 2)),
            ("fused(distributed)", fuse_kernel(&distribute_kernel(&kernel))),
        ] {
            assert!(t.validate().is_ok(), "seed {seed} {name}");
            assert_eq!(array_state(&t), reference, "seed {seed} {name} diverged");
        }
    }
}

fn array_state(kernel: &riq::kernels::Kernel) -> Vec<Vec<u64>> {
    let program = compile(kernel).expect("compiles");
    let mut m = Machine::new(&program);
    m.run(50_000_000).expect("halts");
    kernel
        .arrays
        .iter()
        .map(|decl| {
            let base =
                program.symbol(&format!("{}_{}", kernel.name, decl.name)).expect("array symbol")
                    + riq::kernels::GUARD_ELEMS * 8;
            (0..decl.len).map(|i| m.memory().load_u64(base + 8 * i).expect("aligned")).collect()
        })
        .collect()
}
