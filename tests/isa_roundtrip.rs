//! Full-circle ISA codec test: every opcode is encoded, decoded back,
//! disassembled at a concrete PC, and the disassembly text is fed through
//! the assembler again — the reassembled word must equal the original
//! encoding. This pins the instruction word layout, the decoder, and the
//! mutual intelligibility of `riq_isa::disassemble` and `riq_asm`.

use riq::asm::{assemble, TEXT_BASE};
use riq::isa::{
    disassemble, disassemble_with, AluImmOp, AluOp, BranchCond, FpAluOp, FpCond, FpReg, FpUnaryOp,
    Inst, IntReg, ShiftOp,
};

/// One exemplar per instruction form, covering every sub-opcode of each
/// multi-op variant. Register and immediate choices are arbitrary but
/// non-trivial (no all-zero fields) so field packing errors show up.
fn exemplars() -> Vec<Inst> {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut out = vec![Inst::Nop, Inst::Halt];
    for op in [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Sllv,
        AluOp::Srlv,
        AluOp::Srav,
    ] {
        out.push(Inst::Alu { op, rd: r(3), rs: r(4), rt: r(5) });
    }
    for op in [
        AluImmOp::Addi,
        AluImmOp::Andi,
        AluImmOp::Ori,
        AluImmOp::Xori,
        AluImmOp::Slti,
        AluImmOp::Sltiu,
    ] {
        let imm = match op {
            AluImmOp::Addi | AluImmOp::Slti | AluImmOp::Sltiu => -7,
            _ => 0x1f3,
        };
        out.push(Inst::AluImm { op, rt: r(6), rs: r(7), imm });
    }
    for op in [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra] {
        out.push(Inst::Shift { op, rd: r(8), rt: r(9), shamt: 5 });
    }
    out.push(Inst::Lui { rt: r(10), imm: 0xbeef });
    out.push(Inst::Lw { rt: r(11), base: r(12), off: 32 });
    out.push(Inst::Sw { rt: r(13), base: r(14), off: -8 });
    out.push(Inst::Ld { ft: f(1), base: r(15), off: 16 });
    out.push(Inst::Sd { ft: f(2), base: r(16), off: -24 });
    for op in [FpAluOp::AddD, FpAluOp::SubD, FpAluOp::MulD, FpAluOp::DivD] {
        out.push(Inst::FpOp { op, fd: f(3), fs: f(4), ft: f(5) });
    }
    for op in
        [FpUnaryOp::MovD, FpUnaryOp::NegD, FpUnaryOp::SqrtD, FpUnaryOp::CvtDW, FpUnaryOp::CvtWD]
    {
        out.push(Inst::FpUnary { op, fd: f(6), fs: f(7) });
    }
    for cond in [FpCond::Eq, FpCond::Lt, FpCond::Le] {
        out.push(Inst::CmpD { cond, rd: r(17), fs: f(0), ft: f(1) });
    }
    out.push(Inst::Mtc1 { rs: r(18), fd: f(2) });
    out.push(Inst::Mfc1 { rd: r(19), fs: f(3) });
    out.push(Inst::Beq { rs: r(2), rt: r(3), off: 6 });
    out.push(Inst::Bne { rs: r(4), rt: r(5), off: -3 });
    for cond in [BranchCond::Lez, BranchCond::Gtz, BranchCond::Ltz, BranchCond::Gez] {
        out.push(Inst::Bcond { cond, rs: r(20), off: 4 });
    }
    out.push(Inst::J { target: (TEXT_BASE >> 2) + 12 });
    out.push(Inst::Jal { target: (TEXT_BASE >> 2) + 20 });
    out.push(Inst::Jr { rs: r(31) });
    out.push(Inst::Jalr { rd: r(31), rs: r(21) });
    out
}

#[test]
fn every_opcode_survives_encode_decode_disasm_reassemble() {
    let pc = TEXT_BASE;
    for inst in exemplars() {
        let word = inst.encode().unwrap_or_else(|e| panic!("{inst:?}: encode failed: {e}"));
        let back = Inst::decode(word).unwrap_or_else(|e| panic!("{inst:?}: decode failed: {e}"));
        assert_eq!(back, inst, "decode(encode(i)) must be the identity");

        let text = disassemble(&inst, pc);
        let source = format!(".text {pc:#x}\n    {text}\n");
        let image = assemble(&source)
            .unwrap_or_else(|e| panic!("{inst:?}: disassembly {text:?} did not reassemble: {e}"));
        assert_eq!(image.text_base(), pc);
        assert_eq!(image.text(), &[word], "{inst:?}: reassembling {text:?} changed the encoding");
    }
}

#[test]
fn symbol_table_names_branch_and_jump_targets() {
    let image = assemble(
        ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  jal leaf\n  halt\nleaf:\n  jr $ra\n",
    )
    .unwrap();
    let resolve = |addr: u32| image.label_at(addr).map(str::to_owned);
    let mut named = Vec::new();
    for (pc, inst) in image.iter_insts() {
        named.push(disassemble_with(&inst, pc, resolve));
    }
    assert!(named.iter().any(|s| s.contains("loop")), "branch target named: {named:?}");
    assert!(named.iter().any(|s| s.contains("leaf")), "call target named: {named:?}");
}
