//! The analysis report is a pure function of the program: two
//! independent analyses of the same image must serialize to
//! byte-identical JSON, for every kernel in the suite. CI diffs reports
//! across runs, so this is load-bearing, not cosmetic.

use riq::analyze::{analyze, report_json, summary_line, ANALYZE_SCHEMA_VERSION};

#[test]
fn kernel_reports_are_byte_identical_across_analyses() {
    for kernel in riq::kernels::suite() {
        let image = riq::kernels::compile(&kernel).unwrap();
        let a1 = analyze(&image);
        let a2 = analyze(&image);
        let j1 = report_json(&kernel.name, &image, &a1, 64, None);
        let j2 = report_json(&kernel.name, &image, &a2, 64, None);
        assert_eq!(
            j1.to_pretty(),
            j2.to_pretty(),
            "{}: reports must be byte-identical",
            kernel.name
        );
        assert_eq!(
            summary_line(&kernel.name, &image, &a1, 64, None),
            summary_line(&kernel.name, &image, &a2, 64, None),
        );
        let parsed = riq::trace::parse(&j1.to_pretty()).unwrap();
        assert_eq!(parsed.get("schema_version").unwrap().as_u64(), Some(ANALYZE_SCHEMA_VERSION));
        assert_eq!(parsed, j1, "report must round-trip through the JSON parser");
    }
}

#[test]
fn every_kernel_has_analyzable_loops() {
    for kernel in riq::kernels::suite() {
        let image = riq::kernels::compile(&kernel).unwrap();
        let analysis = analyze(&image);
        assert!(!analysis.loops.is_empty(), "{}: kernels are loop nests", kernel.name);
        for summary in &analysis.loops {
            assert!(summary.natural.is_backward(), "{}: natural loops go backward", kernel.name);
            assert_eq!(summary.per_capacity.len(), riq::analyze::CAPACITIES.len());
        }
    }
}
