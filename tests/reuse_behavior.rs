//! End-to-end behavioral tests of the reuse issue queue: gating, the NBLT,
//! buffering strategies, procedure handling, and the state machine's
//! externally observable consequences.

use riq::asm::assemble;
use riq::core::{BufferingStrategy, Processor, RunResult, SimConfig};

fn run(src: &str, cfg: SimConfig) -> RunResult {
    let program = assemble(src).expect("assembles");
    Processor::new(cfg).run(&program).expect("runs to halt")
}

const TIGHT_LOOP: &str = r#"
        li $r2, 2000
    loop:
        add  $r3, $r3, $r2
        xor  $r4, $r4, $r3
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
"#;

#[test]
fn baseline_never_gates() {
    let r = run(TIGHT_LOOP, SimConfig::baseline());
    assert_eq!(r.stats.gated_cycles, 0);
    assert_eq!(r.stats.reuse.loops_detected, 0);
    assert_eq!(r.stats.reuse.reused_insts, 0);
}

#[test]
fn tight_loop_mostly_gated() {
    let r = run(TIGHT_LOOP, SimConfig::baseline().with_reuse(true));
    assert!(r.stats.gated_rate() > 0.8, "gated {:.2}", r.stats.gated_rate());
    // The loop may be detected more than once: the first detection is
    // cancelled by the cold predictor's own mispredict recovery (§2.5)
    // before buffering begins.
    assert!(r.stats.reuse.loops_detected >= 1);
    assert_eq!(r.stats.reuse.code_reuse_entries, 1);
    assert!(r.stats.reuse.reused_insts > 7000, "most work supplied by the queue");
}

#[test]
fn gated_cycles_mean_no_fetch() {
    let base = run(TIGHT_LOOP, SimConfig::baseline());
    let reuse = run(TIGHT_LOOP, SimConfig::baseline().with_reuse(true));
    // The reuse pipeline must fetch dramatically fewer instructions while
    // committing the same number.
    assert_eq!(base.stats.committed, reuse.stats.committed);
    assert!(
        reuse.stats.fetched * 10 < base.stats.fetched,
        "fetched {} vs baseline {}",
        reuse.stats.fetched,
        base.stats.fetched
    );
}

#[test]
fn loop_larger_than_queue_never_buffers() {
    // 40 add instructions + control: span > 32.
    let mut body = String::new();
    for _ in 0..40 {
        body.push_str("        add $r3, $r3, $r2\n");
    }
    let src = format!(
        "        li $r2, 200\n    loop:\n{body}        addi $r2, $r2, -1\n        bne $r2, $r0, loop\n        halt\n"
    );
    let r = run(&src, SimConfig::baseline().with_iq_size(32).with_reuse(true));
    assert_eq!(r.stats.reuse.loops_detected, 0, "span exceeds the queue: not capturable");
    assert_eq!(r.stats.gated_cycles, 0);
    // The same loop in a 64-entry queue is capturable.
    let r = run(&src, SimConfig::baseline().with_iq_size(64).with_reuse(true));
    assert!(r.stats.reuse.code_reuse_entries > 0);
    assert!(r.stats.gated_rate() > 0.5);
}

#[test]
fn outer_loop_lands_in_nblt() {
    let src = r#"
        li $r2, 30
    outer:
        li $r3, 200
    inner:
        add $r4, $r4, $r3
        addi $r3, $r3, -1
        bne $r3, $r0, inner
        addi $r2, $r2, -1
        bne $r2, $r0, outer
        halt
    "#;
    let r = run(src, SimConfig::baseline().with_reuse(true));
    // The outer loop gets detected (its span fits), starts buffering, hits
    // the inner loop, and is registered non-bufferable; later outer
    // iterations hit the NBLT instead of re-buffering.
    assert!(r.stats.reuse.nblt_inserts >= 1, "outer loop registered");
    assert!(r.stats.reuse.nblt_hits >= 1, "NBLT suppressed re-buffering");
    assert!(r.stats.gated_rate() > 0.5, "inner loop still reuses fine");
}

#[test]
fn nblt_suppresses_revoke_thrash() {
    let src = r#"
        li $r2, 40
    outer:
        li $r3, 40
    inner:
        add $r4, $r4, $r3
        addi $r3, $r3, -1
        bne $r3, $r0, inner
        addi $r2, $r2, -1
        bne $r2, $r0, outer
        halt
    "#;
    let with = run(src, SimConfig::baseline().with_reuse(true).with_nblt(8));
    let without = run(src, SimConfig::baseline().with_reuse(true).with_nblt(0));
    assert!(
        with.stats.reuse.bufferings_revoked < without.stats.reuse.bufferings_revoked,
        "NBLT must reduce revoked bufferings ({} vs {})",
        with.stats.reuse.bufferings_revoked,
        without.stats.reuse.bufferings_revoked
    );
    // Architecturally identical either way.
    assert_eq!(with.arch_state, without.arch_state);
}

#[test]
fn single_iteration_gates_sooner_multi_unrolls_more() {
    let single = run(
        TIGHT_LOOP,
        SimConfig::baseline().with_reuse(true).with_strategy(BufferingStrategy::SingleIteration),
    );
    let multi = run(
        TIGHT_LOOP,
        SimConfig::baseline().with_reuse(true).with_strategy(BufferingStrategy::MultiIteration),
    );
    assert_eq!(single.arch_state, multi.arch_state);
    assert!(
        multi.stats.reuse.iterations_buffered > single.stats.reuse.iterations_buffered,
        "multi-iteration buffers more ({} vs {})",
        multi.stats.reuse.iterations_buffered,
        single.stats.reuse.iterations_buffered
    );
    // Single buffers exactly one iteration per code-reuse entry.
    assert_eq!(single.stats.reuse.iterations_buffered, single.stats.reuse.code_reuse_entries);
    // Multi-iteration unrolling wraps the reuse pointer less often and is
    // at least as fast (the paper's §2.2.1 rationale).
    assert!(multi.stats.cycles <= single.stats.cycles + single.stats.cycles / 10);
}

#[test]
fn small_procedure_buffers_inside_loop() {
    let src = r#"
        .entry main
    bump:
        addi $r4, $r4, 3
        jr $ra
    main:
        li $r2, 1500
    loop:
        jal bump
        add $r5, $r5, $r4
        addi $r2, $r2, -1
        bne $r2, $r0, loop
        halt
    "#;
    let r = run(src, SimConfig::baseline().with_reuse(true));
    assert!(r.stats.reuse.code_reuse_entries >= 1, "loop+procedure captured");
    assert!(r.stats.gated_rate() > 0.7, "gated {:.2}", r.stats.gated_rate());
}

#[test]
fn too_large_procedure_makes_loop_non_bufferable() {
    // Procedure body of ~90 instructions cannot fit a 32-entry queue
    // together with the loop: buffering must revoke and register the loop.
    let mut proc_body = String::new();
    for _ in 0..90 {
        proc_body.push_str("        addi $r4, $r4, 1\n");
    }
    let src = format!(
        r#"
        .entry main
    fat:
{proc_body}        jr $ra
    main:
        li $r2, 60
    loop:
        jal fat
        addi $r2, $r2, -1
        bne $r2, $r0, loop
        halt
    "#
    );
    let r = run(&src, SimConfig::baseline().with_iq_size(32).with_reuse(true));
    assert!(r.stats.reuse.bufferings_revoked >= 1);
    assert!(r.stats.reuse.nblt_inserts >= 1);
    assert!(
        r.stats.gated_rate() < 0.05,
        "nothing reusable here, gated {:.2}",
        r.stats.gated_rate()
    );
}

#[test]
fn alternating_branch_inside_loop_limits_reuse() {
    // An if/else alternating every iteration defeats the static in-loop
    // prediction: each reuse attempt mispredicts quickly, so gating stays
    // partial — and results must still be correct.
    let src = r#"
        li $r2, 400
    loop:
        andi $r6, $r2, 1
        beq  $r6, $r0, even
        addi $r4, $r4, 1
        b join
    even:
        addi $r5, $r5, 1
    join:
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#;
    let reuse = run(src, SimConfig::baseline().with_reuse(true));
    let base = run(src, SimConfig::baseline());
    assert_eq!(reuse.arch_state, base.arch_state);
    assert!(
        reuse.stats.gated_rate() < 0.9,
        "alternation must keep kicking the queue out of Code Reuse"
    );
}

#[test]
fn reuse_stats_are_internally_consistent() {
    let r = run(TIGHT_LOOP, SimConfig::baseline().with_reuse(true));
    let s = r.stats.reuse;
    assert!(s.bufferings_started >= s.code_reuse_entries + s.bufferings_revoked);
    assert!(s.iterations_buffered >= s.code_reuse_entries);
    assert!(r.stats.gated_cycles <= r.stats.cycles);
    assert!(r.stats.dispatched >= r.stats.committed);
    assert!(r.power.gated_cycles == r.stats.gated_cycles);
}

#[test]
fn backward_jump_loops_are_capturable() {
    // A while-style loop ended by an unconditional backward `j`, exited by
    // a forward branch inside the body. The detector accepts backward
    // direct jumps as loop ends (§2.1); the exit branch's static in-loop
    // prediction (not taken) is verified after execution and eventually
    // fails, returning the queue to Normal.
    let src = r#"
        li $r2, 1200
    loop:
        addi $r3, $r3, 2
        addi $r2, $r2, -1
        beq  $r2, $r0, done
        add  $r4, $r4, $r3
        j    loop
    done:
        halt
    "#;
    let reuse = run(src, SimConfig::baseline().with_reuse(true));
    let base = run(src, SimConfig::baseline());
    assert_eq!(reuse.arch_state, base.arch_state);
    assert!(reuse.stats.reuse.code_reuse_entries >= 1, "j-ended loop captured");
    assert!(reuse.stats.gated_rate() > 0.6, "gated {:.2}", reuse.stats.gated_rate());
}

#[test]
fn rare_early_exit_branch_inside_loop() {
    // The loop usually stays; once every 64 iterations a forward branch
    // takes a one-instruction detour. Static prediction follows the
    // buffered (common) path, the detour costs one recovery, and the
    // queue re-enters Code Reuse afterwards.
    let src = r#"
        li $r2, 960
    loop:
        andi $r6, $r2, 63
        bne  $r6, $r0, common
        addi $r5, $r5, 1000
    common:
        addi $r4, $r4, 1
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#;
    let reuse = run(src, SimConfig::baseline().with_reuse(true));
    let base = run(src, SimConfig::baseline());
    assert_eq!(reuse.arch_state, base.arch_state);
    assert!(
        reuse.stats.reuse.code_reuse_entries > 3,
        "queue re-enters Code Reuse after each detour (entries {})",
        reuse.stats.reuse.code_reuse_entries
    );
    assert!(reuse.stats.gated_rate() > 0.5, "gated {:.2}", reuse.stats.gated_rate());
}

#[test]
fn deep_recursion_exceeding_the_ras_still_correct() {
    // Recursion depth 20 wraps the 8-entry RAS; returns mispredict but
    // recovery keeps everything architecturally exact (both pipelines).
    let src = r#"
        .entry main
    rec:
        addi $sp, $sp, -8
        sw   $ra, 0($sp)
        addi $r4, $r4, 1
        slti $r6, $r4, 20
        beq  $r6, $r0, base
        jal  rec
    base:
        lw   $ra, 0($sp)
        addi $sp, $sp, 8
        jr   $ra
    main:
        jal  rec
        halt
    "#;
    let reuse = run(src, SimConfig::baseline().with_reuse(true));
    let base = run(src, SimConfig::baseline());
    assert_eq!(reuse.arch_state, base.arch_state);
    assert_eq!(base.arch_state.int_reg(riq::isa::IntReg::new(4)), 20);
}

#[test]
fn zero_trip_loop_body_never_reuses() {
    // The backward branch falls through on its very first execution: the
    // detector arms, but buffering never starts (no NBLT entry, nothing
    // revoked) — the §2.2 "fall-through" path.
    let src = r#"
        li $r2, 1
    loop:
        addi $r3, $r3, 1
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#;
    let r = run(src, SimConfig::baseline().with_reuse(true));
    assert_eq!(r.stats.reuse.code_reuse_entries, 0);
    assert_eq!(r.stats.reuse.reused_insts, 0);
    assert_eq!(r.stats.reuse.nblt_inserts, 0);
}

#[test]
fn btrix_style_loop_underutilizes_large_queues() {
    // The paper's §3 explanation of btrix's IPC loss: a ~90-instruction
    // loop in a 128-entry queue buffers only one iteration, leaving the
    // queue underutilized in Code Reuse state. The occupancy statistic
    // shows it directly.
    let mut body = String::new();
    for i in 0..88 {
        body.push_str(&format!("        add $r{}, $r10, $r11\n", 3 + (i % 7)));
    }
    let src = format!(
        "        li $r2, 400\n    loop:\n{body}        addi $r2, $r2, -1\n        bne $r2, $r0, loop\n        halt\n"
    );
    let program = assemble(&src).expect("assembles");
    let cfg = SimConfig::baseline().with_iq_size(128);
    let base = Processor::new(cfg.clone()).run(&program).expect("runs");
    let reuse = Processor::new(cfg.with_reuse(true)).run(&program).expect("runs");
    assert!(reuse.stats.gated_rate() > 0.8, "90-inst loop fits IQ-128");
    // In Code Reuse the queue is pinned at ~one 90-entry iteration: well
    // below its 128-entry capacity ("an integer number of iterations").
    let occ = reuse.stats.avg_iq_occupancy();
    assert!(
        (60.0..=110.0).contains(&occ),
        "occupancy should sit near one 90-entry iteration, got {occ:.0}"
    );
    // And the queue cannot hold a second iteration, costing IPC exactly as
    // the paper reports for btrix at IQ-128.
    assert!(
        reuse.stats.ipc() <= base.stats.ipc(),
        "underutilized reuse ({:.2}) must not beat the baseline ({:.2})",
        reuse.stats.ipc(),
        base.stats.ipc()
    );
}
