//! End-to-end determinism of the `riq-serve` daemon: the service's CSV is
//! byte-identical to the in-process engine's for any worker count, across
//! a mid-sweep worker kill (lease expiry + requeue), and across a daemon
//! restart on a warm store — where a resubmitted sweep must also perform
//! **zero** new simulations (asserted through the `/statsz` counters).

use riq_bench::{run_experiment, start_daemon, Daemon, DaemonOptions, EngineOptions, Experiment};
use riq_serve::{http_request, run_worker, WorkerExit, WorkerOptions};
use riq_trace::JsonValue;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Trip-count scale of the sweeps below: large enough that every kernel
/// still exercises its loops, small enough that three cold Fig5–8 sweeps
/// stay in test-suite budget.
const SCALE: f64 = 0.02;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("riq-serve-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("results.wal")
}

fn daemon_on(store: &Path, lease_ttl: Duration) -> Daemon {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let mut options = DaemonOptions::new(store);
    options.queue.lease_ttl = lease_ttl;
    start_daemon(listener, &options).expect("daemon starts")
}

fn submit(addr: &str, experiment: &str) -> u64 {
    let body = format!("{{\"experiment\": \"{experiment}\", \"scale\": {SCALE}}}");
    let (status, reply) = http_request(addr, "POST", "/sweeps", body.as_bytes()).expect("submit");
    assert_eq!(status, 200, "submit rejected: {}", String::from_utf8_lossy(&reply));
    let doc = riq_trace::parse(std::str::from_utf8(&reply).expect("utf-8")).expect("json");
    doc.get("sweep").and_then(JsonValue::as_u64).expect("sweep id")
}

fn submit_fig58(addr: &str) -> u64 {
    submit(addr, "fig5-8")
}

/// Polls the sweep's CSV endpoint until the sweep finishes.
fn wait_csv(addr: &str, sweep: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) =
            http_request(addr, "GET", &format!("/sweeps/{sweep}/csv"), b"").expect("csv poll");
        match status {
            200 => return String::from_utf8(body).expect("utf-8 csv"),
            409 => {
                assert!(Instant::now() < deadline, "sweep {sweep} did not finish in time");
                thread::sleep(Duration::from_millis(25));
            }
            other => {
                panic!("sweep {sweep} csv: status {other}: {}", String::from_utf8_lossy(&body))
            }
        }
    }
}

fn statsz(addr: &str) -> JsonValue {
    let (status, body) = http_request(addr, "GET", "/statsz", b"").expect("statsz");
    assert_eq!(status, 200);
    riq_trace::parse(std::str::from_utf8(&body).expect("utf-8")).expect("statsz json")
}

fn counter(doc: &JsonValue, block: &str, field: &str) -> u64 {
    doc.get(block)
        .and_then(|b| b.get(field))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("statsz missing {block}.{field}"))
}

fn spawn_worker(addr: String, options: WorkerOptions) -> JoinHandle<riq_serve::WorkerOutcome> {
    thread::spawn(move || run_worker(&addr, &options))
}

fn fast_poll(id: &str) -> WorkerOptions {
    let mut options = WorkerOptions::named(id);
    options.poll = Duration::from_millis(10);
    options
}

/// The expected bytes: the ordinary in-process engine, default options.
/// Computed once — all three tests compare against the same sweep.
fn local_csv() -> String {
    static EXPECTED: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    EXPECTED
        .get_or_init(|| {
            let table =
                run_experiment(&Experiment::Fig5_8 { scale: SCALE }, &EngineOptions::default())
                    .expect("local sweep");
            table.to_csv()
        })
        .clone()
}

#[test]
fn service_csv_is_byte_identical_for_any_worker_count() {
    let expected = local_csv();

    // One worker, cold store.
    let store_one = temp_store("one");
    let daemon = daemon_on(&store_one, Duration::from_secs(60));
    let addr = daemon.addr().to_string();
    let worker = spawn_worker(addr.clone(), fast_poll("solo"));
    let sweep = submit_fig58(&addr);
    assert_eq!(wait_csv(&addr, sweep), expected, "1-worker service CSV diverged");
    daemon.stop();
    assert_eq!(worker.join().expect("worker thread").exit, WorkerExit::Disconnected);

    // Three workers racing over a fresh cold store.
    let store_three = temp_store("three");
    let daemon = daemon_on(&store_three, Duration::from_secs(60));
    let addr = daemon.addr().to_string();
    let workers: Vec<_> =
        (0..3).map(|i| spawn_worker(addr.clone(), fast_poll(&format!("w{i}")))).collect();
    let sweep = submit_fig58(&addr);
    assert_eq!(wait_csv(&addr, sweep), expected, "3-worker service CSV diverged");
    let stats = statsz(&addr);
    assert_eq!(counter(&stats, "queue", "failed"), 0);
    assert!(counter(&stats, "queue", "leases_granted") > 0);
    daemon.stop();
    for w in workers {
        let _ = w.join().expect("worker thread");
    }

    let _ = std::fs::remove_dir_all(store_one.parent().unwrap());
    let _ = std::fs::remove_dir_all(store_three.parent().unwrap());
}

#[test]
fn policy_edp_service_csv_matches_in_process_engine() {
    // The scorecard's jobs carry the issue-policy knob through the wire
    // codec (format v2): a daemon-run sweep must reproduce the in-process
    // engine's CSV byte for byte, workers racing or not.
    let expected =
        run_experiment(&Experiment::PolicyEdp { scale: SCALE }, &EngineOptions::default())
            .expect("local policy-edp")
            .to_csv();

    let store = temp_store("policy");
    let daemon = daemon_on(&store, Duration::from_secs(60));
    let addr = daemon.addr().to_string();
    let workers: Vec<_> =
        (0..2).map(|i| spawn_worker(addr.clone(), fast_poll(&format!("p{i}")))).collect();
    let sweep = submit(&addr, "policy-edp");
    assert_eq!(wait_csv(&addr, sweep), expected, "policy-edp service CSV diverged");
    let stats = statsz(&addr);
    assert_eq!(counter(&stats, "queue", "failed"), 0);
    daemon.stop();
    for w in workers {
        let _ = w.join().expect("worker thread");
    }
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn killed_worker_mid_sweep_requeues_and_output_is_unchanged() {
    let expected = local_csv();
    let store = temp_store("kill");
    // Short lease so the abandoned jobs requeue quickly.
    let daemon = daemon_on(&store, Duration::from_millis(200));
    let addr = daemon.addr().to_string();

    // The doomed worker completes two jobs, then vanishes mid-lease —
    // the run_worker SIGKILL stand-in (the CI smoke step kills a real
    // process; the state machine exercised here is the same).
    let mut doomed = fast_poll("doomed");
    doomed.abandon_after = Some(3);
    let doomed = spawn_worker(addr.clone(), doomed);
    let healthy = spawn_worker(addr.clone(), fast_poll("healthy"));

    let sweep = submit_fig58(&addr);
    assert_eq!(wait_csv(&addr, sweep), expected, "post-kill service CSV diverged");

    let stats = statsz(&addr);
    assert!(
        counter(&stats, "queue", "requeues") >= 1,
        "the abandoned lease must have expired and requeued"
    );
    assert_eq!(counter(&stats, "queue", "failed"), 0, "requeue must not burn out the job");
    assert_eq!(doomed.join().expect("doomed thread").exit, WorkerExit::Abandoned);
    daemon.stop();
    let _ = healthy.join().expect("healthy thread");
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn warm_store_restart_replays_results_with_zero_new_simulations() {
    let expected = local_csv();
    let store = temp_store("warm");

    // Cold pass: one worker fills the store.
    let daemon = daemon_on(&store, Duration::from_secs(60));
    let addr = daemon.addr().to_string();
    let worker = spawn_worker(addr.clone(), fast_poll("filler"));
    let sweep = submit_fig58(&addr);
    assert_eq!(wait_csv(&addr, sweep), expected);
    let cold = statsz(&addr);
    let cold_leases = counter(&cold, "queue", "leases_granted");
    assert!(cold_leases > 0, "cold sweep must simulate");
    let cold_entries = counter(&cold, "store", "entries");
    assert!(cold_entries > 0, "cold sweep must persist results");

    // Duplicate submission to the same (now warm) daemon: everything
    // resolves from the store, nothing reaches the queue.
    let sweep2 = submit_fig58(&addr);
    assert_eq!(wait_csv(&addr, sweep2), expected, "warm duplicate CSV diverged");
    let warm = statsz(&addr);
    assert_eq!(
        counter(&warm, "queue", "leases_granted"),
        cold_leases,
        "duplicate sweep must not lease a single job"
    );
    assert!(counter(&warm, "store", "hits") > 0);
    daemon.stop();
    let _ = worker.join().expect("filler thread");

    // Restart on the same store, with NO workers attached: the replayed
    // journal alone must satisfy the sweep — any queued job would hang
    // the poll loop, so finishing at all proves zero new simulations.
    let daemon = daemon_on(&store, Duration::from_secs(60));
    let addr = daemon.addr().to_string();
    let restarted = statsz(&addr);
    assert_eq!(
        counter(&restarted, "store", "entries"),
        cold_entries,
        "restart must recover every journal frame"
    );
    let sweep3 = submit_fig58(&addr);
    assert_eq!(wait_csv(&addr, sweep3), expected, "post-restart CSV diverged");
    let final_stats = statsz(&addr);
    assert_eq!(counter(&final_stats, "queue", "leases_granted"), 0);
    assert_eq!(counter(&final_stats, "queue", "queued"), 0);
    daemon.stop();
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}
