//! Pins the baseline configuration to the paper's Table 1, so no refactor
//! can silently drift the evaluation setup.

use riq::bpred::DirPredictorKind;
use riq::core::SimConfig;

#[test]
fn table1_window_and_widths() {
    let c = SimConfig::baseline();
    assert_eq!(c.iq_entries, 64, "Issue Queue: 64 entries");
    assert_eq!(c.lsq_entries, 32, "Load/Store Queue: 32 entries");
    assert_eq!(c.rob_entries, 64, "ROB: 64 entries");
    assert_eq!(c.fetch_queue, 4, "Fetch Queue: 4 entries");
    assert_eq!(c.fetch_width, 4, "Fetch/Decode width: 4 per cycle");
    assert_eq!(c.decode_width, 4);
    assert_eq!(c.issue_width, 4, "Issue/Commit width: 4 per cycle");
    assert_eq!(c.commit_width, 4);
}

#[test]
fn table1_function_units() {
    let c = SimConfig::baseline();
    assert_eq!(c.fu.int_alu, 4, "4 IALU");
    assert_eq!(c.fu.int_mult, 1, "1 IMULT");
    assert_eq!(c.fu.fp_alu, 4, "4 FPALU");
    assert_eq!(c.fu.fp_mult, 1, "1 FPMULT");
}

#[test]
fn table1_predictor() {
    let c = SimConfig::baseline();
    assert_eq!(c.bpred.dir, DirPredictorKind::Bimod { entries: 2048 }, "bimod, 2048 entries");
    assert_eq!(c.bpred.ras_entries, 8, "RAS 8 entries");
    assert_eq!((c.bpred.btb_sets, c.bpred.btb_ways), (512, 4), "BTB 512 set 4 way");
}

#[test]
fn table1_memory_hierarchy() {
    let c = SimConfig::baseline();
    let il1 = c.mem.il1;
    assert_eq!(il1.capacity(), 32 * 1024, "L1 I: 32KB");
    assert_eq!(il1.ways, 2, "L1 I: 2 way");
    assert_eq!(il1.hit_latency, 1, "L1 I: 1 cycle");
    let dl1 = c.mem.dl1;
    assert_eq!(dl1.capacity(), 32 * 1024, "L1 D: 32KB");
    assert_eq!(dl1.ways, 4, "L1 D: 4 way");
    assert_eq!(dl1.hit_latency, 1);
    let l2 = c.mem.l2;
    assert_eq!(l2.capacity(), 256 * 1024, "L2: 256KB");
    assert_eq!(l2.ways, 4);
    assert_eq!(l2.hit_latency, 8, "L2: 8 cycles");
    assert_eq!((c.mem.itlb.sets, c.mem.itlb.ways), (16, 4), "ITLB 16 set 4 way");
    assert_eq!((c.mem.dtlb.sets, c.mem.dtlb.ways), (32, 4), "DTLB 32 set 4 way");
    assert_eq!(c.mem.memory.first_chunk, 80, "memory: 80 cycles first chunk");
    assert_eq!(c.mem.memory.inter_chunk, 8, "memory: 8 cycles the rest");
}

#[test]
fn paper_sweep_relation_holds() {
    // §3: "the ROB size is set equal to the issue queue size, and the
    // load/store queue size is half that of the issue queue."
    for iq in [32, 64, 128, 256] {
        let c = SimConfig::baseline().with_iq_size(iq);
        assert_eq!(c.rob_entries, iq);
        assert_eq!(c.lsq_entries, iq / 2);
    }
}

#[test]
fn reuse_defaults() {
    let c = SimConfig::baseline();
    assert!(!c.reuse.enabled, "baseline is the conventional queue");
    let r = c.with_reuse(true);
    assert_eq!(r.reuse.nblt_entries, 8, "eight-entry NBLT (§2.2.3)");
}
