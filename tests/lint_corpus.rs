//! Lints every checked-in assembly exemplar and every generated kernel:
//! the corpus and the benchmark suite must stay clean of lint *errors*
//! (decode failures, control flow or stores escaping their segments).
//!
//! Warnings are reported per file with an explicit waiver list, so a new
//! warning in a corpus file is a deliberate decision, not drift.

use riq::analyze::analyze;
use riq::asm::assemble;

/// `(file, lint code)` warnings that are understood and accepted.
///
/// Every corpus file is a raw fuzz-generator output, and the generator
/// deliberately reads FP registers and the data-dependent-exit state
/// register before writing them: the architecture zero-initializes
/// registers and the differential oracle verifies the resulting values
/// exactly. Rewriting the exemplars to silence the linter would change
/// the checked-in bytes the replay test pins for no behavioral gain.
const WAIVED_WARNINGS: &[(&str, &str)] = &[
    ("data-dep-exit.s", "read-before-write"),
    ("fp-edge.s", "read-before-write"),
    ("iq-overflow.s", "read-before-write"),
    ("nested-loop.s", "read-before-write"),
    ("recursion.s", "read-before-write"),
];

fn corpus_sources() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("corpus directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read_to_string(&p).expect("corpus file"))
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "corpus must not be empty");
    out
}

#[test]
fn corpus_exemplars_are_lint_clean() {
    for (name, source) in corpus_sources() {
        let image = assemble(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = analyze(&image);
        let errors: Vec<String> =
            analysis.lint.errors().map(|d| format!("{}: {}", d.code, d.message)).collect();
        assert!(errors.is_empty(), "{name}: lint errors {errors:?}");
        let unwaived: Vec<String> = analysis
            .lint
            .warnings()
            .filter(|d| !WAIVED_WARNINGS.contains(&(name.as_str(), d.code)))
            .map(|d| format!("{}: {}", d.code, d.message))
            .collect();
        assert!(unwaived.is_empty(), "{name}: unwaived lint warnings {unwaived:?}");
    }
}

#[test]
fn kernel_suite_is_lint_clean() {
    let suite = riq::kernels::suite();
    assert!(!suite.is_empty());
    for kernel in &suite {
        let image =
            riq::kernels::compile(kernel).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        let analysis = analyze(&image);
        let diags: Vec<String> = analysis
            .lint
            .diags
            .iter()
            .map(|d| format!("{}: {}: {}", d.severity.as_str(), d.code, d.message))
            .collect();
        // Generated code is held to the stricter bar: no warnings either.
        assert!(diags.is_empty(), "{}: lint diagnostics {diags:?}", kernel.name);
    }
}
