//! Workspace-level attribution invariants: the class-mix partition holds
//! for arbitrary fuzz-generated programs, the attribution JSON is a pure
//! function of the program and configuration, and — the acceptance gate —
//! the static predictor's kernel ranking agrees with measured energy
//! savings at IQ 64.

use proptest::prelude::*;
use riq::analyze::{analyze, attribute, attribution_json, attribution_summary_line, MeasuredRun};
use riq::core::{Processor, RunResult, SimConfig};
use riq::power::{ClassEnergyProfile, EnergyClass};

fn measured(r: &RunResult) -> MeasuredRun {
    MeasuredRun { committed: r.stats.committed, power: r.power }
}

/// Runs one program baseline+reuse at `iq` and returns
/// `(baseline, reuse, reuse-leg trace events)`.
fn run_pair(
    program: &riq::asm::Program,
    iq: u32,
) -> (RunResult, RunResult, Vec<riq::trace::TraceEvent>) {
    let base = Processor::new(SimConfig::baseline().with_iq_size(iq)).run(program).unwrap();
    let mut sink = riq::trace::VecSink::new();
    let reuse = Processor::new(SimConfig::baseline().with_iq_size(iq).with_reuse(true))
        .run_observed(program, &mut sink, None)
        .unwrap();
    (base, reuse, sink.events)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The class-mix pass partitions every decoded instruction exactly
    /// once: per-loop own mixes plus the outside remainder reproduce the
    /// whole-program decode totals, class by class, for arbitrary
    /// generated programs.
    #[test]
    fn class_mix_partitions_decode_totals(seed in 0u64..4096) {
        let tp = riq::fuzz::generate(seed);
        let program = riq::asm::assemble(&tp.render()).unwrap();
        let analysis = analyze(&program);

        let mut sum = riq::analyze::Mix::default();
        for summary in &analysis.loops {
            sum.merge(&summary.mix.own_mix);
        }
        sum.merge(&analysis.outside_mix);

        // Independent decode walk over the full text image.
        let mut decode = riq::analyze::Mix::default();
        for (_, inst) in program.iter_insts() {
            decode.add(&inst);
        }

        prop_assert_eq!(sum, analysis.program_mix, "partition must cover the program exactly");
        for c in EnergyClass::ALL {
            prop_assert_eq!(
                analysis.program_mix.count(c),
                decode.count(c),
                "class {} drifted from the decode totals (seed {seed:#x})",
                c.label()
            );
        }
        prop_assert_eq!(analysis.program_mix.total(), decode.total());
    }
}

/// Two full attribution pipelines (simulate, replay, join) over the same
/// kernel must serialize to byte-identical JSON and summary lines — the
/// CI smoke diffs these across runs.
#[test]
fn kernel_attribution_is_byte_identical_across_runs() {
    let profile = ClassEnergyProfile::default();
    for kernel in riq::kernels::suite_scaled(0.05) {
        let program = riq::kernels::compile(&kernel).unwrap();
        let analysis = analyze(&program);
        let docs: Vec<(String, String)> = (0..2)
            .map(|_| {
                let (base, reuse, events) = run_pair(&program, 64);
                let a = attribute(
                    &program,
                    &analysis,
                    &events,
                    64,
                    &measured(&base),
                    &measured(&reuse),
                    &profile,
                );
                (
                    attribution_json(&kernel.name, &a).to_pretty(),
                    attribution_summary_line(&kernel.name, &a),
                )
            })
            .collect();
        assert_eq!(docs[0].0, docs[1].0, "{}: attribution JSON must be byte-stable", kernel.name);
        assert_eq!(docs[0].1, docs[1].1, "{}: summary line must be byte-stable", kernel.name);
        let parsed = riq::trace::parse(&docs[0].0).unwrap();
        assert_eq!(
            parsed.get("schema_version").unwrap().as_u64(),
            Some(riq::analyze::ATTRIBUTION_SCHEMA_VERSION)
        );
    }
}

fn rank_desc(scores: &[f64]) -> Vec<f64> {
    // Average ranks over ties so the correlation is not inflated by the
    // deterministic tie-break order.
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| scores[j].partial_cmp(&scores[i]).unwrap().then(i.cmp(&j)));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let (ra, rb) = (rank_desc(a), rank_desc(b));
    let n = a.len() as f64;
    let d2: f64 = ra.iter().zip(rb.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

/// Acceptance gate: corpus mode characterizes 200 fuzz-generated
/// programs and its whole report is byte-identical for different worker
/// counts.
#[test]
fn corpus_mode_characterizes_200_programs_deterministically() {
    use riq_bench::{run_attribution_corpus, EngineOptions};
    let parallel = EngineOptions { jobs: 0, ..EngineOptions::default() };
    let serial = EngineOptions { jobs: 3, ..EngineOptions::default() };
    let a = run_attribution_corpus(200, 64, &parallel).unwrap();
    let b = run_attribution_corpus(200, 64, &serial).unwrap();
    assert_eq!(a.programs, 200);
    assert_eq!(a.rows.iter().map(|r| r.programs).sum::<u64>(), 200);
    assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    assert_eq!(a.render(), b.render());
    assert_eq!(a.summary_line(), b.summary_line());
}

/// Acceptance gate: ranking the eight suite kernels by the static
/// predictor's program score must agree with ranking them by measured
/// energy savings at IQ 64 (Spearman rank correlation >= 0.8).
#[test]
fn predictor_ranking_tracks_measured_savings_at_iq64() {
    let mut predicted = Vec::new();
    let mut measured_savings = Vec::new();
    let mut names = Vec::new();
    for kernel in riq::kernels::suite_scaled(0.05) {
        let program = riq::kernels::compile(&kernel).unwrap();
        let analysis = analyze(&program);
        let grid: Vec<Vec<_>> = analysis.loops.iter().map(|s| s.predict.clone()).collect();
        predicted.push(riq::analyze::program_score(&grid, 64));
        let (base, reuse, _) = run_pair(&program, 64);
        measured_savings.push(1.0 - reuse.power.total_energy() / base.power.total_energy());
        names.push(kernel.name);
    }
    let rho = spearman(&predicted, &measured_savings);
    assert!(
        rho >= 0.8,
        "Spearman {rho:.3} < 0.8: predicted {predicted:?} vs measured {measured_savings:?} for {names:?}"
    );
}
