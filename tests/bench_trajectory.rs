//! The bench trajectory's contract:
//!
//! * the record's simulation-domain block is a pure function of the
//!   pinned matrix and the scale — byte-identical for any worker count
//!   and equal to the committed fixture CI diffs against;
//! * trajectory files round-trip through append → parse → validate, and
//!   the validator actually rejects malformed documents.
//!
//! Host-domain numbers (wall clock, RSS, stage nanos) are structurally
//! excluded: they live in a separate JSON sub-document the fixture diff
//! never touches.

use riq_bench::{
    append_record, matrix_jobs, run_jobs, validate_bench_doc, EngineOptions, ResultCache,
    QUICK_SCALE,
};
use riq_core::MetricsSnapshot;
use riq_metrics::{HubMode, SharedRegistry, SimCounter};
use riq_trace::{parse, JsonValue};

/// Runs the pinned 48-point matrix profiled on `jobs` workers and merges
/// the per-run snapshots — exactly what `riq-repro bench` records as the
/// `sim` block.
fn profiled_matrix_sim(jobs: usize) -> MetricsSnapshot {
    let specs = matrix_jobs(QUICK_SCALE).expect("matrix compiles");
    let opts = EngineOptions {
        jobs,
        cache: ResultCache::new(),
        metrics: SharedRegistry::new(HubMode::Profile),
        ..EngineOptions::default()
    };
    let results = run_jobs(&specs, &opts).expect("matrix simulates");
    let mut merged = MetricsSnapshot::default();
    for r in &results {
        let m = r.metrics.as_ref().expect("profile mode attaches snapshots");
        merged.merge(m);
    }
    merged
}

#[test]
fn sim_block_matches_the_pinned_fixture_for_any_worker_count() {
    let serial = profiled_matrix_sim(1);
    let parallel = profiled_matrix_sim(4);
    assert_eq!(
        serial.sim_json().to_pretty(),
        parallel.sim_json().to_pretty(),
        "sim-domain counters must not depend on the worker count"
    );

    let fixture = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/bench_quick_sim.json"
    ))
    .expect("fixture present");
    assert_eq!(
        serial.sim_json().to_pretty().trim(),
        fixture.trim(),
        "quick-bench sim block drifted from tests/fixtures/bench_quick_sim.json — \
         if the simulator's behavior intentionally changed, regenerate it with \
         `riq-repro bench --quick --sim-only`"
    );
    // And it is real work, not a zeroed registry.
    assert!(serial.get(SimCounter::Cycles) > 0);
    assert!(serial.get(SimCounter::IqScanVisits) > serial.get(SimCounter::Cycles));
}

#[test]
fn trajectory_file_appends_and_validates() {
    let dir = std::env::temp_dir().join(format!("riq-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("BENCH_test.json");
    let _ = std::fs::remove_file(&path);

    // A structurally complete record built from an (empty) snapshot — the
    // validator checks shape, not magnitudes.
    let record = |date: &str| {
        JsonValue::obj([
            ("date", JsonValue::Str(date.to_string())),
            ("quick", JsonValue::Bool(true)),
            ("scale", JsonValue::Num(QUICK_SCALE)),
            ("points", JsonValue::UInt(48)),
            ("sim", MetricsSnapshot::default().sim_json()),
            (
                "host",
                JsonValue::obj([
                    ("wall_clock_seconds", JsonValue::Num(1.0)),
                    ("sim_khz", JsonValue::Num(100.0)),
                    ("mips", JsonValue::Num(0.5)),
                ]),
            ),
        ])
    };

    assert_eq!(append_record(&path, record("2026-01-01")), Ok(1));
    assert_eq!(append_record(&path, record("2026-01-02")), Ok(2), "append keeps prior records");

    let doc = parse(&std::fs::read_to_string(&path).expect("file written")).expect("parses");
    assert_eq!(validate_bench_doc(&doc), Ok(2));
    let Some(JsonValue::Arr(records)) = doc.get("records") else {
        panic!("records array survives the round trip")
    };
    assert_eq!(records[0].get("date").and_then(JsonValue::as_str), Some("2026-01-01"));
    assert_eq!(records[1].get("date").and_then(JsonValue::as_str), Some("2026-01-02"));

    // A corrupted file must fail validation, not silently re-seed.
    std::fs::write(&path, "{\"schema_version\": 99, \"records\": []}").expect("rewrite");
    assert!(append_record(&path, record("2026-01-03")).is_err());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
