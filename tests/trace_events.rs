//! End-to-end trace-stream invariants: run loop kernels with tracing on
//! and check that the emitted event stream is internally consistent and
//! agrees with the aggregate counters the simulator reports.

use riq::asm::assemble;
use riq::core::{Processor, RunResult, SimConfig};
use riq::trace::{EventKind, GateEndReason, TraceEvent, VecSink};

/// A tight countdown loop that the reuse FSM buffers and replays.
const COUNTDOWN: &str = r"
    .text
        addi $r2, $r0, 200
    loop:
        addi $r3, $r3, 1
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
";

/// Two loops back to back, so buffering starts (and may revoke) twice.
const TWO_LOOPS: &str = r"
    .text
        addi $r2, $r0, 60
    first:
        addi $r3, $r3, 2
        addi $r2, $r2, -1
        bne  $r2, $r0, first
        addi $r2, $r0, 60
    second:
        addi $r4, $r4, 3
        addi $r2, $r2, -1
        bne  $r2, $r0, second
        halt
";

fn run_traced(source: &str, epoch: Option<u64>) -> (RunResult, Vec<TraceEvent>) {
    let program = assemble(source).expect("assemble");
    let processor = Processor::new(SimConfig::baseline().with_reuse(true));
    let mut sink = VecSink::new();
    let result = processor.run_observed(&program, &mut sink, epoch).expect("run");
    (result, sink.events)
}

#[test]
fn events_are_cycle_ordered() {
    let (_, events) = run_traced(COUNTDOWN, None);
    assert!(!events.is_empty(), "tracing produced no events");
    for pair in events.windows(2) {
        assert!(
            pair[0].cycle <= pair[1].cycle,
            "events out of order: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn every_buffering_start_is_resolved() {
    for source in [COUNTDOWN, TWO_LOOPS] {
        let (_, events) = run_traced(source, None);
        let mut open = false;
        let mut starts = 0u32;
        for ev in &events {
            match ev.kind {
                EventKind::BufferingStarted { .. } => {
                    assert!(!open, "BufferingStarted while already buffering");
                    open = true;
                    starts += 1;
                }
                EventKind::BufferingRevoked { .. } => {
                    assert!(open, "BufferingRevoked without BufferingStarted");
                    open = false;
                }
                EventKind::CodeReuseEntered { .. } => {
                    assert!(open, "CodeReuseEntered without BufferingStarted");
                    open = false;
                }
                _ => {}
            }
        }
        assert!(starts > 0, "loop never started buffering");
        assert!(!open, "run ended with unresolved BufferingStarted");
    }
}

#[test]
fn gating_windows_never_overlap_and_spans_match_gated_cycles() {
    for source in [COUNTDOWN, TWO_LOOPS] {
        let (result, events) = run_traced(source, None);
        let mut gate_on_at: Option<u64> = None;
        let mut span_sum = 0u64;
        for ev in &events {
            match ev.kind {
                EventKind::GateOn => {
                    assert!(gate_on_at.is_none(), "GateOn inside an open gating window");
                    gate_on_at = Some(ev.cycle);
                }
                EventKind::GateOff { span, .. } => {
                    let on = gate_on_at.take().expect("GateOff without GateOn");
                    assert_eq!(
                        span,
                        ev.cycle - on,
                        "GateOff span disagrees with its window bounds"
                    );
                    span_sum += span;
                }
                _ => {}
            }
        }
        assert!(gate_on_at.is_none(), "run ended with an open gating window");
        assert!(result.stats.gated_cycles > 0, "reuse run never gated");
        assert_eq!(
            span_sum, result.stats.gated_cycles,
            "sum of GateOff spans must equal SimStats::gated_cycles"
        );
    }
}

#[test]
fn reuse_exit_events_account_for_all_reused_instructions() {
    let (result, events) = run_traced(COUNTDOWN, None);
    let reused_from_trace: u64 = events
        .iter()
        .map(|ev| match ev.kind {
            EventKind::CodeReuseExited { reused_insts } => reused_insts,
            _ => 0,
        })
        .sum();
    assert_eq!(reused_from_trace, result.stats.reuse.reused_insts);
}

#[test]
fn final_gate_off_carries_a_terminal_reason() {
    let (_, events) = run_traced(COUNTDOWN, None);
    let last_off = events
        .iter()
        .rev()
        .find_map(|ev| match ev.kind {
            EventKind::GateOff { reason, .. } => Some(reason),
            _ => None,
        })
        .expect("no GateOff event");
    assert!(matches!(
        last_off,
        GateEndReason::RunEnd | GateEndReason::Drained | GateEndReason::Recovery
    ));
}

#[test]
fn epoch_events_partition_the_run() {
    let (result, events) = run_traced(COUNTDOWN, Some(64));
    let epochs: Vec<_> = events
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Epoch { index, start_cycle, cycles, committed, gated, .. } => {
                Some((index, start_cycle, cycles, committed, gated))
            }
            _ => None,
        })
        .collect();
    assert_eq!(epochs.len(), result.epochs.len());
    assert!(!epochs.is_empty());
    let mut expected_start = 0u64;
    let mut committed_sum = 0u64;
    let mut gated_sum = 0u64;
    for (i, &(index, start_cycle, cycles, committed, gated)) in epochs.iter().enumerate() {
        assert_eq!(index, i as u64);
        assert_eq!(start_cycle, expected_start, "epochs must tile the run");
        assert!(cycles > 0);
        expected_start = start_cycle + cycles;
        committed_sum += committed;
        gated_sum += gated;
    }
    assert_eq!(expected_start, result.stats.cycles, "epochs must cover every cycle");
    assert_eq!(committed_sum, result.stats.committed);
    assert_eq!(gated_sum, result.stats.gated_cycles);
}

#[test]
fn pipeline_sample_deltas_sum_to_totals() {
    let (result, events) = run_traced(COUNTDOWN, None);
    let (mut fetched, mut committed) = (0u64, 0u64);
    let mut samples = 0u64;
    for ev in &events {
        if let EventKind::PipelineSample { fetched: f, committed: c, .. } = ev.kind {
            fetched += f;
            committed += c;
            samples += 1;
        }
    }
    assert_eq!(samples, result.stats.cycles, "one pipeline sample per cycle");
    assert_eq!(fetched, result.stats.fetched);
    assert_eq!(committed, result.stats.committed);
}

#[test]
fn traced_and_untraced_runs_agree_on_architecture_and_stats() {
    let program = assemble(COUNTDOWN).expect("assemble");
    let cfg = SimConfig::baseline().with_reuse(true);
    let plain = Processor::new(cfg.clone()).run(&program).expect("run");
    let (traced, _) = run_traced(COUNTDOWN, Some(100));
    assert_eq!(plain.stats.cycles, traced.stats.cycles);
    assert_eq!(plain.stats.committed, traced.stats.committed);
    assert_eq!(plain.stats.gated_cycles, traced.stats.gated_cycles);
    assert_eq!(plain.stats.reuse.reused_insts, traced.stats.reuse.reused_insts);
    assert_eq!(plain.mem_digest, traced.mem_digest);
}
