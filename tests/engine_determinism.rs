//! The engine's contract: parallel execution is an implementation detail.
//!
//! * `jobs = 4` and `jobs = 1` must render byte-identical CSV for every
//!   experiment (results are aggregated by job index, never by completion
//!   order);
//! * the result cache must collapse duplicate (program, config) points to
//!   a single simulation, within a batch and across experiments.

use riq_bench::{run_experiment, EngineOptions, Experiment};
use riq_metrics::{HubMode, HubSnapshot, SharedRegistry};

/// Small enough to keep the whole test under a few seconds, large enough
/// that every kernel still executes its loops.
const SCALE: f64 = 0.05;

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    for experiment in Experiment::all(SCALE) {
        let serial = run_experiment(&experiment, &EngineOptions::with_jobs(1))
            .unwrap_or_else(|e| panic!("{} serial: {e}", experiment.label()));
        let parallel = run_experiment(&experiment, &EngineOptions::with_jobs(4))
            .unwrap_or_else(|e| panic!("{} parallel: {e}", experiment.label()));
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "{}: jobs=4 must reproduce jobs=1 bit-for-bit",
            experiment.label()
        );
    }
}

#[test]
fn fig5_to_8_views_are_deterministic_too() {
    // The per-figure extraction used by `riq-repro fig5`..`fig8` must be
    // as stable as the stacked table itself.
    let serial = run_experiment(&Experiment::Fig5_8 { scale: SCALE }, &EngineOptions::with_jobs(1))
        .expect("serial");
    let parallel =
        run_experiment(&Experiment::Fig5_8 { scale: SCALE }, &EngineOptions::with_jobs(4))
            .expect("parallel");
    for (fig, label) in
        [("fig5", "benchmark"), ("fig6", "component"), ("fig7", "benchmark"), ("fig8", "benchmark")]
    {
        let a = serial.sub_table(fig, label);
        let b = parallel.sub_table(fig, label);
        assert!(!a.rows().is_empty(), "{fig} must have rows");
        assert_eq!(a.to_csv(), b.to_csv(), "{fig} CSV differs between jobs=1 and jobs=4");
    }
}

#[test]
fn shared_cache_dedups_across_experiments() {
    // Figure 9's "original" column and the transform ablation's
    // "original" row revisit points the Figure 5-8 sweep already ran;
    // with one shared EngineOptions they must not simulate again.
    let opts = EngineOptions::with_jobs(4);
    run_experiment(&Experiment::Fig5_8 { scale: SCALE }, &opts).expect("sweep");
    assert_eq!(opts.cache.hits(), 0, "first sweep has nothing to reuse");
    let after_sweep = opts.cache.misses();

    run_experiment(&Experiment::Fig9 { scale: SCALE }, &opts).expect("fig9");
    assert!(
        opts.cache.hits() >= 16,
        "fig9's 8 original baseline+reuse IQ-64 points must all hit ({} hits)",
        opts.cache.hits()
    );

    run_experiment(&Experiment::TransformAblation { scale: SCALE }, &opts).expect("transforms");
    run_experiment(&Experiment::NbltAblation { scale: SCALE }, &opts).expect("nblt");
    run_experiment(&Experiment::StrategyAblation { scale: SCALE }, &opts).expect("strategy");
    run_experiment(&Experiment::BpredAblation { scale: SCALE }, &opts).expect("bpred");
    run_experiment(&Experiment::PolicyEdp { scale: SCALE }, &opts).expect("policy-edp");

    // Every hit is a simulation the pre-engine harness would have re-run.
    assert!(
        opts.cache.hits() >= 16 + 32 + 8 + 32 + 16,
        "combined run reuses the sweep's reuse points broadly ({} hits)",
        opts.cache.hits()
    );
    assert!(opts.cache.misses() > after_sweep, "the ablations still add unique points");

    // Re-running the whole set is pure cache traffic: not one new miss.
    let misses_before = opts.cache.misses();
    for experiment in Experiment::all(SCALE) {
        run_experiment(&experiment, &opts).expect("cached rerun");
    }
    assert_eq!(opts.cache.misses(), misses_before, "every point was already cached");
}

#[test]
fn policy_edp_shares_its_oldest_policy_points_with_the_iq_sweep() {
    // The scorecard's baseline and reuse legs at IQ 32..256 are exactly
    // the configurations the Figure 5-8 sweep already simulated — only
    // the IQ-16 points and the load-delay legs (a different config
    // fingerprint) may cost new simulations.
    let opts = EngineOptions::with_jobs(4);
    run_experiment(&Experiment::Fig5_8 { scale: SCALE }, &opts).expect("sweep");
    let sweep_misses = opts.cache.misses();

    run_experiment(&Experiment::PolicyEdp { scale: SCALE }, &opts).expect("policy-edp");
    assert!(
        opts.cache.hits() >= 64,
        "the 8 kernels x 4 shared IQ sizes x {{baseline,reuse}} must all hit ({} hits)",
        opts.cache.hits()
    );
    assert!(
        opts.cache.misses() > sweep_misses,
        "load-delay legs are distinct configurations and must simulate"
    );

    // A rerun of the scorecard is pure cache traffic across all four
    // policy legs: not one new miss.
    let misses_before = opts.cache.misses();
    run_experiment(&Experiment::PolicyEdp { scale: SCALE }, &opts).expect("cached rerun");
    assert_eq!(opts.cache.misses(), misses_before, "every policy point was already cached");
}

#[test]
fn checkpoint_store_output_is_byte_identical_to_storeless() {
    // Fast-forwarding through the shared store amortizes work but must
    // never change results: the store-on and store-off CSVs are equal
    // byte for byte, and the store really does get reused.
    let experiment = Experiment::Fig5_8 { scale: SCALE };
    let with_store = EngineOptions::with_jobs(2).with_fast_forward(2_000, 500);
    let store = with_store.ckpt.clone().expect("store attached");
    let stored = run_experiment(&experiment, &with_store).expect("store-on run");
    assert!(store.created() > 0, "fast-forwards actually happened");
    assert!(store.reused() > 0, "configurations shared checkpoints");

    let storeless =
        EngineOptions::with_jobs(2).with_fast_forward(2_000, 500).with_checkpoint_store(None);
    let solo = run_experiment(&experiment, &storeless).expect("store-off run");
    assert_eq!(stored.to_csv(), solo.to_csv(), "checkpoint store must be invisible in the results");
}

#[test]
fn fast_forwarded_sweep_differs_only_in_measured_region() {
    // A skip excludes the warm-up prefix from measurement, so the CSV may
    // differ from a from-zero run — but it must itself be deterministic
    // across worker counts.
    let experiment = Experiment::Fig9 { scale: SCALE };
    let serial =
        run_experiment(&experiment, &EngineOptions::with_jobs(1).with_fast_forward(1_000, 200))
            .expect("serial");
    let parallel =
        run_experiment(&experiment, &EngineOptions::with_jobs(4).with_fast_forward(1_000, 200))
            .expect("parallel");
    assert_eq!(serial.to_csv(), parallel.to_csv(), "skip runs stay order-independent");
}

#[test]
fn metrics_hub_sim_totals_are_worker_and_store_independent() {
    // The hub accumulates sim-domain totals per *returned* job, so its
    // sim document is a pure function of the job list: identical for any
    // worker count, with or without the checkpoint store. Host-domain
    // counters (wall nanos, queue depth) are free to differ — which is
    // why they live in a separate JSON document.
    let snap = |jobs: usize, skip: u64, store: bool| -> HubSnapshot {
        let hub = SharedRegistry::new(HubMode::Speed);
        let mut opts = EngineOptions::with_jobs(jobs).with_metrics(hub.clone());
        if skip > 0 {
            opts = opts.with_fast_forward(skip, 200);
            if !store {
                opts = opts.with_checkpoint_store(None);
            }
        }
        run_experiment(&Experiment::Fig9 { scale: SCALE }, &opts).expect("runs");
        hub.snapshot()
    };

    let serial = snap(1, 0, true);
    let parallel = snap(4, 0, true);
    assert!(serial.sim.iter().any(|&v| v > 0), "speed mode records cycles/committed");
    assert_eq!(
        serial.sim_json().to_pretty(),
        parallel.sim_json().to_pretty(),
        "jobs=4 must accumulate the identical sim document as jobs=1"
    );

    let stored = snap(2, 2_000, true);
    let storeless = snap(2, 2_000, false);
    assert_eq!(
        stored.sim_json().to_pretty(),
        storeless.sim_json().to_pretty(),
        "the checkpoint store must be invisible in sim-domain totals"
    );
}

#[test]
fn profiled_hub_counters_match_speed_mode_where_they_overlap() {
    // Profile mode swaps every run onto the profiled entry points; the
    // counters Speed mode also tracks (cycles, committed) must come out
    // identical — profiling is observation, not perturbation.
    let run_with = |hub: SharedRegistry| -> HubSnapshot {
        let opts = EngineOptions::with_jobs(2).with_metrics(hub.clone());
        run_experiment(&Experiment::NbltAblation { scale: SCALE }, &opts).expect("runs");
        hub.snapshot()
    };
    let speed = run_with(SharedRegistry::new(HubMode::Speed));
    let profile = run_with(SharedRegistry::new(HubMode::Profile));
    use riq_metrics::SimCounter::{Committed, Cycles};
    assert_eq!(speed.sim(Cycles), profile.sim(Cycles));
    assert_eq!(speed.sim(Committed), profile.sim(Committed));
    // And profile mode adds the counters speed mode cannot see.
    assert!(profile.sim(riq_metrics::SimCounter::IqScanVisits) > 0);
    assert_eq!(speed.sim(riq_metrics::SimCounter::IqScanVisits), 0);
}

#[test]
fn dedup_does_not_leak_across_different_scales() {
    // A rescaled kernel is a different program; the cache must miss. The
    // scales are chosen so every kernel's clamped outer trip count really
    // changes (tiny scales all clamp to the same 2-trip floor).
    let opts = EngineOptions::with_jobs(2);
    run_experiment(&Experiment::NbltAblation { scale: SCALE }, &opts).expect("nblt");
    let misses = opts.cache.misses();
    run_experiment(&Experiment::NbltAblation { scale: 0.5 }, &opts).expect("nblt at half scale");
    assert_eq!(opts.cache.misses(), misses * 2, "rescaled programs share nothing");
}
