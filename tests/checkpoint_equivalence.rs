//! Checkpoint equivalence across the whole stack: for every suite kernel,
//! a functional fast-forward plus resume is architecturally identical to a
//! from-zero run — on the emulator and on the detailed simulator — and a
//! detailed run resumed with functional warming reports gating behavior
//! close to the from-zero measurement.

use riq::asm::Program;
use riq::ckpt::Checkpoint;
use riq::core::{Processor, SimConfig};
use riq::emu::Machine;
use riq::kernels::{compile, suite_scaled};

const ORACLE_BUDGET: u64 = 100_000_000;

/// A skip point inside the kernel's dynamic instruction stream: far enough
/// in to matter, far enough from the end to leave a measured region.
fn mid_skip(program: &Program) -> u64 {
    let mut oracle = Machine::new(program);
    oracle.run(ORACLE_BUDGET).expect("oracle halts");
    oracle.retired() / 10
}

#[test]
fn emulator_resume_matches_full_run_on_every_kernel() {
    for k in suite_scaled(0.08) {
        let program = compile(&k).expect("kernel compiles");
        let mut full = Machine::new(&program);
        full.run(ORACLE_BUDGET).expect("full run halts");

        let skip = mid_skip(&program);
        let ckpt = Checkpoint::fast_forward(&program, skip, 64).expect("fast-forward");
        assert_eq!(ckpt.retired, skip, "{}: fast-forward reaches the skip point", k.name);

        let mut resumed = ckpt.resume_machine();
        resumed.run(ORACLE_BUDGET).expect("resumed run halts");
        assert_eq!(resumed.state(), full.state(), "{}: register file", k.name);
        assert_eq!(
            resumed.memory().content_digest(),
            full.memory().content_digest(),
            "{}: memory digest",
            k.name
        );
        assert_eq!(resumed.retired(), full.retired(), "{}: retired count", k.name);
    }
}

#[test]
fn detailed_resume_matches_full_run_on_every_kernel() {
    for k in suite_scaled(0.08) {
        let program = compile(&k).expect("kernel compiles");
        let proc = Processor::new(SimConfig::baseline().with_reuse(true));
        let full = proc.run(&program).expect("full run");

        let skip = mid_skip(&program);
        let warmup = 2_000u64;
        let ckpt = Checkpoint::fast_forward(&program, skip, warmup).expect("fast-forward");
        let resumed = proc.resume_from(&program, &ckpt, warmup).expect("resumed run");

        assert_eq!(resumed.arch_state, full.arch_state, "{}: register file", k.name);
        assert_eq!(resumed.mem_digest, full.mem_digest, "{}: memory digest", k.name);
        assert_eq!(
            ckpt.retired + resumed.stats.committed,
            full.stats.committed,
            "{}: skip + resumed commits cover the whole program",
            k.name
        );
    }
}

#[test]
fn warmed_resume_gating_tracks_from_zero_measurement() {
    // The gated-cycle fraction of a warmed resumed run must be close to
    // the from-zero fraction: the reuse FSM re-detects loops quickly, so
    // the only real bias is the shorter measured region. A loose absolute
    // tolerance keeps this robust across kernels while still catching a
    // broken restore (which drives the resumed fraction toward zero or
    // wildly off).
    const TOLERANCE: f64 = 0.12;
    for k in suite_scaled(0.08) {
        let program = compile(&k).expect("kernel compiles");
        let proc = Processor::new(SimConfig::baseline().with_reuse(true));
        let full = proc.run(&program).expect("full run");
        if full.stats.gated_rate() == 0.0 {
            continue; // nothing to compare on kernels that never gate
        }

        let skip = mid_skip(&program);
        let warmup = 4_000u64;
        let ckpt = Checkpoint::fast_forward(&program, skip, warmup).expect("fast-forward");
        let resumed = proc.resume_from(&program, &ckpt, warmup).expect("resumed run");
        let delta = (resumed.stats.gated_rate() - full.stats.gated_rate()).abs();
        assert!(
            delta < TOLERANCE,
            "{}: gated fraction diverged: from-zero {:.3}, resumed {:.3}",
            k.name,
            full.stats.gated_rate(),
            resumed.stats.gated_rate()
        );
    }
}

#[test]
fn codec_round_trips_a_real_kernel_checkpoint() {
    let k = suite_scaled(0.08).into_iter().find(|k| k.name == "wss").expect("wss in suite");
    let program = compile(&k).expect("kernel compiles");
    let ckpt = Checkpoint::fast_forward(&program, 2_000, 500).expect("fast-forward");
    let decoded = Checkpoint::decode(&ckpt.encode()).expect("decodes");
    assert_eq!(decoded, ckpt);
    assert_eq!(decoded.fingerprint(), ckpt.fingerprint());

    // A resumed simulator accepts the decoded copy just the same.
    let proc = Processor::new(SimConfig::baseline().with_reuse(true));
    let a = proc.resume_from(&program, &ckpt, 500).expect("original resumes");
    let b = proc.resume_from(&program, &decoded, 500).expect("decoded resumes");
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.arch_state, b.arch_state);
}
