//! Build a brand-new loop kernel in the IR, compile it, and cross-check
//! the cycle simulator against the functional emulator — the workflow a
//! user follows to evaluate the reuse issue queue on their own workload.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use riq::core::{Processor, SimConfig};
use riq::emu::Machine;
use riq::kernels::{compile, BinOp, Expr, InnerLoop, Kernel, Stmt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A damped 3-point smoother: out[i] = 0.25*(in[i-1] + in[i+1]) + 0.5*in[i],
    // run 30 times over a 192-element line.
    let mut kernel = Kernel::new("smoother", "custom");
    let input = kernel.array("input", 208);
    let output = kernel.array("output", 208);
    let halo = Expr::bin(
        BinOp::Mul,
        Expr::bin(BinOp::Add, Expr::a(input, -1), Expr::a(input, 1)),
        Expr::Lit(0.25),
    );
    let center = Expr::bin(BinOp::Mul, Expr::a(input, 0), Expr::Lit(0.5));
    let smooth = Stmt::new(output, 0, Expr::bin(BinOp::Add, halo, center));
    let copy_back = Stmt::new(input, 0, Expr::a(output, 0));
    kernel.nest(30, vec![InnerLoop::new(192, vec![smooth, copy_back])]);
    kernel.validate().map_err(|e| format!("bad kernel: {e}"))?;

    let program = compile(&kernel)?;
    println!(
        "compiled {} statements into {} instructions of machine code",
        kernel.dynamic_stmts(),
        program.text_len()
    );

    // Oracle: the functional emulator.
    let mut oracle = Machine::new(&program);
    oracle.run(100_000_000)?;

    // The cycle simulator, both pipelines.
    let base = Processor::new(SimConfig::baseline()).run(&program)?;
    let reuse = Processor::new(SimConfig::baseline().with_reuse(true)).run(&program)?;
    assert_eq!(base.arch_state, oracle.state().clone(), "baseline matches the oracle");
    assert_eq!(reuse.arch_state, oracle.state().clone(), "reuse matches the oracle");
    assert_eq!(reuse.mem_digest, oracle.memory().content_digest());

    println!("oracle retired {} instructions", oracle.retired());
    println!("baseline: {} cycles (IPC {:.2})", base.stats.cycles, base.stats.ipc());
    println!(
        "reuse:    {} cycles (IPC {:.2}), gated {:.1}%, whole-chip power -{:.1}%",
        reuse.stats.cycles,
        reuse.stats.ipc(),
        100.0 * reuse.stats.gated_rate(),
        100.0 * reuse.power.power_reduction_vs(&base.power)
    );
    Ok(())
}
