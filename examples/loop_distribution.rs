//! Section 4 of the paper: apply loop distribution to a fat kernel and
//! watch a 64-entry issue queue go from never-gating to mostly-gated.
//!
//! ```text
//! cargo run --release --example loop_distribution [kernel]
//! ```

use riq::core::{Processor, SimConfig};
use riq::kernels::{by_name, compile, dependence_edges, distribute_kernel, inner_loop_span};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "adi".to_string());
    let kernel = by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name:?} (see `riq-repro table2`)"))?;
    let inner = &kernel.nests[0].inners[0];

    println!("{} original innermost loop:", kernel.name);
    println!("  {} statements, {} instructions", inner.stmts.len(), inner_loop_span(inner));
    let edges = dependence_edges(&inner.stmts);
    println!("  {} dependence edges, e.g.:", edges.len());
    for e in edges.iter().take(4) {
        println!("    S{} -> S{} ({:?}, distance {})", e.from, e.to, e.kind, e.distance);
    }

    let optimized = distribute_kernel(&kernel);
    println!("\nafter loop distribution:");
    for (i, piece) in optimized.nests[0].inners.iter().enumerate() {
        println!(
            "  loop {i}: {} statements, {} instructions",
            piece.stmts.len(),
            inner_loop_span(piece)
        );
    }

    let cfg = SimConfig::baseline(); // the paper's 64-entry queue
    for (label, k) in [("original ", &kernel), ("optimized", &optimized)] {
        let program = compile(k)?;
        let base = Processor::new(cfg.clone()).run(&program)?;
        let reuse = Processor::new(cfg.clone().with_reuse(true)).run(&program)?;
        println!(
            "\n{label}: gated {:5.1}%  power -{:4.1}%  IPC {:+.1}%",
            100.0 * reuse.stats.gated_rate(),
            100.0 * reuse.power.power_reduction_vs(&base.power),
            100.0 * (reuse.stats.ipc() / base.stats.ipc() - 1.0),
        );
    }
    Ok(())
}
