//! Quickstart: assemble a tight loop, run it on the conventional baseline
//! and on the reuse issue queue, and compare front-end activity and power.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use riq::asm::assemble;
use riq::core::{Processor, SimConfig};
use riq::power::ComponentGroup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A saxpy-flavored loop: y[i] = a*x[i] + y[i] over 512 elements.
    let program = assemble(
        r#"
        .data
        x:      .space 4096
        y:      .space 4096
        .text
            la   $r8, x
            la   $r9, y
            li   $r2, 512           # trip count
            li   $r3, 2
            mtc1 $r3, $f8
            cvt.d.w $f8, $f8        # a = 2.0
        loop:
            l.d  $f0, 0($r8)
            l.d  $f1, 0($r9)
            mul.d $f2, $f0, $f8
            add.d $f2, $f2, $f1
            s.d  $f2, 0($r9)
            addi $r8, $r8, 8
            addi $r9, $r9, 8
            addi $r2, $r2, -1
            bne  $r2, $r0, loop
            halt
        "#,
    )?;

    let baseline = Processor::new(SimConfig::baseline()).run(&program)?;
    let reuse = Processor::new(SimConfig::baseline().with_reuse(true)).run(&program)?;

    assert_eq!(
        baseline.arch_state, reuse.arch_state,
        "the reuse issue queue is architecturally invisible"
    );

    println!("                       baseline        reuse");
    println!("cycles            {:>13} {:>12}", baseline.stats.cycles, reuse.stats.cycles);
    println!("IPC               {:>13.3} {:>12.3}", baseline.stats.ipc(), reuse.stats.ipc());
    println!("insts fetched     {:>13} {:>12}", baseline.stats.fetched, reuse.stats.fetched);
    println!(
        "front-end gated   {:>12.1}% {:>11.1}%",
        100.0 * baseline.stats.gated_rate(),
        100.0 * reuse.stats.gated_rate()
    );
    println!("reused from IQ    {:>13} {:>12}", 0, reuse.stats.reuse.reused_insts);
    println!();
    println!("per-cycle power vs baseline:");
    for (name, g) in [
        ("  instruction cache", ComponentGroup::Icache),
        ("  branch predictor ", ComponentGroup::Bpred),
        ("  issue queue      ", ComponentGroup::IssueQueue),
    ] {
        let red = reuse.power.group_power_reduction_vs(&baseline.power, g);
        println!("{name}  -{:.1}%", 100.0 * red);
    }
    let overall = reuse.power.power_reduction_vs(&baseline.power);
    println!("  whole processor    -{:.1}%", 100.0 * overall);
    Ok(())
}
