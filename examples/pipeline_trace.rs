//! Trace the dynamic instruction stream of a small loop and show the
//! reuse issue queue's bookkeeping counters evolving with queue size —
//! a debugging-oriented tour of the simulator's observability.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use riq::asm::assemble;
use riq::core::{Processor, SimConfig};
use riq::emu::Machine;
use riq::isa::disassemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(
        r#"
            li   $r2, 6             # outer trip
        outer:
            li   $r3, 40            # inner trip
        inner:
            add  $r4, $r4, $r3
            addi $r3, $r3, -1
            bne  $r3, $r0, inner
            addi $r2, $r2, -1
            bne  $r2, $r0, outer
            halt
        "#,
    )?;

    // Static listing.
    println!("program listing:");
    for (pc, inst) in program.iter_insts() {
        println!("  {pc:#010x}  {}", disassemble(&inst, pc));
    }

    // First dynamic instructions from the functional emulator.
    println!("\nfirst 12 dynamic instructions:");
    let mut machine = Machine::new(&program);
    let mut shown = 0;
    machine.run_traced(12, |pc, inst| {
        shown += 1;
        println!("  [{shown:>2}] {pc:#010x}  {}", disassemble(inst, pc));
    })?;

    // Reuse bookkeeping at two queue sizes.
    for iq in [32u32, 64] {
        let r = Processor::new(SimConfig::baseline().with_iq_size(iq).with_reuse(true))
            .run(&program)?;
        let s = r.stats.reuse;
        println!(
            "\nIQ {iq}: loops detected {}, bufferings {} (revoked {}), code-reuse entries {}, \
             iterations buffered {}, reused insts {}, NBLT hits {}",
            s.loops_detected,
            s.bufferings_started,
            s.bufferings_revoked,
            s.code_reuse_entries,
            s.iterations_buffered,
            s.reused_insts,
            s.nblt_hits
        );
        println!(
            "      gated {:.1}% of {} cycles; the outer loop is non-bufferable (inner loop inside)",
            100.0 * r.stats.gated_rate(),
            r.stats.cycles
        );
    }
    Ok(())
}
