//! Sweep the issue-queue size for one Table 2 benchmark and print the
//! per-size gating, power, and IPC picture (one row of Figures 5/7/8).
//!
//! ```text
//! cargo run --release --example power_sweep [kernel]
//! ```

use riq::core::{Processor, SimConfig};
use riq::kernels::{by_name, compile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "eflux".to_string());
    let kernel = by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name:?} (see `riq-repro table2`)"))?;
    let program = compile(&kernel)?;
    println!(
        "{name}: innermost span = {} instructions",
        riq::kernels::inner_loop_span(&kernel.nests[0].inners[0])
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "IQ", "gated", "Δpower", "ΔIPC", "reused insts", "IQ occ."
    );
    for iq in [32u32, 64, 128, 256] {
        let base = Processor::new(SimConfig::baseline().with_iq_size(iq)).run(&program)?;
        let reuse = Processor::new(SimConfig::baseline().with_iq_size(iq).with_reuse(true))
            .run(&program)?;
        assert_eq!(base.arch_state, reuse.arch_state);
        let gated = 100.0 * reuse.stats.gated_rate();
        let dp = 100.0 * reuse.power.power_reduction_vs(&base.power);
        let di = 100.0 * (1.0 - reuse.stats.ipc() / base.stats.ipc());
        println!(
            "{iq:>6} {gated:>11.1}% {dp:>11.1}% {di:>11.1}% {:>12} {:>10.1}",
            reuse.stats.reuse.reused_insts,
            reuse.stats.avg_iq_occupancy(),
        );
    }
    Ok(())
}
